#include "exec/executor.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <sstream>
#include <string_view>

#include "common/logging.h"
#include "exec/agg_ops.h"
#include "exec/collapse_ops.h"
#include "exec/compose_ops.h"
#include "exec/offset_ops.h"
#include "exec/profiled_ops.h"
#include "exec/scan_ops.h"
#include "exec/unary_ops.h"

namespace seq {
namespace {

/// Resolves projection column names to indices in the child schema.
Result<std::vector<size_t>> ProjectIndices(const PhysNode& node,
                                           const Schema& child_schema) {
  std::vector<size_t> indices;
  indices.reserve(node.columns.size());
  for (const std::string& col : node.columns) {
    SEQ_ASSIGN_OR_RETURN(size_t idx, child_schema.FieldIndex(col));
    indices.push_back(idx);
  }
  return indices;
}

struct AggBinding {
  size_t col_index;
  TypeId col_type;
};

Result<AggBinding> BindAggColumn(const PhysNode& node) {
  SEQ_CHECK(!node.children.empty());
  const Schema& child_schema = *node.children[0]->out_schema;
  SEQ_ASSIGN_OR_RETURN(size_t idx, child_schema.FieldIndex(node.agg_column));
  return AggBinding{idx, child_schema.field(idx).type};
}

/// Fills a fresh profile node with the PhysNode's identity and estimates.
OperatorProfile* AddProfileNode(OperatorProfile* parent,
                                const PhysNode& node) {
  OperatorProfile* prof = parent->AddChild();
  prof->label = node.Label();
  prof->est_cost = node.est_cost;
  prof->est_rows = node.EstRows();
  prof->span_len =
      (node.required.IsEmpty() || node.required.IsUnbounded())
          ? 0
          : node.required.Length();
  return prof;
}

}  // namespace

bool DefaultUseBatch() {
  static const bool kUseBatch = [] {
    const char* env = std::getenv("SEQ_USE_BATCH");
    return env == nullptr || std::string_view(env) != "0";
  }();
  return kUseBatch;
}

Result<SeqOpPtr> Executor::Build(const PhysNodePtr& node,
                                 OperatorProfile* profile_parent) const {
  if (profile_parent == nullptr) return BuildInner(node, nullptr);
  SEQ_CHECK(node != nullptr);
  OperatorProfile* prof = AddProfileNode(profile_parent, *node);
  SEQ_ASSIGN_OR_RETURN(SeqOpPtr inner, BuildInner(node, prof));
  return SeqOpPtr(new ProfiledOp(std::move(inner), prof));
}

Result<SeqOpPtr> Executor::BuildInner(const PhysNodePtr& node,
                                      OperatorProfile* prof) const {
  SEQ_CHECK(node != nullptr);
  // The lowering table: one builder per OpKind, in enum order. The access
  // mode no longer selects between operator classes — each unified
  // operator serves the mode(s) its plan shape supports — so the only
  // per-node dispatch left is this kind lookup plus the node's strategy
  // annotations inside each builder.
  using BuildFn = Result<SeqOpPtr> (Executor::*)(const PhysNode&,
                                                 OperatorProfile*) const;
  static constexpr BuildFn kLowering[] = {
      &Executor::BuildBaseRef,      // OpKind::kBaseRef
      &Executor::BuildConstantRef,  // OpKind::kConstantRef
      &Executor::BuildSelect,       // OpKind::kSelect
      &Executor::BuildProject,      // OpKind::kProject
      &Executor::BuildPosOffset,    // OpKind::kPositionalOffset
      &Executor::BuildValueOffset,  // OpKind::kValueOffset
      &Executor::BuildWindowAgg,    // OpKind::kWindowAgg
      &Executor::BuildCompose,      // OpKind::kCompose
      &Executor::BuildCollapse,     // OpKind::kCollapse
      &Executor::BuildExpand,       // OpKind::kExpand
  };
  const size_t kind = static_cast<size_t>(node->op);
  SEQ_CHECK_MSG(kind < std::size(kLowering),
                "unknown operator kind in plan: " << OpKindName(node->op));
  return (this->*kLowering[kind])(*node, prof);
}

Result<SeqOpPtr> Executor::BuildBaseRef(const PhysNode& node,
                                        OperatorProfile*) const {
  SEQ_ASSIGN_OR_RETURN(const CatalogEntry* entry,
                       catalog_.Lookup(node.seq_name));
  return SeqOpPtr(new BaseScan(entry->store.get(), node.required));
}

Result<SeqOpPtr> Executor::BuildConstantRef(const PhysNode& node,
                                            OperatorProfile*) const {
  SEQ_ASSIGN_OR_RETURN(const CatalogEntry* entry,
                       catalog_.Lookup(node.seq_name));
  return SeqOpPtr(new ConstantOp(entry->constant, node.required));
}

Result<SeqOpPtr> Executor::BuildSelect(const PhysNode& node,
                                       OperatorProfile* prof) const {
  SEQ_ASSIGN_OR_RETURN(SeqOpPtr child, Build(node.children[0], prof));
  return SeqOpPtr(new SelectOp(std::move(child), node.predicate,
                               node.children[0]->out_schema));
}

Result<SeqOpPtr> Executor::BuildProject(const PhysNode& node,
                                        OperatorProfile* prof) const {
  SEQ_ASSIGN_OR_RETURN(SeqOpPtr child, Build(node.children[0], prof));
  SEQ_ASSIGN_OR_RETURN(std::vector<size_t> indices,
                       ProjectIndices(node, *node.children[0]->out_schema));
  return SeqOpPtr(new ProjectOp(std::move(child), std::move(indices)));
}

Result<SeqOpPtr> Executor::BuildPosOffset(const PhysNode& node,
                                          OperatorProfile* prof) const {
  SEQ_ASSIGN_OR_RETURN(SeqOpPtr child, Build(node.children[0], prof));
  return SeqOpPtr(new PosOffsetOp(std::move(child), node.offset));
}

Result<SeqOpPtr> Executor::BuildValueOffset(const PhysNode& node,
                                            OperatorProfile* prof) const {
  SEQ_ASSIGN_OR_RETURN(SeqOpPtr child, Build(node.children[0], prof));
  if (node.offset_strategy == OffsetStrategy::kIncrementalCacheB) {
    // Streamed child in both modes: the incremental cache consumes the
    // input in order whether the consumer streams or probes monotonically.
    return SeqOpPtr(
        new ValueOffsetOp(std::move(child), node.offset, node.required));
  }
  // Naive search over a probed child.
  return SeqOpPtr(new ValueOffsetNaiveOp(std::move(child), node.offset,
                                         node.required,
                                         node.children[0]->required));
}

Result<SeqOpPtr> Executor::BuildWindowAgg(const PhysNode& node,
                                          OperatorProfile* prof) const {
  SEQ_ASSIGN_OR_RETURN(AggBinding binding, BindAggColumn(node));
  SEQ_ASSIGN_OR_RETURN(SeqOpPtr child, Build(node.children[0], prof));
  switch (node.window_kind) {
    case WindowKind::kTrailing:
      if (node.mode == AccessMode::kStream &&
          node.agg_strategy == AggStrategy::kCacheA) {
        return SeqOpPtr(new WindowAggCachedOp(
            std::move(child), node.agg_func, binding.col_index,
            binding.col_type, node.window, node.required));
      }
      // Naive window probing, streamed or probed (probed child).
      return SeqOpPtr(new WindowAggNaiveOp(
          std::move(child), node.agg_func, binding.col_index,
          binding.col_type, node.window, node.required));
    case WindowKind::kRunning:
      if (node.mode == AccessMode::kProbed) {
        return SeqOpPtr(new MaterializedAggOp(
            std::move(child), node.agg_func, binding.col_index,
            binding.col_type, node.window_kind, node.out_span));
      }
      return SeqOpPtr(new RunningAggOp(std::move(child), node.agg_func,
                                       binding.col_index, binding.col_type,
                                       node.required));
    case WindowKind::kAll:
      if (node.mode == AccessMode::kProbed) {
        return SeqOpPtr(new MaterializedAggOp(
            std::move(child), node.agg_func, binding.col_index,
            binding.col_type, node.window_kind, node.out_span));
      }
      return SeqOpPtr(new OverallAggOp(std::move(child), node.agg_func,
                                       binding.col_index, binding.col_type,
                                       node.required));
  }
  return Status::Internal("unknown window kind");
}

Result<SeqOpPtr> Executor::BuildCompose(const PhysNode& node,
                                        OperatorProfile* prof) const {
  if (node.mode == AccessMode::kProbed) {
    SEQ_ASSIGN_OR_RETURN(SeqOpPtr left, Build(node.children[0], prof));
    SEQ_ASSIGN_OR_RETURN(SeqOpPtr right, Build(node.children[1], prof));
    return SeqOpPtr(new ComposeProbeBothOp(
        std::move(left), std::move(right), node.probe_left_first,
        node.predicate, node.out_schema));
  }
  switch (node.join_strategy) {
    case JoinStrategy::kStreamBoth: {
      SEQ_ASSIGN_OR_RETURN(SeqOpPtr left, Build(node.children[0], prof));
      SEQ_ASSIGN_OR_RETURN(SeqOpPtr right, Build(node.children[1], prof));
      return SeqOpPtr(new ComposeLockstepOp(std::move(left), std::move(right),
                                            node.predicate, node.out_schema));
    }
    case JoinStrategy::kStreamLeftProbeRight: {
      SEQ_ASSIGN_OR_RETURN(SeqOpPtr driver, Build(node.children[0], prof));
      SEQ_ASSIGN_OR_RETURN(SeqOpPtr other, Build(node.children[1], prof));
      return SeqOpPtr(new ComposeStreamProbeOp(
          std::move(driver), std::move(other), /*driver_is_left=*/true,
          node.predicate, node.out_schema));
    }
    case JoinStrategy::kStreamRightProbeLeft: {
      SEQ_ASSIGN_OR_RETURN(SeqOpPtr other, Build(node.children[0], prof));
      SEQ_ASSIGN_OR_RETURN(SeqOpPtr driver, Build(node.children[1], prof));
      return SeqOpPtr(new ComposeStreamProbeOp(
          std::move(driver), std::move(other), /*driver_is_left=*/false,
          node.predicate, node.out_schema));
    }
    case JoinStrategy::kProbeBoth:
      return Status::Internal("probe-both compose in a stream plan");
  }
  return Status::Internal("unknown join strategy");
}

Result<SeqOpPtr> Executor::BuildCollapse(const PhysNode& node,
                                         OperatorProfile* prof) const {
  SEQ_ASSIGN_OR_RETURN(AggBinding binding, BindAggColumn(node));
  SEQ_ASSIGN_OR_RETURN(SeqOpPtr child, Build(node.children[0], prof));
  return SeqOpPtr(new CollapseOp(
      std::move(child), node.agg_func, binding.col_index, binding.col_type,
      node.offset, node.required,
      /*materialized=*/node.mode == AccessMode::kProbed));
}

Result<SeqOpPtr> Executor::BuildExpand(const PhysNode& node,
                                       OperatorProfile* prof) const {
  SEQ_ASSIGN_OR_RETURN(SeqOpPtr child, Build(node.children[0], prof));
  return SeqOpPtr(new ExpandOp(std::move(child), node.offset, node.required));
}

Result<QueryResult> Executor::Execute(const PhysicalPlan& plan,
                                      AccessStats* stats) const {
  return ExecuteImpl(plan, stats, nullptr);
}

Status Executor::ExecuteVisit(const PhysicalPlan& plan, const RowSink& sink,
                              AccessStats* stats) const {
  if (plan.root == nullptr) {
    return Status::InvalidArgument("plan has no root");
  }
  ExecContext ctx;
  ctx.catalog = &catalog_;
  ctx.stats = stats;
  ctx.params = params_;
  ctx.faults = options_.fault_injector;
  ctx.guards = options_.guards;
  ctx.ArmGuards();
  // The page budget is counted from AccessStats, so enforce it even when
  // the caller did not ask for stats.
  AccessStats guard_stats;
  if (ctx.guards.max_pages > 0 && stats == nullptr) ctx.stats = &guard_stats;

  SEQ_ASSIGN_OR_RETURN(SeqOpPtr root, Build(plan.root, nullptr));
  SEQ_RETURN_IF_ERROR(root->Open(&ctx));

  // Rows already handed to the sink before a mid-stream error or budget
  // trip have been seen — streaming consumption cannot take them back. The
  // returned status still reports the failure; see docs/robustness.md.
  int64_t emitted = 0;
  Status guard_status;

  if (plan.root_mode == AccessMode::kStream) {
    const Span range = plan.output_span;
    if (!range.IsEmpty() && options_.use_batch && plan.positions.empty()) {
      // Batch driving: rows are visited in their pipeline slot buffers —
      // no per-row materialization anywhere on this path.
      RecordBatch batch(options_.batch_capacity);
      while (root->NextBatch(&batch) > 0) {
        if (ctx.failed()) break;
        int64_t batch_emitted = 0;
        for (size_t i = 0; i < batch.size(); ++i) {
          if (batch.pos(i) < range.start || batch.pos(i) > range.end) {
            continue;
          }
          sink(batch.pos(i), batch.rec(i));
          ++batch_emitted;
        }
        if (stats != nullptr) stats->records_output += batch_emitted;
        emitted += batch_emitted;
        guard_status = ctx.CheckGuards(emitted);
        if (!guard_status.ok()) break;
      }
    } else if (!range.IsEmpty()) {
      size_t next_wanted = 0;
      std::optional<PosRecord> r = root->NextAtOrAfter(range.start);
      while (r.has_value() && r->pos <= range.end) {
        if (ctx.failed()) break;
        bool wanted = true;
        if (!plan.positions.empty()) {
          while (next_wanted < plan.positions.size() &&
                 plan.positions[next_wanted] < r->pos) {
            ++next_wanted;
          }
          wanted = next_wanted < plan.positions.size() &&
                   plan.positions[next_wanted] == r->pos;
        }
        if (wanted) {
          sink(r->pos, r->rec);
          if (stats != nullptr) ++stats->records_output;
          ++emitted;
        }
        guard_status = ctx.CheckGuards(emitted);
        if (!guard_status.ok()) break;
        r = root->Next();
      }
    }
    root->Close();
    SEQ_RETURN_IF_ERROR(ctx.TakeError());
    return guard_status;
  }

  // Probed driving.
  if (options_.use_batch) {
    RecordBatch batch(options_.batch_capacity);
    // Returns false when a fault or budget stops the query.
    auto probe_chunk = [&](std::span<const Position> chunk) {
      size_t n = root->ProbeBatch(chunk, &batch);
      if (ctx.failed()) return false;
      for (size_t i = 0; i < n; ++i) sink(batch.pos(i), batch.rec(i));
      if (stats != nullptr) stats->records_output += static_cast<int64_t>(n);
      emitted += static_cast<int64_t>(n);
      guard_status = ctx.CheckGuards(emitted);
      return guard_status.ok();
    };
    if (!plan.positions.empty()) {
      std::span<const Position> all(plan.positions);
      for (size_t off = 0; off < all.size(); off += options_.batch_capacity) {
        if (!probe_chunk(all.subspan(
                off, std::min(options_.batch_capacity, all.size() - off)))) {
          break;
        }
      }
    } else if (!plan.output_span.IsEmpty()) {
      std::vector<Position> chunk;
      chunk.reserve(options_.batch_capacity);
      Position p = plan.output_span.start;
      while (p <= plan.output_span.end) {
        chunk.clear();
        while (chunk.size() < options_.batch_capacity &&
               p <= plan.output_span.end) {
          chunk.push_back(p++);
        }
        if (!probe_chunk(chunk)) break;
      }
    }
  } else {
    auto probe_one = [&](Position p) {
      std::optional<Record> r = root->Probe(p);
      if (ctx.failed()) return false;
      if (r.has_value()) {
        sink(p, *r);
        if (stats != nullptr) ++stats->records_output;
        ++emitted;
      }
      guard_status = ctx.CheckGuards(emitted);
      return guard_status.ok();
    };
    if (!plan.positions.empty()) {
      for (Position p : plan.positions) {
        if (!probe_one(p)) break;
      }
    } else if (!plan.output_span.IsEmpty()) {
      for (Position p = plan.output_span.start; p <= plan.output_span.end;
           ++p) {
        if (!probe_one(p)) break;
      }
    }
  }
  root->Close();
  SEQ_RETURN_IF_ERROR(ctx.TakeError());
  return guard_status;
}

Result<QueryResult> Executor::ExecuteProfiled(const PhysicalPlan& plan,
                                              QueryProfile* profile,
                                              AccessStats* stats) const {
  SEQ_CHECK(profile != nullptr);
  profile->Reset();

  // The Start operator (the driving loop below) gets the root profile
  // node; the plan tree hangs under it.
  OperatorProfile& root = *profile->root;
  {
    std::ostringstream oss;
    oss << "Start [" << AccessModeName(plan.root_mode);
    if (plan.root_mode == AccessMode::kStream) {
      oss << " over " << plan.output_span.ToString();
    } else {
      oss << " at " << plan.positions.size() << " positions";
    }
    oss << "]";
    root.label = oss.str();
  }
  root.est_cost = plan.est_cost;
  if (!plan.positions.empty()) {
    root.est_rows = static_cast<double>(plan.positions.size());
  } else if (plan.root != nullptr) {
    root.est_rows = plan.root->EstRows();
  }
  if (!plan.output_span.IsEmpty() && !plan.output_span.IsUnbounded()) {
    root.span_len = plan.output_span.Length();
  }

  // Attribution needs a stats block even when the caller doesn't want
  // one: the wrappers read simulated-cost / cache-counter deltas from it.
  AccessStats local;
  auto start = std::chrono::steady_clock::now();
  Result<QueryResult> result = ExecuteImpl(plan, &local, &root);
  int64_t wall_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();

  root.calls = 1;
  root.wall_ns = wall_ns;
  root.sim_cost = local.simulated_cost;
  root.cache_hits = local.cache_hits;
  root.cache_stores = local.cache_stores;
  if (result.ok()) {
    root.rows_out = static_cast<int64_t>(result.value().records.size());
  }
  profile->total_wall_ns = wall_ns;
  profile->stats = local;
  if (stats != nullptr) *stats += local;
  return result;
}

Result<QueryResult> Executor::ExecuteImpl(const PhysicalPlan& plan,
                                          AccessStats* stats,
                                          OperatorProfile* root_profile)
    const {
  if (plan.root == nullptr) {
    return Status::InvalidArgument("plan has no root");
  }
  ExecContext ctx;
  ctx.catalog = &catalog_;
  ctx.stats = stats;
  ctx.params = params_;
  ctx.faults = options_.fault_injector;
  ctx.guards = options_.guards;
  ctx.ArmGuards();
  // The page budget is counted from AccessStats, so enforce it even when
  // the caller did not ask for stats.
  AccessStats guard_stats;
  if (ctx.guards.max_pages > 0 && stats == nullptr) ctx.stats = &guard_stats;

  QueryResult result;
  result.schema = plan.schema;

  // Running root-row count for the row budget; a mid-stream fault or
  // budget trip discards the whole partial result — Execute never returns
  // truncated answers.
  int64_t emitted = 0;
  Status guard_status;

  SEQ_ASSIGN_OR_RETURN(SeqOpPtr root, Build(plan.root, root_profile));
  SEQ_RETURN_IF_ERROR(root->Open(&ctx));

  if (plan.root_mode == AccessMode::kStream) {
    const Span range = plan.output_span;
    // Pre-size the result from the optimizer's row estimate (capped so a
    // wild overestimate cannot balloon the allocation).
    double est = plan.root->EstRows();
    if (est > 0) {
      result.records.reserve(std::min(static_cast<size_t>(est) + 16,
                                      size_t{1} << 20));
    }
    if (!range.IsEmpty() && options_.use_batch && plan.positions.empty()) {
      // Batch driving. The optimizer clips every node's required span to
      // the requested range, so the root never emits outside [range.start,
      // range.end]; the bounds check below is purely defensive. Records
      // are materialized by moving the *values* out of the batch slots —
      // stealing the slot vectors themselves would drain the pipeline's
      // reusable buffers and reintroduce a per-row allocation upstream.
      RecordBatch batch(options_.batch_capacity);
      while (root->NextBatch(&batch) > 0) {
        if (ctx.failed()) break;
        size_t before = result.records.size();
        for (size_t i = 0; i < batch.size(); ++i) {
          if (batch.pos(i) < range.start || batch.pos(i) > range.end) {
            continue;
          }
          result.records.emplace_back();
          PosRecord& pr = result.records.back();
          pr.pos = batch.pos(i);
          MoveRecordValues(pr.rec, batch.rec(i));
        }
        if (stats != nullptr) {
          stats->records_output +=
              static_cast<int64_t>(result.records.size() - before);
        }
        emitted += static_cast<int64_t>(result.records.size() - before);
        guard_status = ctx.CheckGuards(emitted);
        if (!guard_status.ok()) break;
      }
    } else if (!range.IsEmpty()) {
      // Point queries served by a stream plan filter to the requested
      // positions during the scan.
      size_t next_wanted = 0;
      std::optional<PosRecord> r = root->NextAtOrAfter(range.start);
      while (r.has_value() && r->pos <= range.end) {
        if (ctx.failed()) break;
        bool wanted = true;
        if (!plan.positions.empty()) {
          while (next_wanted < plan.positions.size() &&
                 plan.positions[next_wanted] < r->pos) {
            ++next_wanted;
          }
          wanted = next_wanted < plan.positions.size() &&
                   plan.positions[next_wanted] == r->pos;
        }
        if (wanted) {
          result.records.push_back(std::move(*r));
          if (stats != nullptr) ++stats->records_output;
          ++emitted;
        }
        guard_status = ctx.CheckGuards(emitted);
        if (!guard_status.ok()) break;
        r = root->Next();
      }
    }
    root->Close();
    SEQ_RETURN_IF_ERROR(ctx.TakeError());
    SEQ_RETURN_IF_ERROR(guard_status);
    return result;
  }

  // Probed driving (Fig. 6): probe the requested positions, or every
  // position of the range when none were listed. Batch driving chunks the
  // (strictly ascending) position list through ProbeBatch; the probe sets
  // are identical to the tuple loop, so AccessStats parity holds here for
  // the same reason it does on the stream side.
  if (options_.use_batch) {
    RecordBatch batch(options_.batch_capacity);
    // Returns false when a fault or budget stops the query.
    auto probe_chunk = [&](std::span<const Position> chunk) {
      size_t n = root->ProbeBatch(chunk, &batch);
      if (ctx.failed()) return false;
      for (size_t i = 0; i < n; ++i) {
        result.records.emplace_back();
        PosRecord& pr = result.records.back();
        pr.pos = batch.pos(i);
        MoveRecordValues(pr.rec, batch.rec(i));
      }
      if (stats != nullptr) stats->records_output += static_cast<int64_t>(n);
      emitted += static_cast<int64_t>(n);
      guard_status = ctx.CheckGuards(emitted);
      return guard_status.ok();
    };
    if (!plan.positions.empty()) {
      std::span<const Position> all(plan.positions);
      for (size_t off = 0; off < all.size(); off += options_.batch_capacity) {
        if (!probe_chunk(all.subspan(
                off, std::min(options_.batch_capacity, all.size() - off)))) {
          break;
        }
      }
    } else if (!plan.output_span.IsEmpty()) {
      std::vector<Position> chunk;
      chunk.reserve(options_.batch_capacity);
      Position p = plan.output_span.start;
      while (p <= plan.output_span.end) {
        chunk.clear();
        while (chunk.size() < options_.batch_capacity &&
               p <= plan.output_span.end) {
          chunk.push_back(p++);
        }
        if (!probe_chunk(chunk)) break;
      }
    }
  } else {
    auto probe_one = [&](Position p) {
      std::optional<Record> r = root->Probe(p);
      if (ctx.failed()) return false;
      if (r.has_value()) {
        result.records.push_back(PosRecord{p, std::move(*r)});
        if (stats != nullptr) ++stats->records_output;
        ++emitted;
      }
      guard_status = ctx.CheckGuards(emitted);
      return guard_status.ok();
    };
    if (!plan.positions.empty()) {
      for (Position p : plan.positions) {
        if (!probe_one(p)) break;
      }
    } else if (!plan.output_span.IsEmpty()) {
      for (Position p = plan.output_span.start; p <= plan.output_span.end;
           ++p) {
        if (!probe_one(p)) break;
      }
    }
  }
  root->Close();
  SEQ_RETURN_IF_ERROR(ctx.TakeError());
  SEQ_RETURN_IF_ERROR(guard_status);
  return result;
}

std::string QueryResult::ToString(size_t limit) const {
  std::ostringstream oss;
  size_t shown = std::min(limit, records.size());
  for (size_t i = 0; i < shown; ++i) {
    oss << PosRecordToString(records[i], *schema) << "\n";
  }
  if (records.size() > shown) {
    oss << "... (" << records.size() << " records total)\n";
  }
  return oss.str();
}

}  // namespace seq
