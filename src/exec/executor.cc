#include "exec/executor.h"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "common/logging.h"
#include "exec/agg_ops.h"
#include "exec/profiled_ops.h"
#include "exec/collapse_ops.h"
#include "exec/compose_ops.h"
#include "exec/offset_ops.h"
#include "exec/scan_ops.h"
#include "exec/unary_ops.h"

namespace seq {
namespace {

/// Resolves projection column names to indices in the child schema.
Result<std::vector<size_t>> ProjectIndices(const PhysNode& node,
                                           const Schema& child_schema) {
  std::vector<size_t> indices;
  indices.reserve(node.columns.size());
  for (const std::string& col : node.columns) {
    SEQ_ASSIGN_OR_RETURN(size_t idx, child_schema.FieldIndex(col));
    indices.push_back(idx);
  }
  return indices;
}

struct AggBinding {
  size_t col_index;
  TypeId col_type;
};

Result<AggBinding> BindAggColumn(const PhysNode& node) {
  SEQ_CHECK(!node.children.empty());
  const Schema& child_schema = *node.children[0]->out_schema;
  SEQ_ASSIGN_OR_RETURN(size_t idx, child_schema.FieldIndex(node.agg_column));
  return AggBinding{idx, child_schema.field(idx).type};
}

/// Fills a fresh profile node with the PhysNode's identity and estimates.
OperatorProfile* AddProfileNode(OperatorProfile* parent,
                                const PhysNode& node) {
  OperatorProfile* prof = parent->AddChild();
  prof->label = node.Label();
  prof->est_cost = node.est_cost;
  prof->est_rows = node.EstRows();
  prof->span_len =
      (node.required.IsEmpty() || node.required.IsUnbounded())
          ? 0
          : node.required.Length();
  return prof;
}

}  // namespace

Result<StreamOpPtr> Executor::BuildStream(
    const PhysNodePtr& node, OperatorProfile* profile_parent) const {
  if (profile_parent == nullptr) return BuildStreamInner(node, nullptr);
  SEQ_CHECK(node != nullptr);
  OperatorProfile* prof = AddProfileNode(profile_parent, *node);
  SEQ_ASSIGN_OR_RETURN(StreamOpPtr inner, BuildStreamInner(node, prof));
  return StreamOpPtr(new ProfiledStreamOp(std::move(inner), prof));
}

Result<ProbeOpPtr> Executor::BuildProbe(
    const PhysNodePtr& node, OperatorProfile* profile_parent) const {
  if (profile_parent == nullptr) return BuildProbeInner(node, nullptr);
  SEQ_CHECK(node != nullptr);
  OperatorProfile* prof = AddProfileNode(profile_parent, *node);
  SEQ_ASSIGN_OR_RETURN(ProbeOpPtr inner, BuildProbeInner(node, prof));
  return ProbeOpPtr(new ProfiledProbeOp(std::move(inner), prof));
}

Result<StreamOpPtr> Executor::BuildStreamInner(const PhysNodePtr& node,
                                               OperatorProfile* prof) const {
  SEQ_CHECK(node != nullptr);
  SEQ_CHECK_MSG(node->mode == AccessMode::kStream,
                "BuildStream on a probed-mode node "
                    << OpKindName(node->op));
  switch (node->op) {
    case OpKind::kBaseRef: {
      SEQ_ASSIGN_OR_RETURN(const CatalogEntry* entry,
                           catalog_.Lookup(node->seq_name));
      return StreamOpPtr(
          new BaseStreamScan(entry->store.get(), node->required));
    }
    case OpKind::kConstantRef: {
      SEQ_ASSIGN_OR_RETURN(const CatalogEntry* entry,
                           catalog_.Lookup(node->seq_name));
      return StreamOpPtr(new ConstantStream(entry->constant, node->required));
    }
    case OpKind::kSelect: {
      SEQ_ASSIGN_OR_RETURN(StreamOpPtr child, BuildStream(node->children[0], prof));
      return StreamOpPtr(new SelectStream(std::move(child), node->predicate,
                                          node->children[0]->out_schema));
    }
    case OpKind::kProject: {
      SEQ_ASSIGN_OR_RETURN(StreamOpPtr child, BuildStream(node->children[0], prof));
      SEQ_ASSIGN_OR_RETURN(
          std::vector<size_t> indices,
          ProjectIndices(*node, *node->children[0]->out_schema));
      return StreamOpPtr(new ProjectStream(std::move(child),
                                           std::move(indices)));
    }
    case OpKind::kPositionalOffset: {
      SEQ_ASSIGN_OR_RETURN(StreamOpPtr child, BuildStream(node->children[0], prof));
      return StreamOpPtr(new PosOffsetStream(std::move(child), node->offset));
    }
    case OpKind::kValueOffset: {
      if (node->offset_strategy == OffsetStrategy::kIncrementalCacheB) {
        SEQ_ASSIGN_OR_RETURN(StreamOpPtr child,
                             BuildStream(node->children[0], prof));
        return StreamOpPtr(new ValueOffsetStream(std::move(child),
                                                 node->offset,
                                                 node->required));
      }
      SEQ_ASSIGN_OR_RETURN(ProbeOpPtr child, BuildProbe(node->children[0], prof));
      return StreamOpPtr(new ValueOffsetNaiveStream(
          std::move(child), node->offset, node->required,
          node->children[0]->required));
    }
    case OpKind::kWindowAgg: {
      SEQ_ASSIGN_OR_RETURN(AggBinding binding, BindAggColumn(*node));
      switch (node->window_kind) {
        case WindowKind::kTrailing:
          if (node->agg_strategy == AggStrategy::kCacheA) {
            SEQ_ASSIGN_OR_RETURN(StreamOpPtr child,
                                 BuildStream(node->children[0], prof));
            return StreamOpPtr(new WindowAggCachedStream(
                std::move(child), node->agg_func, binding.col_index,
                binding.col_type, node->window, node->required));
          } else {
            SEQ_ASSIGN_OR_RETURN(ProbeOpPtr child,
                                 BuildProbe(node->children[0], prof));
            return StreamOpPtr(new WindowAggNaiveStream(
                std::move(child), node->agg_func, binding.col_index,
                binding.col_type, node->window, node->required));
          }
        case WindowKind::kRunning: {
          SEQ_ASSIGN_OR_RETURN(StreamOpPtr child,
                               BuildStream(node->children[0], prof));
          return StreamOpPtr(new RunningAggStream(
              std::move(child), node->agg_func, binding.col_index,
              binding.col_type, node->required));
        }
        case WindowKind::kAll: {
          SEQ_ASSIGN_OR_RETURN(StreamOpPtr child,
                               BuildStream(node->children[0], prof));
          return StreamOpPtr(new OverallAggStream(
              std::move(child), node->agg_func, binding.col_index,
              binding.col_type, node->required));
        }
      }
      return Status::Internal("unknown window kind");
    }
    case OpKind::kCompose: {
      switch (node->join_strategy) {
        case JoinStrategy::kStreamBoth: {
          SEQ_ASSIGN_OR_RETURN(StreamOpPtr left,
                               BuildStream(node->children[0], prof));
          SEQ_ASSIGN_OR_RETURN(StreamOpPtr right,
                               BuildStream(node->children[1], prof));
          return StreamOpPtr(new ComposeLockstepStream(
              std::move(left), std::move(right), node->predicate,
              node->out_schema));
        }
        case JoinStrategy::kStreamLeftProbeRight: {
          SEQ_ASSIGN_OR_RETURN(StreamOpPtr driver,
                               BuildStream(node->children[0], prof));
          SEQ_ASSIGN_OR_RETURN(ProbeOpPtr other,
                               BuildProbe(node->children[1], prof));
          return StreamOpPtr(new ComposeStreamProbe(
              std::move(driver), std::move(other), /*driver_is_left=*/true,
              node->predicate, node->out_schema));
        }
        case JoinStrategy::kStreamRightProbeLeft: {
          SEQ_ASSIGN_OR_RETURN(ProbeOpPtr other,
                               BuildProbe(node->children[0], prof));
          SEQ_ASSIGN_OR_RETURN(StreamOpPtr driver,
                               BuildStream(node->children[1], prof));
          return StreamOpPtr(new ComposeStreamProbe(
              std::move(driver), std::move(other), /*driver_is_left=*/false,
              node->predicate, node->out_schema));
        }
        case JoinStrategy::kProbeBoth:
          return Status::Internal("probe-both compose in a stream plan");
      }
      return Status::Internal("unknown join strategy");
    }
    case OpKind::kCollapse: {
      SEQ_ASSIGN_OR_RETURN(AggBinding binding, BindAggColumn(*node));
      SEQ_ASSIGN_OR_RETURN(StreamOpPtr child, BuildStream(node->children[0], prof));
      return StreamOpPtr(new CollapseStream(
          std::move(child), node->agg_func, binding.col_index,
          binding.col_type, node->offset, node->required));
    }
    case OpKind::kExpand: {
      SEQ_ASSIGN_OR_RETURN(StreamOpPtr child, BuildStream(node->children[0], prof));
      return StreamOpPtr(new ExpandStream(std::move(child), node->offset,
                                          node->required));
    }
  }
  return Status::Internal("unknown operator kind in stream plan");
}

Result<ProbeOpPtr> Executor::BuildProbeInner(const PhysNodePtr& node,
                                             OperatorProfile* prof) const {
  SEQ_CHECK(node != nullptr);
  SEQ_CHECK_MSG(node->mode == AccessMode::kProbed,
                "BuildProbe on a stream-mode node " << OpKindName(node->op));
  switch (node->op) {
    case OpKind::kBaseRef: {
      SEQ_ASSIGN_OR_RETURN(const CatalogEntry* entry,
                           catalog_.Lookup(node->seq_name));
      return ProbeOpPtr(new BaseProbeScan(entry->store.get()));
    }
    case OpKind::kConstantRef: {
      SEQ_ASSIGN_OR_RETURN(const CatalogEntry* entry,
                           catalog_.Lookup(node->seq_name));
      return ProbeOpPtr(new ConstantProbe(entry->constant));
    }
    case OpKind::kSelect: {
      SEQ_ASSIGN_OR_RETURN(ProbeOpPtr child, BuildProbe(node->children[0], prof));
      return ProbeOpPtr(new SelectProbe(std::move(child), node->predicate,
                                        node->children[0]->out_schema));
    }
    case OpKind::kProject: {
      SEQ_ASSIGN_OR_RETURN(ProbeOpPtr child, BuildProbe(node->children[0], prof));
      SEQ_ASSIGN_OR_RETURN(
          std::vector<size_t> indices,
          ProjectIndices(*node, *node->children[0]->out_schema));
      return ProbeOpPtr(new ProjectProbe(std::move(child),
                                         std::move(indices)));
    }
    case OpKind::kPositionalOffset: {
      SEQ_ASSIGN_OR_RETURN(ProbeOpPtr child, BuildProbe(node->children[0], prof));
      return ProbeOpPtr(new PosOffsetProbe(std::move(child), node->offset));
    }
    case OpKind::kValueOffset: {
      SEQ_ASSIGN_OR_RETURN(ProbeOpPtr child, BuildProbe(node->children[0], prof));
      return ProbeOpPtr(new ValueOffsetNaiveProbe(
          std::move(child), node->offset, node->children[0]->required));
    }
    case OpKind::kWindowAgg: {
      SEQ_ASSIGN_OR_RETURN(AggBinding binding, BindAggColumn(*node));
      if (node->window_kind == WindowKind::kTrailing) {
        SEQ_ASSIGN_OR_RETURN(ProbeOpPtr child, BuildProbe(node->children[0], prof));
        return ProbeOpPtr(new WindowAggNaiveProbe(
            std::move(child), node->agg_func, binding.col_index,
            binding.col_type, node->window));
      }
      // Running/overall: the planner supplies a stream child to
      // materialize from.
      SEQ_ASSIGN_OR_RETURN(StreamOpPtr child, BuildStream(node->children[0], prof));
      return ProbeOpPtr(new MaterializedAggProbe(
          std::move(child), node->agg_func, binding.col_index,
          binding.col_type, node->window_kind, node->out_span));
    }
    case OpKind::kCompose: {
      SEQ_ASSIGN_OR_RETURN(ProbeOpPtr left, BuildProbe(node->children[0], prof));
      SEQ_ASSIGN_OR_RETURN(ProbeOpPtr right, BuildProbe(node->children[1], prof));
      return ProbeOpPtr(new ComposeProbeBoth(
          std::move(left), std::move(right), node->probe_left_first,
          node->predicate, node->out_schema));
    }
    case OpKind::kCollapse: {
      SEQ_ASSIGN_OR_RETURN(AggBinding binding, BindAggColumn(*node));
      SEQ_ASSIGN_OR_RETURN(StreamOpPtr child, BuildStream(node->children[0], prof));
      return ProbeOpPtr(new CollapseProbe(std::move(child), node->agg_func,
                                          binding.col_index, binding.col_type,
                                          node->offset));
    }
    case OpKind::kExpand: {
      SEQ_ASSIGN_OR_RETURN(ProbeOpPtr child, BuildProbe(node->children[0], prof));
      return ProbeOpPtr(new ExpandProbe(std::move(child), node->offset));
    }
  }
  return Status::Internal("unknown operator kind in probed plan");
}

Result<QueryResult> Executor::Execute(const PhysicalPlan& plan,
                                      AccessStats* stats) const {
  return ExecuteImpl(plan, stats, nullptr);
}

Status Executor::ExecuteVisit(const PhysicalPlan& plan, const RowSink& sink,
                              AccessStats* stats) const {
  if (plan.root == nullptr) {
    return Status::InvalidArgument("plan has no root");
  }
  ExecContext ctx;
  ctx.catalog = &catalog_;
  ctx.stats = stats;
  ctx.params = params_;

  if (plan.root_mode == AccessMode::kStream) {
    SEQ_ASSIGN_OR_RETURN(StreamOpPtr root, BuildStream(plan.root, nullptr));
    SEQ_RETURN_IF_ERROR(root->Open(&ctx));
    const Span range = plan.output_span;
    if (!range.IsEmpty() && options_.use_batch && plan.positions.empty()) {
      // Batch driving: rows are visited in their pipeline slot buffers —
      // no per-row materialization anywhere on this path.
      RecordBatch batch(options_.batch_capacity);
      while (root->NextBatch(&batch) > 0) {
        int64_t emitted = 0;
        for (size_t i = 0; i < batch.size(); ++i) {
          if (batch.pos(i) < range.start || batch.pos(i) > range.end) {
            continue;
          }
          sink(batch.pos(i), batch.rec(i));
          ++emitted;
        }
        if (stats != nullptr) stats->records_output += emitted;
      }
    } else if (!range.IsEmpty()) {
      size_t next_wanted = 0;
      std::optional<PosRecord> r = root->NextAtOrAfter(range.start);
      while (r.has_value() && r->pos <= range.end) {
        bool wanted = true;
        if (!plan.positions.empty()) {
          while (next_wanted < plan.positions.size() &&
                 plan.positions[next_wanted] < r->pos) {
            ++next_wanted;
          }
          wanted = next_wanted < plan.positions.size() &&
                   plan.positions[next_wanted] == r->pos;
        }
        if (wanted) {
          sink(r->pos, r->rec);
          if (stats != nullptr) ++stats->records_output;
        }
        r = root->Next();
      }
    }
    root->Close();
    return Status::OK();
  }

  SEQ_ASSIGN_OR_RETURN(ProbeOpPtr root, BuildProbe(plan.root, nullptr));
  SEQ_RETURN_IF_ERROR(root->Open(&ctx));
  auto probe_one = [&](Position p) {
    std::optional<Record> r = root->Probe(p);
    if (r.has_value()) {
      sink(p, *r);
      if (stats != nullptr) ++stats->records_output;
    }
  };
  if (!plan.positions.empty()) {
    for (Position p : plan.positions) probe_one(p);
  } else if (!plan.output_span.IsEmpty()) {
    for (Position p = plan.output_span.start; p <= plan.output_span.end;
         ++p) {
      probe_one(p);
    }
  }
  root->Close();
  return Status::OK();
}

Result<QueryResult> Executor::ExecuteProfiled(const PhysicalPlan& plan,
                                              QueryProfile* profile,
                                              AccessStats* stats) const {
  SEQ_CHECK(profile != nullptr);
  profile->Reset();

  // The Start operator (the driving loop below) gets the root profile
  // node; the plan tree hangs under it.
  OperatorProfile& root = *profile->root;
  {
    std::ostringstream oss;
    oss << "Start [" << AccessModeName(plan.root_mode);
    if (plan.root_mode == AccessMode::kStream) {
      oss << " over " << plan.output_span.ToString();
    } else {
      oss << " at " << plan.positions.size() << " positions";
    }
    oss << "]";
    root.label = oss.str();
  }
  root.est_cost = plan.est_cost;
  if (!plan.positions.empty()) {
    root.est_rows = static_cast<double>(plan.positions.size());
  } else if (plan.root != nullptr) {
    root.est_rows = plan.root->EstRows();
  }
  if (!plan.output_span.IsEmpty() && !plan.output_span.IsUnbounded()) {
    root.span_len = plan.output_span.Length();
  }

  // Attribution needs a stats block even when the caller doesn't want
  // one: the wrappers read simulated-cost / cache-counter deltas from it.
  AccessStats local;
  auto start = std::chrono::steady_clock::now();
  Result<QueryResult> result = ExecuteImpl(plan, &local, &root);
  int64_t wall_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();

  root.calls = 1;
  root.wall_ns = wall_ns;
  root.sim_cost = local.simulated_cost;
  root.cache_hits = local.cache_hits;
  root.cache_stores = local.cache_stores;
  if (result.ok()) {
    root.rows_out = static_cast<int64_t>(result.value().records.size());
  }
  profile->total_wall_ns = wall_ns;
  profile->stats = local;
  if (stats != nullptr) *stats += local;
  return result;
}

Result<QueryResult> Executor::ExecuteImpl(const PhysicalPlan& plan,
                                          AccessStats* stats,
                                          OperatorProfile* root_profile)
    const {
  if (plan.root == nullptr) {
    return Status::InvalidArgument("plan has no root");
  }
  ExecContext ctx;
  ctx.catalog = &catalog_;
  ctx.stats = stats;
  ctx.params = params_;

  QueryResult result;
  result.schema = plan.schema;

  if (plan.root_mode == AccessMode::kStream) {
    SEQ_ASSIGN_OR_RETURN(StreamOpPtr root, BuildStream(plan.root, root_profile));
    SEQ_RETURN_IF_ERROR(root->Open(&ctx));
    const Span range = plan.output_span;
    // Pre-size the result from the optimizer's row estimate (capped so a
    // wild overestimate cannot balloon the allocation).
    double est = plan.root->EstRows();
    if (est > 0) {
      result.records.reserve(std::min(static_cast<size_t>(est) + 16,
                                      size_t{1} << 20));
    }
    if (!range.IsEmpty() && options_.use_batch && plan.positions.empty()) {
      // Batch driving. The optimizer clips every node's required span to
      // the requested range, so the root never emits outside [range.start,
      // range.end]; the bounds check below is purely defensive. Records
      // are materialized by moving the *values* out of the batch slots —
      // stealing the slot vectors themselves would drain the pipeline's
      // reusable buffers and reintroduce a per-row allocation upstream.
      RecordBatch batch(options_.batch_capacity);
      while (root->NextBatch(&batch) > 0) {
        size_t before = result.records.size();
        for (size_t i = 0; i < batch.size(); ++i) {
          if (batch.pos(i) < range.start || batch.pos(i) > range.end) {
            continue;
          }
          result.records.emplace_back();
          PosRecord& pr = result.records.back();
          pr.pos = batch.pos(i);
          MoveRecordValues(pr.rec, batch.rec(i));
        }
        if (stats != nullptr) {
          stats->records_output +=
              static_cast<int64_t>(result.records.size() - before);
        }
      }
    } else if (!range.IsEmpty()) {
      // Point queries served by a stream plan filter to the requested
      // positions during the scan.
      size_t next_wanted = 0;
      std::optional<PosRecord> r = root->NextAtOrAfter(range.start);
      while (r.has_value() && r->pos <= range.end) {
        bool wanted = true;
        if (!plan.positions.empty()) {
          while (next_wanted < plan.positions.size() &&
                 plan.positions[next_wanted] < r->pos) {
            ++next_wanted;
          }
          wanted = next_wanted < plan.positions.size() &&
                   plan.positions[next_wanted] == r->pos;
        }
        if (wanted) {
          result.records.push_back(std::move(*r));
          if (stats != nullptr) ++stats->records_output;
        }
        r = root->Next();
      }
    }
    root->Close();
    return result;
  }

  // Probed driving (Fig. 6): probe the requested positions, or every
  // position of the range when none were listed.
  SEQ_ASSIGN_OR_RETURN(ProbeOpPtr root, BuildProbe(plan.root, root_profile));
  SEQ_RETURN_IF_ERROR(root->Open(&ctx));
  auto probe_one = [&](Position p) {
    std::optional<Record> r = root->Probe(p);
    if (r.has_value()) {
      result.records.push_back(PosRecord{p, std::move(*r)});
      if (stats != nullptr) ++stats->records_output;
    }
  };
  if (!plan.positions.empty()) {
    for (Position p : plan.positions) probe_one(p);
  } else if (!plan.output_span.IsEmpty()) {
    for (Position p = plan.output_span.start; p <= plan.output_span.end;
         ++p) {
      probe_one(p);
    }
  }
  root->Close();
  return result;
}

std::string QueryResult::ToString(size_t limit) const {
  std::ostringstream oss;
  size_t shown = std::min(limit, records.size());
  for (size_t i = 0; i < shown; ++i) {
    oss << PosRecordToString(records[i], *schema) << "\n";
  }
  if (records.size() > shown) {
    oss << "... (" << records.size() << " records total)\n";
  }
  return oss.str();
}

}  // namespace seq
