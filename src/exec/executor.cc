#include "exec/executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <numeric>
#include <sstream>
#include <string_view>
#include <utility>

#include "common/logging.h"
#include "exec/agg_ops.h"
#include "obs/metrics.h"
#include "exec/collapse_ops.h"
#include "exec/compose_ops.h"
#include "exec/offset_ops.h"
#include "exec/profiled_ops.h"
#include "exec/scan_ops.h"
#include "exec/unary_ops.h"

namespace seq {
namespace {

/// Resolves projection column names to indices in the child schema.
Result<std::vector<size_t>> ProjectIndices(const PhysNode& node,
                                           const Schema& child_schema) {
  std::vector<size_t> indices;
  indices.reserve(node.columns.size());
  for (const std::string& col : node.columns) {
    SEQ_ASSIGN_OR_RETURN(size_t idx, child_schema.FieldIndex(col));
    indices.push_back(idx);
  }
  return indices;
}

struct AggBinding {
  size_t col_index;
  TypeId col_type;
};

Result<AggBinding> BindAggColumn(const PhysNode& node) {
  SEQ_CHECK(!node.children.empty());
  const Schema& child_schema = *node.children[0]->out_schema;
  SEQ_ASSIGN_OR_RETURN(size_t idx, child_schema.FieldIndex(node.agg_column));
  return AggBinding{idx, child_schema.field(idx).type};
}

/// Fills a fresh profile node with the PhysNode's identity and estimates.
OperatorProfile* AddProfileNode(OperatorProfile* parent,
                                const PhysNode& node) {
  OperatorProfile* prof = parent->AddChild();
  prof->label = node.Label();
  prof->est_cost = node.est_cost;
  prof->est_rows = node.EstRows();
  prof->span_len =
      (node.required.IsEmpty() || node.required.IsUnbounded())
          ? 0
          : node.required.Length();
  return prof;
}

/// Publishes serial driving-loop progress into the live-query record.
/// Rows are reported as the caller's per-batch delta; pages are read as
/// deltas from the context's stats block (ExecuteImpl/ExecuteVisit install
/// a local block whenever telemetry is set). Construction marks one
/// worker live, destruction marks it idle; all accesses are relaxed
/// atomics, so reporting never blocks and a null telemetry costs a branch.
class TelemetryReporter {
 public:
  TelemetryReporter(QueryTelemetry* telem, const AccessStats* stats)
      : telem_(telem), stats_(stats) {
    if (telem_ != nullptr) telem_->workers.store(1, std::memory_order_relaxed);
  }
  ~TelemetryReporter() {
    if (telem_ != nullptr) telem_->workers.store(0, std::memory_order_relaxed);
  }
  TelemetryReporter(const TelemetryReporter&) = delete;
  TelemetryReporter& operator=(const TelemetryReporter&) = delete;

  void Report(int64_t rows_delta) {
    if (telem_ == nullptr) return;
    if (rows_delta > 0) {
      telem_->rows.fetch_add(rows_delta, std::memory_order_relaxed);
    }
    if (stats_ != nullptr) {
      const int64_t now = stats_->stream_pages + stats_->probe_pages;
      if (now != pages_seen_) {
        telem_->pages.fetch_add(now - pages_seen_, std::memory_order_relaxed);
        pages_seen_ = now;
      }
    }
  }

 private:
  QueryTelemetry* telem_;
  const AccessStats* stats_;
  int64_t pages_seen_ = 0;
};

}  // namespace

bool DefaultUseBatch() {
  static const bool kUseBatch = [] {
    const char* env = std::getenv("SEQ_USE_BATCH");
    return env == nullptr || std::string_view(env) != "0";
  }();
  return kUseBatch;
}

int DefaultParallelism() {
  static const int kParallelism =
      ValidatedEnvInt("SEQ_PARALLELISM", 1, /*fallback=*/1);
  return kParallelism;
}

bool DefaultUsePlanCache() {
  static const bool kUsePlanCache = [] {
    const char* env = std::getenv("SEQ_PLAN_CACHE");
    if (env == nullptr) return true;
    const std::string_view v(env);
    return v != "0" && v != "off" && v != "false";
  }();
  return kUsePlanCache;
}

Result<SeqOpPtr> Executor::Build(const PhysNodePtr& node,
                                 OperatorProfile* profile_parent) const {
  if (profile_parent == nullptr) return BuildInner(node, nullptr);
  SEQ_CHECK(node != nullptr);
  OperatorProfile* prof = AddProfileNode(profile_parent, *node);
  SEQ_ASSIGN_OR_RETURN(SeqOpPtr inner, BuildInner(node, prof));
  return SeqOpPtr(new ProfiledOp(std::move(inner), prof));
}

Result<SeqOpPtr> Executor::BuildInner(const PhysNodePtr& node,
                                      OperatorProfile* prof) const {
  SEQ_CHECK(node != nullptr);
  // The lowering table: one builder per OpKind, in enum order. The access
  // mode no longer selects between operator classes — each unified
  // operator serves the mode(s) its plan shape supports — so the only
  // per-node dispatch left is this kind lookup plus the node's strategy
  // annotations inside each builder.
  using BuildFn = Result<SeqOpPtr> (Executor::*)(const PhysNode&,
                                                 OperatorProfile*) const;
  static constexpr BuildFn kLowering[] = {
      &Executor::BuildBaseRef,      // OpKind::kBaseRef
      &Executor::BuildConstantRef,  // OpKind::kConstantRef
      &Executor::BuildSelect,       // OpKind::kSelect
      &Executor::BuildProject,      // OpKind::kProject
      &Executor::BuildPosOffset,    // OpKind::kPositionalOffset
      &Executor::BuildValueOffset,  // OpKind::kValueOffset
      &Executor::BuildWindowAgg,    // OpKind::kWindowAgg
      &Executor::BuildCompose,      // OpKind::kCompose
      &Executor::BuildCollapse,     // OpKind::kCollapse
      &Executor::BuildExpand,       // OpKind::kExpand
  };
  const size_t kind = static_cast<size_t>(node->op);
  SEQ_CHECK_MSG(kind < std::size(kLowering),
                "unknown operator kind in plan: " << OpKindName(node->op));
  return (this->*kLowering[kind])(*node, prof);
}

Result<SeqOpPtr> Executor::BuildBaseRef(const PhysNode& node,
                                        OperatorProfile*) const {
  SEQ_ASSIGN_OR_RETURN(const CatalogEntry* entry,
                       catalog_.Lookup(node.seq_name));
  return SeqOpPtr(new BaseScan(entry->store.get(), node.required,
                               node.resume_covered_from));
}

Result<SeqOpPtr> Executor::BuildConstantRef(const PhysNode& node,
                                            OperatorProfile*) const {
  SEQ_ASSIGN_OR_RETURN(const CatalogEntry* entry,
                       catalog_.Lookup(node.seq_name));
  return SeqOpPtr(new ConstantOp(entry->constant, node.required));
}

Result<SeqOpPtr> Executor::BuildSelect(const PhysNode& node,
                                       OperatorProfile* prof) const {
  SEQ_ASSIGN_OR_RETURN(SeqOpPtr child, Build(node.children[0], prof));
  return SeqOpPtr(new SelectOp(std::move(child), node.predicate,
                               node.children[0]->out_schema));
}

Result<SeqOpPtr> Executor::BuildProject(const PhysNode& node,
                                        OperatorProfile* prof) const {
  SEQ_ASSIGN_OR_RETURN(SeqOpPtr child, Build(node.children[0], prof));
  SEQ_ASSIGN_OR_RETURN(std::vector<size_t> indices,
                       ProjectIndices(node, *node.children[0]->out_schema));
  return SeqOpPtr(new ProjectOp(std::move(child), std::move(indices)));
}

Result<SeqOpPtr> Executor::BuildPosOffset(const PhysNode& node,
                                          OperatorProfile* prof) const {
  SEQ_ASSIGN_OR_RETURN(SeqOpPtr child, Build(node.children[0], prof));
  return SeqOpPtr(new PosOffsetOp(std::move(child), node.offset));
}

Result<SeqOpPtr> Executor::BuildValueOffset(const PhysNode& node,
                                            OperatorProfile* prof) const {
  SEQ_ASSIGN_OR_RETURN(SeqOpPtr child, Build(node.children[0], prof));
  if (node.offset_strategy == OffsetStrategy::kIncrementalCacheB) {
    // Streamed child in both modes: the incremental cache consumes the
    // input in order whether the consumer streams or probes monotonically.
    return SeqOpPtr(
        new ValueOffsetOp(std::move(child), node.offset, node.required));
  }
  // Naive search over a probed child.
  return SeqOpPtr(new ValueOffsetNaiveOp(std::move(child), node.offset,
                                         node.required,
                                         node.children[0]->required));
}

Result<SeqOpPtr> Executor::BuildWindowAgg(const PhysNode& node,
                                          OperatorProfile* prof) const {
  SEQ_ASSIGN_OR_RETURN(AggBinding binding, BindAggColumn(node));
  SEQ_ASSIGN_OR_RETURN(SeqOpPtr child, Build(node.children[0], prof));
  // Morsel clones of sequential aggregates carry an extra (uncharged)
  // carry-in subtree as children[1]; it is never profiled, so profiled
  // morsel trees stay isomorphic to the display tree.
  SeqOpPtr carry;
  if (node.morsel_carry) {
    SEQ_CHECK(node.children.size() == 2);
    SEQ_ASSIGN_OR_RETURN(carry, Build(node.children[1], nullptr));
  }
  switch (node.window_kind) {
    case WindowKind::kTrailing:
      if (node.mode == AccessMode::kStream &&
          node.agg_strategy == AggStrategy::kCacheA) {
        auto* op = new WindowAggCachedOp(
            std::move(child), node.agg_func, binding.col_index,
            binding.col_type, node.window, node.required);
        if (carry != nullptr) op->set_carry(std::move(carry));
        return SeqOpPtr(op);
      }
      // Naive window probing, streamed or probed (probed child).
      return SeqOpPtr(new WindowAggNaiveOp(
          std::move(child), node.agg_func, binding.col_index,
          binding.col_type, node.window, node.required));
    case WindowKind::kRunning:
      if (node.mode == AccessMode::kProbed) {
        return SeqOpPtr(new MaterializedAggOp(
            std::move(child), node.agg_func, binding.col_index,
            binding.col_type, node.window_kind, node.out_span));
      }
      {
        auto* op = new RunningAggOp(std::move(child), node.agg_func,
                                    binding.col_index, binding.col_type,
                                    node.required);
        if (carry != nullptr) op->set_carry(std::move(carry));
        return SeqOpPtr(op);
      }
    case WindowKind::kAll:
      if (node.mode == AccessMode::kProbed) {
        return SeqOpPtr(new MaterializedAggOp(
            std::move(child), node.agg_func, binding.col_index,
            binding.col_type, node.window_kind, node.out_span));
      }
      return SeqOpPtr(new OverallAggOp(std::move(child), node.agg_func,
                                       binding.col_index, binding.col_type,
                                       node.required));
  }
  return Status::Internal("unknown window kind");
}

Result<SeqOpPtr> Executor::BuildCompose(const PhysNode& node,
                                        OperatorProfile* prof) const {
  if (node.mode == AccessMode::kProbed) {
    SEQ_ASSIGN_OR_RETURN(SeqOpPtr left, Build(node.children[0], prof));
    SEQ_ASSIGN_OR_RETURN(SeqOpPtr right, Build(node.children[1], prof));
    return SeqOpPtr(new ComposeProbeBothOp(
        std::move(left), std::move(right), node.probe_left_first,
        node.predicate, node.out_schema));
  }
  switch (node.join_strategy) {
    case JoinStrategy::kStreamBoth: {
      SEQ_ASSIGN_OR_RETURN(SeqOpPtr left, Build(node.children[0], prof));
      SEQ_ASSIGN_OR_RETURN(SeqOpPtr right, Build(node.children[1], prof));
      return SeqOpPtr(new ComposeLockstepOp(std::move(left), std::move(right),
                                            node.predicate, node.out_schema));
    }
    case JoinStrategy::kStreamLeftProbeRight: {
      SEQ_ASSIGN_OR_RETURN(SeqOpPtr driver, Build(node.children[0], prof));
      SEQ_ASSIGN_OR_RETURN(SeqOpPtr other, Build(node.children[1], prof));
      return SeqOpPtr(new ComposeStreamProbeOp(
          std::move(driver), std::move(other), /*driver_is_left=*/true,
          node.predicate, node.out_schema));
    }
    case JoinStrategy::kStreamRightProbeLeft: {
      SEQ_ASSIGN_OR_RETURN(SeqOpPtr other, Build(node.children[0], prof));
      SEQ_ASSIGN_OR_RETURN(SeqOpPtr driver, Build(node.children[1], prof));
      return SeqOpPtr(new ComposeStreamProbeOp(
          std::move(driver), std::move(other), /*driver_is_left=*/false,
          node.predicate, node.out_schema));
    }
    case JoinStrategy::kProbeBoth:
      return Status::Internal("probe-both compose in a stream plan");
  }
  return Status::Internal("unknown join strategy");
}

Result<SeqOpPtr> Executor::BuildCollapse(const PhysNode& node,
                                         OperatorProfile* prof) const {
  SEQ_ASSIGN_OR_RETURN(AggBinding binding, BindAggColumn(node));
  SEQ_ASSIGN_OR_RETURN(SeqOpPtr child, Build(node.children[0], prof));
  return SeqOpPtr(new CollapseOp(
      std::move(child), node.agg_func, binding.col_index, binding.col_type,
      node.offset, node.required,
      /*materialized=*/node.mode == AccessMode::kProbed));
}

Result<SeqOpPtr> Executor::BuildExpand(const PhysNode& node,
                                       OperatorProfile* prof) const {
  SEQ_ASSIGN_OR_RETURN(SeqOpPtr child, Build(node.children[0], prof));
  return SeqOpPtr(new ExpandOp(std::move(child), node.offset, node.required));
}

// ---------------------------------------------------------------------------
// Morsel-driven parallelism (docs/execution.md).
//
// A stream-root plan's output span is split into contiguous morsels; each
// morsel is evaluated by an independent clone of the operator tree derived
// from the same PhysicalPlan, clipped to the morsel, with private
// AccessStats. Results and stats merge at the barrier in morsel order, so
// rows, counters and budget trips are identical to a serial run. Probed
// roots need no clones at all — probes are stateless per position — so the
// position list (or span walk) is simply chunked across workers.
// ---------------------------------------------------------------------------

namespace {

// Nonnegative remainder, for boundary-alignment arithmetic over possibly
// negative positions.
int64_t Mod(int64_t a, int64_t m) {
  int64_t r = a % m;
  return r < 0 ? r + m : r;
}

// Floor division for possibly negative numerators (b > 0); mirrors the
// bucket mapping of ExpandOp.
int64_t FloorDiv(int64_t a, int64_t b) {
  int64_t q = a / b;
  return (a % b != 0 && a < 0) ? q - 1 : q;
}

// Modular inverse of a modulo m (requires gcd(a, m) == 1, m >= 1), by the
// extended Euclidean algorithm.
int64_t ModInverse(int64_t a, int64_t m) {
  if (m == 1) return 0;
  int64_t t = 0, new_t = 1, r = m, new_r = Mod(a, m);
  while (new_r != 0) {
    const int64_t q = r / new_r;
    t -= q * new_t;
    std::swap(t, new_t);
    r -= q * new_r;
    std::swap(r, new_r);
  }
  return Mod(t, m);
}

// Alignment moduli are capped so the congruence arithmetic above cannot
// overflow; a plan stacking enough Expands to exceed this runs serial.
constexpr int64_t kMaxAlignModulus = int64_t{1} << 31;

// What AnalyzeSpine learned about a stream plan's driving spine: whether
// it partitions at all, which arithmetic class morsel boundaries must lie
// in (start ≡ phase mod modulus, so collapse/expand bucket edges coincide
// with morsel edges), and the estimated carry-in replay cost per boundary.
struct SpineInfo {
  bool ok = true;
  std::string reason;
  int64_t modulus = 1;
  int64_t phase = 0;
  double carry_cost = 0.0;
};

SpineInfo SpineFail(std::string reason) {
  SpineInfo s;
  s.ok = false;
  s.reason = std::move(reason);
  return s;
}

// Operator kinds a carry-in clone may be built over: cheap, stateless,
// re-streamable shapes. Anything with its own sequential state (nested
// aggregates, offsets, composes) would need carry-in of its own.
bool CarrySupported(const PhysNodePtr& node) {
  switch (node->op) {
    case OpKind::kBaseRef:
    case OpKind::kConstantRef:
      return true;
    case OpKind::kSelect:
    case OpKind::kProject:
    case OpKind::kPositionalOffset:
      return CarrySupported(node->children[0]);
    default:
      return false;
  }
}

// True when the subtree is evaluated purely by per-position probes with no
// cross-probe state, so independent per-worker instances charge exactly
// what one serial instance would. Materializing operators (probed
// collapse, materialized aggregates, the Cache-B value offset) re-consume
// their whole input per instance and are rejected.
bool ProbedSafe(const PhysNodePtr& node, std::string* why) {
  switch (node->op) {
    case OpKind::kBaseRef:
    case OpKind::kConstantRef:
      return true;
    case OpKind::kSelect:
    case OpKind::kProject:
    case OpKind::kPositionalOffset:
    case OpKind::kExpand:
      return ProbedSafe(node->children[0], why);
    case OpKind::kValueOffset:
      if (node->offset_strategy == OffsetStrategy::kIncrementalCacheB) {
        *why = "stateful value-offset cache (Cache-B) is sequential";
        return false;
      }
      return ProbedSafe(node->children[0], why);
    case OpKind::kWindowAgg:
      if (node->window_kind != WindowKind::kTrailing ||
          (node->mode == AccessMode::kStream &&
           node->agg_strategy == AggStrategy::kCacheA)) {
        *why = "materialized/cached aggregate re-consumes its input per worker";
        return false;
      }
      return ProbedSafe(node->children[0], why);
    case OpKind::kCompose:
      if (node->mode != AccessMode::kProbed) {
        *why = "stream compose inside a probed subtree";
        return false;
      }
      return ProbedSafe(node->children[0], why) &&
             ProbedSafe(node->children[1], why);
    case OpKind::kCollapse:
      *why = "materialized collapse re-consumes its input per worker";
      return false;
  }
  *why = "unknown operator kind";
  return false;
}

// Walks the stream-driven spine of the plan (the chain of operators whose
// state advances with the output position; probed side-branches hang off
// it) and decides whether contiguous output morsels can be evaluated by
// independent clones. See docs/execution.md for the full rules.
SpineInfo AnalyzeSpine(const PhysNodePtr& node) {
  switch (node->op) {
    case OpKind::kBaseRef:
    case OpKind::kConstantRef:
      return SpineInfo{};
    case OpKind::kSelect:
    case OpKind::kProject:
      return AnalyzeSpine(node->children[0]);
    case OpKind::kPositionalOffset: {
      // out(p) = in(p + l): a morsel start b clips the child at b + l, so
      // the child's alignment class shifts by -l in output coordinates.
      SpineInfo c = AnalyzeSpine(node->children[0]);
      if (!c.ok) return c;
      c.phase = Mod(c.phase - node->offset, c.modulus);
      return c;
    }
    case OpKind::kValueOffset: {
      if (node->offset_strategy == OffsetStrategy::kIncrementalCacheB) {
        return SpineFail("stateful value-offset cache (Cache-B) is sequential");
      }
      std::string why;
      if (!ProbedSafe(node->children[0], &why)) return SpineFail(why);
      return SpineInfo{};  // stateless per-position search; any boundary
    }
    case OpKind::kWindowAgg:
      switch (node->window_kind) {
        case WindowKind::kAll:
          return SpineFail("overall aggregate is a blocking full pass");
        case WindowKind::kTrailing: {
          if (!(node->mode == AccessMode::kStream &&
                node->agg_strategy == AggStrategy::kCacheA)) {
            // Naive prober: stateless per position over a probed child.
            std::string why;
            if (!ProbedSafe(node->children[0], &why)) return SpineFail(why);
            return SpineInfo{};
          }
          // Cache-A: sequential window state, rebuilt per morsel by an
          // uncharged carry-in clone over the window-1 preceding
          // positions.
          if (!CarrySupported(node->children[0])) {
            return SpineFail("window carry-in unsupported over " +
                             node->children[0]->Label());
          }
          SpineInfo c = AnalyzeSpine(node->children[0]);
          if (!c.ok) return c;
          const PhysNode& ch = *node->children[0];
          const int64_t len =
              (!ch.required.IsEmpty() && !ch.required.IsUnbounded())
                  ? ch.required.Length()
                  : 1;
          const double per_pos = ch.est_cost / static_cast<double>(len);
          c.carry_cost +=
              per_pos * static_cast<double>(std::max<int64_t>(
                            node->window - 1, 0));
          return c;
        }
        case WindowKind::kRunning: {
          if (!CarrySupported(node->children[0])) {
            return SpineFail("running-aggregate carry-in unsupported over " +
                             node->children[0]->Label());
          }
          SpineInfo c = AnalyzeSpine(node->children[0]);
          if (!c.ok) return c;
          // Carry-in replays the whole prefix: half the input on average
          // per boundary — usually enough to force the serial fallback.
          c.carry_cost += 0.5 * node->children[0]->est_cost;
          return c;
        }
      }
      return SpineFail("unknown window kind");
    case OpKind::kCompose:
      switch (node->join_strategy) {
        case JoinStrategy::kStreamBoth:
          return SpineFail("lock-step compose does not partition");
        case JoinStrategy::kStreamLeftProbeRight: {
          std::string why;
          if (!ProbedSafe(node->children[1], &why)) return SpineFail(why);
          return AnalyzeSpine(node->children[0]);
        }
        case JoinStrategy::kStreamRightProbeLeft: {
          std::string why;
          if (!ProbedSafe(node->children[0], &why)) return SpineFail(why);
          return AnalyzeSpine(node->children[1]);
        }
        case JoinStrategy::kProbeBoth:
          return SpineFail("probe-both compose in a stream plan");
      }
      return SpineFail("unknown join strategy");
    case OpKind::kCollapse: {
      if (node->mode == AccessMode::kProbed) {
        return SpineFail("materialized collapse re-consumes its input");
      }
      const int64_t f = node->offset;
      if (f <= 0) return SpineFail("non-positive collapse factor");
      SpineInfo c = AnalyzeSpine(node->children[0]);
      if (!c.ok) return c;
      // A morsel start b puts the child clip at b*f — always a bucket
      // edge, so collapse itself imposes no constraint; it only transports
      // the child's: f*b ≡ phase (mod modulus).
      if (c.modulus > 1) {
        const int64_t g = std::gcd(f, c.modulus);
        if (c.phase % g != 0) {
          return SpineFail("collapse cannot align morsel boundaries");
        }
        const int64_t m = c.modulus / g;
        c.phase = m == 1 ? 0 : Mod((c.phase / g) % m * ModInverse(f / g, m), m);
        c.modulus = m;
      }
      return c;
    }
    case OpKind::kExpand: {
      const int64_t f = node->offset;
      if (f <= 0) return SpineFail("non-positive expand factor");
      SpineInfo c = AnalyzeSpine(node->children[0]);
      if (!c.ok) return c;
      // Morsel starts must land on bucket edges (multiples of f) AND map
      // to child positions in the child's class: b = f*(phase + k*mod).
      if (c.modulus > kMaxAlignModulus / f) {
        return SpineFail("alignment modulus too large");
      }
      c.phase = Mod(c.phase * f, c.modulus * f);
      c.modulus = c.modulus * f;
      return c;
    }
  }
  return SpineFail("unknown operator kind");
}

// Clips the subtree to the morsel clip [lo, hi] given in the node's OUTPUT
// coordinates (sentinel bounds mean "unclipped on this side"), rewriting
// child clips through each operator's coordinate mapping. Base scans are
// marked to resume page accounting (the page holding the record just
// before the clip counts as already fetched), and sequential aggregates on
// a clipped morsel get an uncharged carry-in subtree as children[1]. Only
// reached for shapes AnalyzeSpine approved.
//
// `with_carry = false` suppresses the carry-in subtrees: checkpointed
// serial chunks restore aggregate state from the saved operator-state
// blob instead of replaying the lead-in, so a carry clone would both
// waste the replay and double-apply the prefix.
PhysNodePtr CloneForMorsel(const PhysNodePtr& node, Position lo, Position hi,
                           bool with_carry = true) {
  auto clone = std::make_shared<PhysNode>(*node);
  clone->required = node->required.Intersect(Span::Of(lo, hi));
  switch (node->op) {
    case OpKind::kBaseRef:
      clone->resume_covered_from = node->required.start;
      break;
    case OpKind::kConstantRef:
      break;
    case OpKind::kSelect:
    case OpKind::kProject:
      clone->children[0] =
          CloneForMorsel(node->children[0], lo, hi, with_carry);
      break;
    case OpKind::kPositionalOffset: {
      // out(p) = in(p + l).
      const Position clo = lo <= kMinPosition ? kMinPosition : lo + node->offset;
      const Position chi = hi >= kMaxPosition ? kMaxPosition : hi + node->offset;
      clone->children[0] =
          CloneForMorsel(node->children[0], clo, chi, with_carry);
      break;
    }
    case OpKind::kValueOffset:
      break;  // naive search: probed child, shared untouched
    case OpKind::kWindowAgg: {
      if (!(node->window_kind == WindowKind::kTrailing &&
            node->mode == AccessMode::kStream &&
            node->agg_strategy == AggStrategy::kCacheA) &&
          node->window_kind != WindowKind::kRunning) {
        break;  // naive prober: probed child, shared untouched
      }
      clone->children[0] =
          CloneForMorsel(node->children[0], lo, hi, with_carry);
      if (lo > kMinPosition && with_carry) {
        Position carry_lo;
        if (node->window_kind == WindowKind::kTrailing) {
          if (node->window <= 1) break;  // window of 1: no prior state
          carry_lo = lo - (node->window - 1);
        } else {
          carry_lo = kMinPosition;  // running: the whole prefix
        }
        clone->morsel_carry = true;
        clone->children.push_back(
            CloneForMorsel(node->children[0], carry_lo, lo - 1));
      }
      break;
    }
    case OpKind::kCompose:
      if (node->join_strategy == JoinStrategy::kStreamLeftProbeRight) {
        clone->children[0] =
            CloneForMorsel(node->children[0], lo, hi, with_carry);
      } else {
        clone->children[1] =
            CloneForMorsel(node->children[1], lo, hi, with_carry);
      }
      break;
    case OpKind::kCollapse: {
      // Output bucket b covers child [b*f, (b+1)*f - 1].
      const int64_t f = node->offset;
      const Position clo = lo <= kMinPosition ? kMinPosition : lo * f;
      const Position chi = hi >= kMaxPosition ? kMaxPosition : hi * f + (f - 1);
      clone->children[0] =
          CloneForMorsel(node->children[0], clo, chi, with_carry);
      break;
    }
    case OpKind::kExpand: {
      // out(p) = in(floor(p / f)); morsel starts are multiples of f.
      const int64_t f = node->offset;
      const Position clo = lo <= kMinPosition ? kMinPosition : FloorDiv(lo, f);
      const Position chi = hi >= kMaxPosition ? kMaxPosition : FloorDiv(hi, f);
      clone->children[0] =
          CloneForMorsel(node->children[0], clo, chi, with_carry);
      break;
    }
  }
  return clone;
}

// Adds a per-morsel profile tree's measured counters into the skeleton
// built from the original plan. The trees are isomorphic — clones change
// spans, never structure, and carry-in subtrees are built unprofiled — so
// a pairwise recursive walk lines up. Per-operator wall_ns becomes summed
// worker time (documented in docs/observability.md).
void MergeProfileTree(OperatorProfile* dst, const OperatorProfile& src) {
  dst->calls += src.calls;
  dst->rows_out += src.rows_out;
  dst->wall_ns += src.wall_ns;
  dst->sim_cost += src.sim_cost;
  dst->cache_hits += src.cache_hits;
  dst->cache_stores += src.cache_stores;
  const size_t n = std::min(dst->children.size(), src.children.size());
  for (size_t i = 0; i < n; ++i) {
    MergeProfileTree(dst->children[i].get(), *src.children[i]);
  }
}

// Whole-query budget state shared by all morsel workers. Workers add page
// and row deltas AFTER each non-empty root batch (mirroring where the
// serial driver checks), then test the running totals in the serial
// CheckGuards order with the identical messages — so whether a budget
// trips, and with what status, matches a serial run. The first failure
// wins; later ones (usually the cancellation cascade through `stop`) are
// dropped, exactly like ExecContext::Raise.
struct SharedGuardState {
  std::atomic<int64_t> rows{0};
  std::atomic<int64_t> pages{0};
  std::atomic<bool> stop{false};
  std::mutex mu;
  Status first_status;

  void Fail(Status s) {
    {
      std::lock_guard<std::mutex> lock(mu);
      if (first_status.ok() && !s.ok()) first_status = std::move(s);
    }
    stop.store(true, std::memory_order_release);
  }

  Status TakeStatus() {
    std::lock_guard<std::mutex> lock(mu);
    return first_status;
  }
};

}  // namespace

MorselPlan Executor::PlanMorsels(const PhysicalPlan& plan) const {
  MorselPlan mp;
  auto serial = [&mp](std::string why) -> MorselPlan {
    mp.parallel = false;
    mp.workers = 1;
    mp.morsels.clear();
    mp.reason = "serial: " + std::move(why);
    return mp;
  };
  const int workers = options_.parallelism;
  if (workers <= 1) return serial("parallelism=1");
  if (plan.root == nullptr) return serial("no plan root");
  if (!options_.use_batch) {
    return serial("tuple-at-a-time driving is the serial baseline");
  }
  if (options_.fault_injector != nullptr) {
    return serial("fault injector armed: global hit order must match serial");
  }

  // Below this many positions per would-be morsel, thread startup beats
  // the work itself. An explicit morsel_size overrides (tests use it to
  // force parallel driving on small fixtures).
  constexpr int64_t kMinMorselLen = 256;

  if (plan.root_mode == AccessMode::kProbed) {
    std::string why;
    if (!ProbedSafe(plan.root, &why)) return serial(why);
    if (!plan.positions.empty()) {
      const int64_t n = static_cast<int64_t>(plan.positions.size());
      if (options_.morsel_size == 0 && n < workers * kMinMorselLen) {
        return serial("too few probe positions to split");
      }
      mp.parallel = true;
      mp.workers = workers;
      std::ostringstream oss;
      oss << "parallel: " << workers << " workers over " << n
          << " probe positions";
      mp.reason = oss.str();
      return mp;  // morsels stay empty: ExecuteParallel chunks the list
    }
    if (plan.output_span.IsEmpty()) return serial("empty output span");
    if (plan.output_span.IsUnbounded()) return serial("unbounded probe range");
    const int64_t len = plan.output_span.Length();
    int64_t count;
    if (options_.morsel_size > 0) {
      const int64_t ms = static_cast<int64_t>(options_.morsel_size);
      count = std::min<int64_t>((len + ms - 1) / ms, 1024);
    } else {
      if (len < workers * kMinMorselLen) {
        return serial("output span too short to split");
      }
      count = workers;
    }
    if (count <= 1) return serial("single morsel");
    const int64_t step = (len + count - 1) / count;
    for (Position s = plan.output_span.start; s <= plan.output_span.end;
         s += step) {
      mp.morsels.push_back(
          Span::Of(s, std::min(plan.output_span.end, s + step - 1)));
    }
    mp.parallel = true;
    mp.workers = static_cast<int>(
        std::min<size_t>(static_cast<size_t>(workers), mp.morsels.size()));
    std::ostringstream oss;
    oss << "parallel: " << mp.workers << " workers x " << mp.morsels.size()
        << " probe morsels over " << plan.output_span.ToString();
    mp.reason = oss.str();
    return mp;
  }

  // Stream root.
  if (!plan.positions.empty()) {
    return serial("point-position filter on a stream plan");
  }
  if (plan.output_span.IsEmpty()) return serial("empty output span");
  if (plan.output_span.IsUnbounded()) return serial("unbounded output span");
  const SpineInfo spine = AnalyzeSpine(plan.root);
  if (!spine.ok) return serial(spine.reason);

  const int64_t len = plan.output_span.Length();
  int64_t count;
  if (options_.morsel_size > 0) {
    const int64_t ms = static_cast<int64_t>(options_.morsel_size);
    count = std::min<int64_t>((len + ms - 1) / ms, 1024);
  } else {
    if (len < workers * kMinMorselLen) {
      return serial("output span too short to split");
    }
    count = workers;
  }
  if (count <= 1) return serial("single morsel");

  // Carry-in economics: replaying aggregate lead-ins is uncharged but not
  // free in wall time. Estimated replay must stay under the estimated
  // parallel win, (W-1)/2W of the plan cost; an explicit morsel_size is a
  // caller override and skips the heuristic.
  if (options_.morsel_size == 0 && spine.carry_cost > 0.0) {
    const double carry_total =
        spine.carry_cost * static_cast<double>(count - 1);
    const double parallel_win = plan.est_cost *
                                static_cast<double>(workers - 1) /
                                (2.0 * static_cast<double>(workers));
    if (carry_total > parallel_win) {
      return serial("carry-in replay would cost more than the parallel win");
    }
  }

  // Morsel starts: even splits snapped UP into the boundary class
  // (start ≡ phase mod modulus) so collapse/expand bucket edges coincide
  // with morsel edges.
  const Span span = plan.output_span;
  std::vector<Position> starts;
  starts.push_back(span.start);
  const int64_t step = (len + count - 1) / count;
  for (int64_t k = 1; k < count; ++k) {
    Position b = span.start + k * step;
    if (spine.modulus > 1) b += Mod(spine.phase - b, spine.modulus);
    if (b <= starts.back()) continue;
    if (b > span.end) break;
    starts.push_back(b);
  }
  if (starts.size() <= 1) {
    return serial("boundary alignment left a single morsel");
  }
  mp.morsels.reserve(starts.size());
  for (size_t i = 0; i < starts.size(); ++i) {
    const Position e = (i + 1 < starts.size()) ? starts[i + 1] - 1 : span.end;
    mp.morsels.push_back(Span::Of(starts[i], e));
  }
  mp.parallel = true;
  mp.workers = static_cast<int>(
      std::min<size_t>(static_cast<size_t>(workers), mp.morsels.size()));
  std::ostringstream oss;
  oss << "parallel: " << mp.workers << " workers x " << mp.morsels.size()
      << " morsels over " << span.ToString();
  if (spine.modulus > 1) oss << " (aligned mod " << spine.modulus << ")";
  mp.reason = oss.str();
  return mp;
}

Result<QueryResult> Executor::ExecuteParallel(const PhysicalPlan& plan,
                                              const MorselPlan& mp,
                                              AccessStats* stats,
                                              OperatorProfile* root_profile)
    const {
  return ExecuteParallelInner(plan, mp, stats, root_profile, nullptr);
}

Result<QueryResult> Executor::ExecuteParallelInner(
    const PhysicalPlan& plan, const MorselPlan& mp, AccessStats* stats,
    OperatorProfile* root_profile, const ChunkExtras* extras) const {
  const bool probed = plan.root_mode == AccessMode::kProbed;
  const bool probed_list = probed && !plan.positions.empty();

  // Wall-clock budget measured from BEFORE admission: time spent waiting
  // in the scheduler's queue counts toward max_wall_ms, so a query that
  // queues never gets more total wall time than an uncontended one. All
  // workers later arm the same instant, so the budget bounds the query,
  // not each worker's skew. A checkpointed chunk inherits the deadline
  // computed before chunk 0 — the wall budget spans the whole run, not
  // each chunk.
  std::chrono::steady_clock::time_point deadline{};
  bool has_deadline = options_.guards.max_wall_ms > 0;
  if (extras != nullptr) {
    has_deadline = extras->has_deadline;
    deadline = extras->deadline;
  } else if (has_deadline) {
    deadline = std::chrono::steady_clock::now() +
               std::chrono::milliseconds(options_.guards.max_wall_ms);
  }

  // Admission to the process-wide scheduler: at most max_running parallel
  // queries execute at once; beyond that this thread waits (visible as
  // the `queued` registry state) or is rejected. Serial queries never
  // reach this point.
  QueryTelemetry* telem = options_.telemetry;
  QueryScheduler& sched = QueryScheduler::Global();
  QueryScheduler::AdmitRequest admit_request;
  admit_request.priority = options_.priority;
  admit_request.timeout_ms = options_.admission_timeout_ms;
  if (has_deadline) admit_request.deadline = deadline;
  admit_request.cancel = options_.guards.cancel;
  int pre_admit_state = static_cast<int>(QueryState::kExecuting);
  if (telem != nullptr) {
    pre_admit_state = telem->state.load(std::memory_order_relaxed);
    telem->state.store(static_cast<int>(QueryState::kQueued),
                       std::memory_order_relaxed);
  }
  Result<QueryScheduler::Admission> admit_result = sched.Admit(admit_request);
  if (telem != nullptr) {
    // Restore the pre-admission state (kExecuting, or kDegraded on the
    // cache-degradation re-run) rather than assuming it.
    telem->state.store(pre_admit_state, std::memory_order_relaxed);
  }
  if (!admit_result.ok()) return admit_result.status();
  QueryScheduler::Admission admission = std::move(admit_result).value();
  if (telem != nullptr && admission.queue_wait_us() > 0) {
    telem->queued_us.store(admission.queue_wait_us(),
                           std::memory_order_relaxed);
  }

  // Work units. Stream morsels get a clipped clone of the plan tree (the
  // first/last morsel keeps the serial plan's lead-in/tail by leaving that
  // side unclipped); probed roots share the original immutable nodes and
  // split the position list / span walk instead.
  struct Unit {
    PhysNodePtr node;
    Span emit = Span::Empty();
    size_t pos_begin = 0, pos_end = 0;  // probed position-list chunk
  };
  std::vector<Unit> units;
  if (probed_list) {
    const size_t n = plan.positions.size();
    size_t chunks = options_.morsel_size > 0
                        ? (n + options_.morsel_size - 1) / options_.morsel_size
                        : static_cast<size_t>(mp.workers);
    chunks = std::min(std::max<size_t>(chunks, 1), std::min<size_t>(n, 1024));
    const size_t step = (n + chunks - 1) / chunks;
    for (size_t off = 0; off < n; off += step) {
      Unit u;
      u.node = plan.root;
      u.pos_begin = off;
      u.pos_end = std::min(n, off + step);
      units.push_back(std::move(u));
    }
  } else if (probed) {
    for (const Span& m : mp.morsels) {
      Unit u;
      u.node = plan.root;
      u.emit = m;
      units.push_back(std::move(u));
    }
  } else {
    // A checkpointed chunk clips its outermost units at the chunk
    // boundaries instead of leaving them open: a middle chunk must not
    // re-read the lead-in or run into the tail.
    const Position outer_lo = extras != nullptr ? extras->clip_lo : kMinPosition;
    const Position outer_hi = extras != nullptr ? extras->clip_hi : kMaxPosition;
    for (size_t i = 0; i < mp.morsels.size(); ++i) {
      Unit u;
      u.emit = mp.morsels[i];
      const Position lo = i == 0 ? outer_lo : mp.morsels[i].start;
      const Position hi =
          i + 1 == mp.morsels.size() ? outer_hi : mp.morsels[i].end;
      u.node = CloneForMorsel(plan.root, lo, hi);
      units.push_back(std::move(u));
    }
  }
  const size_t n_units = units.size();

  // Registry morsel counts are owned by the chunk driver when this group
  // runs one chunk of a checkpointed query (morsels_total = chunk count).
  if (telem != nullptr && extras == nullptr) {
    telem->morsels_total.store(static_cast<int>(n_units),
                               std::memory_order_relaxed);
  }
  // Always-on per-morsel metrics: name resolution pays the registry mutex
  // once per query here; workers then Record lock-free.
  MetricCounter& morsel_counter =
      MetricsRegistry::Global().Counter("exec.morsels");
  Histogram& morsel_hist =
      MetricsRegistry::Global().GetHistogram("exec.morsel_us");

  // Profile skeleton from the ORIGINAL plan: labels, estimates and spans
  // are the serial plan's. The builder's operator tree is discarded; the
  // per-unit scratch trees below merge their measured counters into this
  // skeleton at the barrier.
  if (root_profile != nullptr) {
    SEQ_ASSIGN_OR_RETURN(SeqOpPtr skeleton, Build(plan.root, root_profile));
    (void)skeleton;
  }
  std::vector<OperatorProfile> unit_profiles(
      root_profile != nullptr ? n_units : 0);

  std::vector<AccessStats> unit_stats(n_units);
  std::vector<std::vector<PosRecord>> unit_records(n_units);
  {
    const double est = probed_list ? static_cast<double>(plan.positions.size())
                                   : plan.root->EstRows();
    const size_t per_unit = std::min(
        static_cast<size_t>(std::max(est, 0.0)) / n_units + 16,
        size_t{1} << 18);
    for (auto& v : unit_records) v.reserve(per_unit);
  }

  SharedGuardState shared;
  if (extras != nullptr) {
    // Whole-query budgets: rows and pages already spent by earlier chunks
    // count against max_rows/max_pages, so a checkpointed run trips at
    // exactly the same totals as an uninterrupted one.
    shared.rows.store(extras->base_rows, std::memory_order_relaxed);
    shared.pages.store(extras->base_pages, std::memory_order_relaxed);
  }

  auto run_unit = [&](size_t ui) {
    const auto unit_start = std::chrono::steady_clock::now();
    const Unit& unit = units[ui];
    ExecContext ctx;
    ctx.catalog = &catalog_;
    ctx.stats = &unit_stats[ui];
    ctx.params = params_;
    ctx.faults = nullptr;  // an armed injector forces serial in PlanMorsels
    ctx.guards = options_.guards;
    // Rows and pages are whole-query budgets, enforced against the shared
    // totals; the worker context keeps only the cooperative stop flag, the
    // shared deadline and the (position-determined) cache budget.
    ctx.guards.max_rows = 0;
    ctx.guards.max_pages = 0;
    ctx.guards.cancel = &shared.stop;
    if (has_deadline) ctx.ArmGuardsAt(deadline);

    Result<SeqOpPtr> built = Build(
        unit.node, root_profile != nullptr ? &unit_profiles[ui] : nullptr);
    if (!built.ok()) {
      shared.Fail(built.status());
      return;
    }
    SeqOpPtr root = std::move(built).value();
    Status open = root->Open(&ctx);
    if (!open.ok()) {
      shared.Fail(std::move(open));
      return;
    }

    std::vector<PosRecord>& out = unit_records[ui];
    AccessStats& mstats = unit_stats[ui];
    int64_t pages_seen = 0;

    // Post-batch accounting against the shared budgets, in the serial
    // CheckGuards order (cancel, deadline, pages, rows), with the serial
    // messages. Page deltas from the final drain (after the last non-empty
    // batch) are intentionally NOT accounted — the serial driver never
    // checks after them either.
    auto account = [&](int64_t emitted) {
      Status g = ctx.CheckGuards(0);  // cancel + deadline
      if (!g.ok()) {
        shared.Fail(std::move(g));
        return false;
      }
      const int64_t page_now = mstats.stream_pages + mstats.probe_pages;
      const int64_t page_delta = page_now - pages_seen;
      pages_seen = page_now;
      if (telem != nullptr) {
        if (page_delta > 0) {
          telem->pages.fetch_add(page_delta, std::memory_order_relaxed);
        }
        if (emitted > 0) {
          telem->rows.fetch_add(emitted, std::memory_order_relaxed);
        }
      }
      if (options_.guards.max_pages > 0) {
        const int64_t total =
            shared.pages.fetch_add(page_delta, std::memory_order_relaxed) +
            page_delta;
        if (total > options_.guards.max_pages) {
          shared.Fail(Status::ResourceExhausted(
              "query exceeded page-access budget of " +
              std::to_string(options_.guards.max_pages) + " pages"));
          return false;
        }
      }
      if (options_.guards.max_rows > 0) {
        const int64_t total =
            shared.rows.fetch_add(emitted, std::memory_order_relaxed) +
            emitted;
        if (total > options_.guards.max_rows) {
          shared.Fail(Status::ResourceExhausted(
              "query exceeded row budget of " +
              std::to_string(options_.guards.max_rows) + " rows"));
          return false;
        }
      }
      return true;
    };

    RecordBatch batch(options_.batch_capacity);
    if (!probed) {
      const Span emit = unit.emit;
      while (!shared.stop.load(std::memory_order_relaxed)) {
        if (root->NextBatch(&batch) == 0) break;
        if (ctx.failed()) break;
        int64_t emitted = 0;
        for (size_t i = 0; i < batch.size(); ++i) {
          if (batch.pos(i) < emit.start || batch.pos(i) > emit.end) continue;
          out.emplace_back();
          PosRecord& pr = out.back();
          pr.pos = batch.pos(i);
          MoveRecordValues(pr.rec, batch.rec(i));
          ++emitted;
        }
        mstats.records_output += emitted;
        if (!account(emitted)) break;
      }
    } else {
      auto probe_chunk = [&](std::span<const Position> chunk) {
        const size_t n = root->ProbeBatch(chunk, &batch);
        if (ctx.failed()) return false;
        for (size_t i = 0; i < n; ++i) {
          out.emplace_back();
          PosRecord& pr = out.back();
          pr.pos = batch.pos(i);
          MoveRecordValues(pr.rec, batch.rec(i));
        }
        mstats.records_output += static_cast<int64_t>(n);
        return account(static_cast<int64_t>(n));
      };
      if (probed_list) {
        std::span<const Position> all(plan.positions);
        for (size_t off = unit.pos_begin;
             off < unit.pos_end &&
             !shared.stop.load(std::memory_order_relaxed);
             off += options_.batch_capacity) {
          if (!probe_chunk(all.subspan(
                  off,
                  std::min(options_.batch_capacity, unit.pos_end - off)))) {
            break;
          }
        }
      } else {
        std::vector<Position> chunk;
        chunk.reserve(options_.batch_capacity);
        Position p = unit.emit.start;
        while (p <= unit.emit.end &&
               !shared.stop.load(std::memory_order_relaxed)) {
          chunk.clear();
          while (chunk.size() < options_.batch_capacity &&
                 p <= unit.emit.end) {
            chunk.push_back(p++);
          }
          if (!probe_chunk(chunk)) break;
        }
      }
    }
    root->Close();
    Status err = ctx.TakeError();
    if (!err.ok()) shared.Fail(std::move(err));
    if (telem != nullptr && extras == nullptr) {
      telem->morsels_done.fetch_add(1, std::memory_order_relaxed);
    }
    morsel_counter.Add();
    morsel_hist.Record(
        std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
            std::chrono::steady_clock::now() - unit_start)
            .count());
  };

  // All morsels run on the process-wide scheduler pool: this query's
  // units form one task group, dispatched FIFO with at most mp.workers
  // (the per-query share cap) scheduler workers on it at once. The
  // coordinating thread waits at the group barrier — it does not execute
  // units — and forwards the caller's cancellation flag to workers (which
  // watch shared.stop) from the scheduler's wait/poll loop.
  {
    auto scheduled_unit = [&](size_t ui) {
      if (telem != nullptr) {
        telem->workers.fetch_add(1, std::memory_order_relaxed);
      }
      run_unit(ui);
      if (telem != nullptr) {
        telem->workers.fetch_sub(1, std::memory_order_relaxed);
      }
    };
    std::function<void()> poll;
    if (options_.guards.cancel != nullptr) {
      const std::atomic<bool>* user_cancel = options_.guards.cancel;
      poll = [&shared, user_cancel] {
        if (user_cancel->load(std::memory_order_relaxed) &&
            !shared.stop.load(std::memory_order_relaxed)) {
          shared.Fail(Status::Cancelled("query cancelled by driver"));
        }
      };
    }
    sched.RunGroup(n_units, mp.workers, options_.priority, scheduled_unit,
                   poll);
  }
  // Free the admission slot before the merge barrier: the next queued
  // query can start while we assemble this one's result.
  admission.Release();

  // Barrier merges, always in unit (= position) order so every total is
  // deterministic, and merged even on failure — the serial path also
  // leaves partial charges in the caller's stats block.
  if (stats != nullptr) {
    for (const AccessStats& ms : unit_stats) stats->Merge(ms);
  }
  if (root_profile != nullptr && !root_profile->children.empty()) {
    OperatorProfile* skel = root_profile->children.back().get();
    for (const OperatorProfile& up : unit_profiles) {
      if (!up.children.empty()) MergeProfileTree(skel, *up.children[0]);
    }
  }
  SEQ_RETURN_IF_ERROR(shared.TakeStatus());

  QueryResult result;
  result.schema = plan.schema;
  size_t total = 0;
  for (const auto& v : unit_records) total += v.size();
  result.records.reserve(total);
  for (auto& v : unit_records) {
    for (PosRecord& r : v) result.records.push_back(std::move(r));
  }
  return result;
}

Result<QueryResult> Executor::Execute(const PhysicalPlan& plan,
                                      AccessStats* stats) const {
  return ExecuteImpl(plan, stats, nullptr);
}

Status Executor::ExecuteVisit(const PhysicalPlan& plan, const RowSink& sink,
                              AccessStats* stats) const {
  if (plan.root == nullptr) {
    return Status::InvalidArgument("plan has no root");
  }
  ExecContext ctx;
  ctx.catalog = &catalog_;
  ctx.stats = stats;
  ctx.params = params_;
  ctx.faults = options_.fault_injector;
  ctx.guards = options_.guards;
  ctx.ArmGuards();
  // The page budget is counted from AccessStats, and live telemetry reads
  // its page charges from there too — so install a local block even when
  // the caller did not ask for stats.
  AccessStats guard_stats;
  if ((ctx.guards.max_pages > 0 || options_.telemetry != nullptr) &&
      stats == nullptr) {
    ctx.stats = &guard_stats;
  }

  SEQ_ASSIGN_OR_RETURN(SeqOpPtr root, Build(plan.root, nullptr));
  SEQ_RETURN_IF_ERROR(root->Open(&ctx));
  TelemetryReporter telem(options_.telemetry, ctx.stats);

  // Rows already handed to the sink before a mid-stream error or budget
  // trip have been seen — streaming consumption cannot take them back. The
  // returned status still reports the failure; see docs/robustness.md.
  int64_t emitted = 0;
  Status guard_status;

  if (plan.root_mode == AccessMode::kStream) {
    const Span range = plan.output_span;
    if (!range.IsEmpty() && options_.use_batch && plan.positions.empty()) {
      // Batch driving: rows are visited in their pipeline slot buffers —
      // no per-row materialization anywhere on this path.
      RecordBatch batch(options_.batch_capacity);
      while (root->NextBatch(&batch) > 0) {
        if (ctx.failed()) break;
        int64_t batch_emitted = 0;
        for (size_t i = 0; i < batch.size(); ++i) {
          if (batch.pos(i) < range.start || batch.pos(i) > range.end) {
            continue;
          }
          sink(batch.pos(i), batch.rec(i));
          ++batch_emitted;
        }
        if (stats != nullptr) stats->records_output += batch_emitted;
        emitted += batch_emitted;
        telem.Report(batch_emitted);
        guard_status = ctx.CheckGuards(emitted);
        if (!guard_status.ok()) break;
      }
    } else if (!range.IsEmpty()) {
      size_t next_wanted = 0;
      std::optional<PosRecord> r = root->NextAtOrAfter(range.start);
      while (r.has_value() && r->pos <= range.end) {
        if (ctx.failed()) break;
        bool wanted = true;
        if (!plan.positions.empty()) {
          while (next_wanted < plan.positions.size() &&
                 plan.positions[next_wanted] < r->pos) {
            ++next_wanted;
          }
          wanted = next_wanted < plan.positions.size() &&
                   plan.positions[next_wanted] == r->pos;
        }
        if (wanted) {
          sink(r->pos, r->rec);
          if (stats != nullptr) ++stats->records_output;
          ++emitted;
        }
        telem.Report(wanted ? 1 : 0);
        guard_status = ctx.CheckGuards(emitted);
        if (!guard_status.ok()) break;
        r = root->Next();
      }
    }
    root->Close();
    SEQ_RETURN_IF_ERROR(ctx.TakeError());
    return guard_status;
  }

  // Probed driving.
  if (options_.use_batch) {
    RecordBatch batch(options_.batch_capacity);
    // Returns false when a fault or budget stops the query.
    auto probe_chunk = [&](std::span<const Position> chunk) {
      size_t n = root->ProbeBatch(chunk, &batch);
      if (ctx.failed()) return false;
      for (size_t i = 0; i < n; ++i) sink(batch.pos(i), batch.rec(i));
      if (stats != nullptr) stats->records_output += static_cast<int64_t>(n);
      emitted += static_cast<int64_t>(n);
      telem.Report(static_cast<int64_t>(n));
      guard_status = ctx.CheckGuards(emitted);
      return guard_status.ok();
    };
    if (!plan.positions.empty()) {
      std::span<const Position> all(plan.positions);
      for (size_t off = 0; off < all.size(); off += options_.batch_capacity) {
        if (!probe_chunk(all.subspan(
                off, std::min(options_.batch_capacity, all.size() - off)))) {
          break;
        }
      }
    } else if (!plan.output_span.IsEmpty()) {
      std::vector<Position> chunk;
      chunk.reserve(options_.batch_capacity);
      Position p = plan.output_span.start;
      while (p <= plan.output_span.end) {
        chunk.clear();
        while (chunk.size() < options_.batch_capacity &&
               p <= plan.output_span.end) {
          chunk.push_back(p++);
        }
        if (!probe_chunk(chunk)) break;
      }
    }
  } else {
    auto probe_one = [&](Position p) {
      std::optional<Record> r = root->Probe(p);
      if (ctx.failed()) return false;
      if (r.has_value()) {
        sink(p, *r);
        if (stats != nullptr) ++stats->records_output;
        ++emitted;
      }
      telem.Report(r.has_value() ? 1 : 0);
      guard_status = ctx.CheckGuards(emitted);
      return guard_status.ok();
    };
    if (!plan.positions.empty()) {
      for (Position p : plan.positions) {
        if (!probe_one(p)) break;
      }
    } else if (!plan.output_span.IsEmpty()) {
      for (Position p = plan.output_span.start; p <= plan.output_span.end;
           ++p) {
        if (!probe_one(p)) break;
      }
    }
  }
  root->Close();
  SEQ_RETURN_IF_ERROR(ctx.TakeError());
  return guard_status;
}

Result<QueryResult> Executor::ExecuteProfiled(const PhysicalPlan& plan,
                                              QueryProfile* profile,
                                              AccessStats* stats) const {
  SEQ_CHECK(profile != nullptr);
  profile->Reset();

  // The Start operator (the driving loop below) gets the root profile
  // node; the plan tree hangs under it.
  OperatorProfile& root = *profile->root;
  {
    std::ostringstream oss;
    oss << "Start [" << AccessModeName(plan.root_mode);
    if (plan.root_mode == AccessMode::kStream) {
      oss << " over " << plan.output_span.ToString();
    } else {
      oss << " at " << plan.positions.size() << " positions";
    }
    oss << "]";
    root.label = oss.str();
  }
  root.est_cost = plan.est_cost;
  if (!plan.positions.empty()) {
    root.est_rows = static_cast<double>(plan.positions.size());
  } else if (plan.root != nullptr) {
    root.est_rows = plan.root->EstRows();
  }
  if (!plan.output_span.IsEmpty() && !plan.output_span.IsUnbounded()) {
    root.span_len = plan.output_span.Length();
  }

  // Attribution needs a stats block even when the caller doesn't want
  // one: the wrappers read simulated-cost / cache-counter deltas from it.
  AccessStats local;
  auto start = std::chrono::steady_clock::now();
  Result<QueryResult> result = ExecuteImpl(plan, &local, &root);
  int64_t wall_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();

  root.calls = 1;
  root.wall_ns = wall_ns;
  root.sim_cost = local.simulated_cost;
  root.cache_hits = local.cache_hits;
  root.cache_stores = local.cache_stores;
  if (result.ok()) {
    root.rows_out = static_cast<int64_t>(result.value().records.size());
  }
  profile->total_wall_ns = wall_ns;
  profile->stats = local;
  if (stats != nullptr) *stats += local;
  return result;
}

Result<QueryResult> Executor::ExecuteImpl(const PhysicalPlan& plan,
                                          AccessStats* stats,
                                          OperatorProfile* root_profile)
    const {
  if (plan.root == nullptr) {
    return Status::InvalidArgument("plan has no root");
  }
  if (options_.parallelism > 1) {
    const MorselPlan morsels = PlanMorsels(plan);
    if (morsels.parallel) {
      return ExecuteParallel(plan, morsels, stats, root_profile);
    }
  }
  ExecContext ctx;
  ctx.catalog = &catalog_;
  ctx.stats = stats;
  ctx.params = params_;
  ctx.faults = options_.fault_injector;
  ctx.guards = options_.guards;
  ctx.ArmGuards();
  // The page budget is counted from AccessStats, and live telemetry reads
  // its page charges from there too — so install a local block even when
  // the caller did not ask for stats.
  AccessStats guard_stats;
  if ((ctx.guards.max_pages > 0 || options_.telemetry != nullptr) &&
      stats == nullptr) {
    ctx.stats = &guard_stats;
  }

  QueryResult result;
  result.schema = plan.schema;

  // Running root-row count for the row budget; a mid-stream fault or
  // budget trip discards the whole partial result — Execute never returns
  // truncated answers.
  int64_t emitted = 0;
  Status guard_status;

  SEQ_ASSIGN_OR_RETURN(SeqOpPtr root, Build(plan.root, root_profile));
  SEQ_RETURN_IF_ERROR(root->Open(&ctx));
  TelemetryReporter telem(options_.telemetry, ctx.stats);

  if (plan.root_mode == AccessMode::kStream) {
    const Span range = plan.output_span;
    // Pre-size the result from the optimizer's row estimate (capped so a
    // wild overestimate cannot balloon the allocation).
    double est = plan.root->EstRows();
    if (est > 0) {
      result.records.reserve(std::min(static_cast<size_t>(est) + 16,
                                      size_t{1} << 20));
    }
    if (!range.IsEmpty() && options_.use_batch && plan.positions.empty()) {
      // Batch driving. The optimizer clips every node's required span to
      // the requested range, so the root never emits outside [range.start,
      // range.end]; the bounds check below is purely defensive. Records
      // are materialized by moving the *values* out of the batch slots —
      // stealing the slot vectors themselves would drain the pipeline's
      // reusable buffers and reintroduce a per-row allocation upstream.
      RecordBatch batch(options_.batch_capacity);
      while (root->NextBatch(&batch) > 0) {
        if (ctx.failed()) break;
        size_t before = result.records.size();
        for (size_t i = 0; i < batch.size(); ++i) {
          if (batch.pos(i) < range.start || batch.pos(i) > range.end) {
            continue;
          }
          result.records.emplace_back();
          PosRecord& pr = result.records.back();
          pr.pos = batch.pos(i);
          MoveRecordValues(pr.rec, batch.rec(i));
        }
        if (stats != nullptr) {
          stats->records_output +=
              static_cast<int64_t>(result.records.size() - before);
        }
        emitted += static_cast<int64_t>(result.records.size() - before);
        telem.Report(static_cast<int64_t>(result.records.size() - before));
        guard_status = ctx.CheckGuards(emitted);
        if (!guard_status.ok()) break;
      }
    } else if (!range.IsEmpty()) {
      // Point queries served by a stream plan filter to the requested
      // positions during the scan.
      size_t next_wanted = 0;
      std::optional<PosRecord> r = root->NextAtOrAfter(range.start);
      while (r.has_value() && r->pos <= range.end) {
        if (ctx.failed()) break;
        bool wanted = true;
        if (!plan.positions.empty()) {
          while (next_wanted < plan.positions.size() &&
                 plan.positions[next_wanted] < r->pos) {
            ++next_wanted;
          }
          wanted = next_wanted < plan.positions.size() &&
                   plan.positions[next_wanted] == r->pos;
        }
        if (wanted) {
          result.records.push_back(std::move(*r));
          if (stats != nullptr) ++stats->records_output;
          ++emitted;
        }
        telem.Report(wanted ? 1 : 0);
        guard_status = ctx.CheckGuards(emitted);
        if (!guard_status.ok()) break;
        r = root->Next();
      }
    }
    root->Close();
    SEQ_RETURN_IF_ERROR(ctx.TakeError());
    SEQ_RETURN_IF_ERROR(guard_status);
    return result;
  }

  // Probed driving (Fig. 6): probe the requested positions, or every
  // position of the range when none were listed. Batch driving chunks the
  // (strictly ascending) position list through ProbeBatch; the probe sets
  // are identical to the tuple loop, so AccessStats parity holds here for
  // the same reason it does on the stream side.
  if (options_.use_batch) {
    RecordBatch batch(options_.batch_capacity);
    // Returns false when a fault or budget stops the query.
    auto probe_chunk = [&](std::span<const Position> chunk) {
      size_t n = root->ProbeBatch(chunk, &batch);
      if (ctx.failed()) return false;
      for (size_t i = 0; i < n; ++i) {
        result.records.emplace_back();
        PosRecord& pr = result.records.back();
        pr.pos = batch.pos(i);
        MoveRecordValues(pr.rec, batch.rec(i));
      }
      if (stats != nullptr) stats->records_output += static_cast<int64_t>(n);
      emitted += static_cast<int64_t>(n);
      telem.Report(static_cast<int64_t>(n));
      guard_status = ctx.CheckGuards(emitted);
      return guard_status.ok();
    };
    if (!plan.positions.empty()) {
      std::span<const Position> all(plan.positions);
      for (size_t off = 0; off < all.size(); off += options_.batch_capacity) {
        if (!probe_chunk(all.subspan(
                off, std::min(options_.batch_capacity, all.size() - off)))) {
          break;
        }
      }
    } else if (!plan.output_span.IsEmpty()) {
      std::vector<Position> chunk;
      chunk.reserve(options_.batch_capacity);
      Position p = plan.output_span.start;
      while (p <= plan.output_span.end) {
        chunk.clear();
        while (chunk.size() < options_.batch_capacity &&
               p <= plan.output_span.end) {
          chunk.push_back(p++);
        }
        if (!probe_chunk(chunk)) break;
      }
    }
  } else {
    auto probe_one = [&](Position p) {
      std::optional<Record> r = root->Probe(p);
      if (ctx.failed()) return false;
      if (r.has_value()) {
        result.records.push_back(PosRecord{p, std::move(*r)});
        if (stats != nullptr) ++stats->records_output;
        ++emitted;
      }
      telem.Report(r.has_value() ? 1 : 0);
      guard_status = ctx.CheckGuards(emitted);
      return guard_status.ok();
    };
    if (!plan.positions.empty()) {
      for (Position p : plan.positions) {
        if (!probe_one(p)) break;
      }
    } else if (!plan.output_span.IsEmpty()) {
      for (Position p = plan.output_span.start; p <= plan.output_span.end;
           ++p) {
        if (!probe_one(p)) break;
      }
    }
  }
  root->Close();
  SEQ_RETURN_IF_ERROR(ctx.TakeError());
  SEQ_RETURN_IF_ERROR(guard_status);
  return result;
}

// ---------------------------------------------------------------------------
// Checkpointable execution (docs/robustness.md).
//
// A chunkable plan runs as a deterministic grid of clip-span chunks over
// the SAME boundary-alignment rules as morsel planning. Between chunks the
// driver polls the suspend triggers; a firing leaves the complete prefix
// (rows, stats, operator-state blob, watermark) in the SuspendCapture for
// the engine to persist. Resuming re-enters this function with the grid
// parameters from the checkpoint, so an interrupted run replays the exact
// chunk sequence — and therefore the exact floating-point charge order —
// of an uninterrupted checkpointed run.
//
// Serial chunks carry aggregate state across boundaries by SaveState/
// RestoreState injection (carry subtrees suppressed). Parallel chunks
// (stream, batch, no fault injector) rebuild state per sub-morsel with
// uncharged carries — the PR5 parity mechanism — and never save state.
// Probed chunks always run serial: probes are stateless per position, so
// rebuilding the tree per chunk charges nothing extra.
// ---------------------------------------------------------------------------

Result<QueryResult> Executor::ExecuteCheckpointed(const PhysicalPlan& plan,
                                                  AccessStats* stats) const {
  const CheckpointConfig& ck = options_.checkpoint;
  SEQ_CHECK_MSG(ck.capture != nullptr,
                "ExecuteCheckpointed requires checkpoint.capture");
  SuspendCapture* capture = ck.capture;
  *capture = SuspendCapture{};

  if (plan.root == nullptr) {
    return Status::InvalidArgument("plan has no root");
  }

  // Plans whose shape cannot chunk run the normal path; suspend triggers
  // are ignored and the reason is reported through the capture.
  auto fallback = [&](std::string why) -> Result<QueryResult> {
    capture->not_chunkable_reason = std::move(why);
    return ExecuteImpl(plan, stats, nullptr);
  };

  const bool probed = plan.root_mode == AccessMode::kProbed;
  const bool probed_list = probed && !plan.positions.empty();
  const Span span = plan.output_span;

  SpineInfo spine;
  if (probed) {
    std::string why;
    if (!ProbedSafe(plan.root, &why)) return fallback(why);
    if (!probed_list) {
      if (span.IsEmpty()) return fallback("empty output span");
      if (span.IsUnbounded()) return fallback("unbounded output span");
    }
  } else {
    if (!plan.positions.empty()) {
      return fallback("point-position stream plan does not chunk");
    }
    if (span.IsEmpty()) return fallback("empty output span");
    if (span.IsUnbounded()) return fallback("unbounded output span");
    spine = AnalyzeSpine(plan.root);
    if (!spine.ok) return fallback(spine.reason);
  }

  // The chunk grid. A resumed run MUST reuse the original run's grid
  // (stored chunk length, boundaries derived from the ORIGINAL span and
  // snapped into the plan's alignment class): simulated-cost charges
  // accumulate in floating point per batch, so only an identical boundary
  // sequence reproduces an uninterrupted checkpointed run bit-for-bit.
  const int64_t chunk_len =
      ck.resume != nullptr && ck.resume->chunk_len > 0
          ? ck.resume->chunk_len
          : (ck.chunk > 0 ? ck.chunk : DefaultCheckpointChunk());

  std::vector<Position> starts;  // span grids (stream + probed span walk)
  size_t n_chunks;
  if (probed_list) {
    const int64_t n = static_cast<int64_t>(plan.positions.size());
    n_chunks = static_cast<size_t>((n + chunk_len - 1) / chunk_len);
  } else {
    starts.push_back(span.start);
    const int64_t len = span.Length();
    const int64_t grid_points = (len + chunk_len - 1) / chunk_len;
    for (int64_t k = 1; k < grid_points; ++k) {
      Position b = span.start + k * chunk_len;
      if (!probed && spine.modulus > 1) {
        b += Mod(spine.phase - b, spine.modulus);
      }
      if (b <= starts.back()) continue;
      if (b > span.end) break;
      starts.push_back(b);
    }
    n_chunks = starts.size();
  }

  // Seed the prefix from a prior checkpoint. The wall-clock budget is
  // armed fresh per run — a resumed query gets a full max_wall_ms again,
  // documented in docs/robustness.md.
  AccessStats total;
  QueryResult result;
  result.schema = plan.schema;
  std::string blob;
  size_t first_chunk = 0;
  if (ck.resume != nullptr) {
    ResumeState& rs = *ck.resume;
    if (rs.probed != probed) {
      return Status::FailedPrecondition(
          "checkpoint access mode does not match the re-planned query");
    }
    if (probed_list) {
      if (rs.next_index < 0 || rs.next_index % chunk_len != 0 ||
          rs.next_index / chunk_len >= static_cast<int64_t>(n_chunks)) {
        return Status::FailedPrecondition(
            "checkpoint resume index " + std::to_string(rs.next_index) +
            " does not lie on the chunk grid (chunk length " +
            std::to_string(chunk_len) + ")");
      }
      first_chunk = static_cast<size_t>(rs.next_index / chunk_len);
    } else {
      size_t found = n_chunks;
      for (size_t i = 0; i < n_chunks; ++i) {
        if (starts[i] == rs.watermark) {
          found = i;
          break;
        }
      }
      if (found == n_chunks) {
        return Status::FailedPrecondition(
            "checkpoint watermark " + std::to_string(rs.watermark) +
            " does not lie on the chunk grid of " + span.ToString() +
            " (chunk length " + std::to_string(chunk_len) + ")");
      }
      first_chunk = found;
    }
    total = rs.stats;
    result.records = std::move(rs.rows);
    blob = std::move(rs.op_state);
  }

  std::chrono::steady_clock::time_point deadline{};
  const bool has_deadline = options_.guards.max_wall_ms > 0;
  if (has_deadline) {
    deadline = std::chrono::steady_clock::now() +
               std::chrono::milliseconds(options_.guards.max_wall_ms);
  }

  const bool parallel_chunks = !probed && options_.parallelism > 1 &&
                               options_.use_batch &&
                               options_.fault_injector == nullptr;
  const int workers = std::max(options_.parallelism, 1);

  QueryTelemetry* telem = options_.telemetry;
  if (telem != nullptr) {
    telem->morsels_total.store(static_cast<int>(n_chunks),
                               std::memory_order_relaxed);
    telem->morsels_done.store(static_cast<int>(first_chunk),
                              std::memory_order_relaxed);
  }

  // Whole-query budget check against the running totals plus the current
  // chunk's charges, in the serial CheckGuards order (cancel, deadline,
  // pages, rows) with the serial messages — so a checkpointed run trips
  // at exactly the same point, with the same status, as a plain one.
  auto over_budget = [&](ExecContext* ctx, const AccessStats& cs,
                         size_t chunk_rows) -> Status {
    Status g = ctx->CheckGuards(0);  // cancel + deadline
    if (!g.ok()) return g;
    if (options_.guards.max_pages > 0) {
      const int64_t pages = total.stream_pages + total.probe_pages +
                            cs.stream_pages + cs.probe_pages;
      if (pages > options_.guards.max_pages) {
        return Status::ResourceExhausted(
            "query exceeded page-access budget of " +
            std::to_string(options_.guards.max_pages) + " pages");
      }
    }
    if (options_.guards.max_rows > 0) {
      const int64_t rows =
          static_cast<int64_t>(result.records.size() + chunk_rows);
      if (rows > options_.guards.max_rows) {
        return Status::ResourceExhausted(
            "query exceeded row budget of " +
            std::to_string(options_.guards.max_rows) + " rows");
      }
    }
    return Status::OK();
  };

  // One serial chunk: chunk-local rows and charges merge into the running
  // totals only when the chunk completes, so a failed or parked chunk
  // leaves the prefix exactly at the last boundary.
  auto run_chunk_serial = [&](size_t i) -> Status {
    std::vector<PosRecord> rows;
    AccessStats cs;
    ExecContext ctx;
    ctx.catalog = &catalog_;
    ctx.stats = &cs;
    ctx.params = params_;
    ctx.faults = options_.fault_injector;
    ctx.guards = options_.guards;
    // Rows and pages are whole-query budgets enforced by over_budget; the
    // context keeps cancel, the shared deadline and the cache budget.
    ctx.guards.max_rows = 0;
    ctx.guards.max_pages = 0;
    if (has_deadline) ctx.ArmGuardsAt(deadline);

    const bool inject = !probed && i > 0 && !blob.empty();
    PhysNodePtr node = plan.root;
    Span emit = Span::Empty();
    if (!probed_list) {
      emit = Span::Of(starts[i],
                      i + 1 < n_chunks ? starts[i + 1] - 1 : span.end);
    }
    if (!probed) {
      const Position clip_lo = i == 0 ? kMinPosition : emit.start;
      const Position clip_hi = i + 1 == n_chunks ? kMaxPosition : emit.end;
      // An injected chunk suppresses carry-in subtrees (state arrives from
      // the blob); an empty blob past chunk 0 — a checkpoint written by a
      // parallel run, or a stateless tree — rebuilds via carries instead.
      node = CloneForMorsel(plan.root, clip_lo, clip_hi,
                            /*with_carry=*/!inject);
    }
    SEQ_ASSIGN_OR_RETURN(SeqOpPtr root, Build(node, nullptr));
    SEQ_RETURN_IF_ERROR(root->Open(&ctx));
    if (inject) {
      OpStateReader reader(blob);
      if (!root->RestoreState(&reader) || !reader.Exhausted()) {
        root->Close();
        return Status::DataLoss(
            "checkpoint operator state does not match the plan shape");
      }
    }
    TelemetryReporter treport(telem, &cs);
    Status guard_status;

    if (!probed) {
      if (options_.use_batch) {
        RecordBatch batch(options_.batch_capacity);
        while (root->NextBatch(&batch) > 0) {
          if (ctx.failed()) break;
          int64_t emitted = 0;
          for (size_t bi = 0; bi < batch.size(); ++bi) {
            if (batch.pos(bi) < emit.start || batch.pos(bi) > emit.end) {
              continue;
            }
            rows.emplace_back();
            PosRecord& pr = rows.back();
            pr.pos = batch.pos(bi);
            MoveRecordValues(pr.rec, batch.rec(bi));
            ++emitted;
          }
          cs.records_output += emitted;
          treport.Report(emitted);
          guard_status = over_budget(&ctx, cs, rows.size());
          if (!guard_status.ok()) break;
        }
      } else {
        std::optional<PosRecord> r = root->NextAtOrAfter(emit.start);
        while (r.has_value() && r->pos <= emit.end) {
          if (ctx.failed()) break;
          rows.push_back(std::move(*r));
          ++cs.records_output;
          treport.Report(1);
          guard_status = over_budget(&ctx, cs, rows.size());
          if (!guard_status.ok()) break;
          r = root->Next();
        }
      }
    } else if (options_.use_batch) {
      RecordBatch batch(options_.batch_capacity);
      auto probe_chunk = [&](std::span<const Position> chunk) {
        const size_t n = root->ProbeBatch(chunk, &batch);
        if (ctx.failed()) return false;
        for (size_t bi = 0; bi < n; ++bi) {
          rows.emplace_back();
          PosRecord& pr = rows.back();
          pr.pos = batch.pos(bi);
          MoveRecordValues(pr.rec, batch.rec(bi));
        }
        cs.records_output += static_cast<int64_t>(n);
        treport.Report(static_cast<int64_t>(n));
        guard_status = over_budget(&ctx, cs, rows.size());
        return guard_status.ok();
      };
      if (probed_list) {
        std::span<const Position> all(plan.positions);
        const size_t pos_begin = i * static_cast<size_t>(chunk_len);
        const size_t pos_end =
            std::min(all.size(), pos_begin + static_cast<size_t>(chunk_len));
        for (size_t off = pos_begin; off < pos_end;
             off += options_.batch_capacity) {
          if (!probe_chunk(all.subspan(
                  off, std::min(options_.batch_capacity, pos_end - off)))) {
            break;
          }
        }
      } else {
        std::vector<Position> chunk;
        chunk.reserve(options_.batch_capacity);
        Position p = emit.start;
        while (p <= emit.end) {
          chunk.clear();
          while (chunk.size() < options_.batch_capacity && p <= emit.end) {
            chunk.push_back(p++);
          }
          if (!probe_chunk(chunk)) break;
        }
      }
    } else {
      auto probe_one = [&](Position p) {
        std::optional<Record> r = root->Probe(p);
        if (ctx.failed()) return false;
        if (r.has_value()) {
          rows.push_back(PosRecord{p, std::move(*r)});
          ++cs.records_output;
        }
        treport.Report(r.has_value() ? 1 : 0);
        guard_status = over_budget(&ctx, cs, rows.size());
        return guard_status.ok();
      };
      if (probed_list) {
        const size_t pos_begin = i * static_cast<size_t>(chunk_len);
        const size_t pos_end = std::min(
            plan.positions.size(), pos_begin + static_cast<size_t>(chunk_len));
        for (size_t off = pos_begin; off < pos_end; ++off) {
          if (!probe_one(plan.positions[off])) break;
        }
      } else {
        for (Position p = emit.start; p <= emit.end; ++p) {
          if (!probe_one(p)) break;
        }
      }
    }

    // Save operator state BEFORE Close: the next serial chunk (and any
    // checkpoint written at the next boundary) restores from this blob.
    std::string new_blob;
    if (guard_status.ok() && !ctx.failed() && !probed) {
      OpStateWriter writer;
      root->SaveState(&writer);
      new_blob = writer.blob();
    }
    root->Close();
    SEQ_RETURN_IF_ERROR(ctx.TakeError());
    SEQ_RETURN_IF_ERROR(guard_status);

    total.Merge(cs);
    result.records.reserve(result.records.size() + rows.size());
    for (PosRecord& r : rows) result.records.push_back(std::move(r));
    blob = std::move(new_blob);
    return Status::OK();
  };

  // One parallel chunk: a mini morsel group over [starts[i], chunk end],
  // sub-split in the plan's alignment class and cloned DIRECTLY from the
  // original root — never from another clone, which would stack carry
  // subtrees onto already-carried aggregates. Admission is re-acquired
  // per chunk, so a checkpointed query naturally yields its slot between
  // chunks.
  auto run_chunk_parallel = [&](size_t i) -> Status {
    const Position lo = starts[i];
    const Position hi = i + 1 < n_chunks ? starts[i + 1] - 1 : span.end;
    std::vector<Position> sub;
    sub.push_back(lo);
    const int64_t clen = hi - lo + 1;
    const int64_t step = (clen + workers - 1) / workers;
    for (int64_t k = 1; k < workers; ++k) {
      Position b = lo + k * step;
      if (spine.modulus > 1) b += Mod(spine.phase - b, spine.modulus);
      if (b <= sub.back()) continue;
      if (b > hi) break;
      sub.push_back(b);
    }
    MorselPlan cmp;
    cmp.parallel = true;
    cmp.workers = static_cast<int>(
        std::min<size_t>(static_cast<size_t>(workers), sub.size()));
    cmp.reason = "checkpoint chunk";
    cmp.morsels.reserve(sub.size());
    for (size_t k = 0; k < sub.size(); ++k) {
      const Position e = k + 1 < sub.size() ? sub[k + 1] - 1 : hi;
      cmp.morsels.push_back(Span::Of(sub[k], e));
    }

    ChunkExtras extras;
    extras.clip_lo = i == 0 ? kMinPosition : lo;
    extras.clip_hi = i + 1 == n_chunks ? kMaxPosition : hi;
    extras.base_rows = static_cast<int64_t>(result.records.size());
    extras.base_pages = total.stream_pages + total.probe_pages;
    extras.has_deadline = has_deadline;
    extras.deadline = deadline;

    AccessStats cs;
    Result<QueryResult> r =
        ExecuteParallelInner(plan, cmp, &cs, nullptr, &extras);
    if (!r.ok()) return r.status();
    total.Merge(cs);
    QueryResult& qr = r.value();
    result.records.reserve(result.records.size() + qr.records.size());
    for (PosRecord& pr : qr.records) result.records.push_back(std::move(pr));
    // Carries rebuild state at the next chunk; a blob from an earlier
    // serial run is stale relative to the advancing watermark.
    blob.clear();
    return Status::OK();
  };

  // Suspend triggers are polled at chunk boundaries only, and never
  // before the first chunk of a run — every run makes progress, so a
  // suspend/resume chain always terminates.
  auto want_suspend = [&](size_t i) -> std::optional<SuspendReason> {
    if (i <= first_chunk) return std::nullopt;
    if (ck.request != nullptr &&
        ck.request->load(std::memory_order_acquire)) {
      return SuspendReason::kUser;
    }
    if (ck.preempt != nullptr &&
        ck.preempt->load(std::memory_order_acquire)) {
      return SuspendReason::kScheduler;
    }
    if (ck.suspend_every_chunks > 0 &&
        static_cast<int64_t>(i - first_chunk) % ck.suspend_every_chunks ==
            0) {
      return SuspendReason::kUser;
    }
    return std::nullopt;
  };

  auto fill_capture = [&](size_t i, SuspendReason reason) {
    capture->suspended = true;
    capture->reason = reason;
    capture->probed = probed;
    capture->watermark = probed_list ? 0 : starts[i];
    capture->next_index = probed_list ? static_cast<int64_t>(i) * chunk_len : 0;
    capture->chunks_done = static_cast<int64_t>(i);
    capture->chunk_len = chunk_len;
    capture->op_state = blob;
    capture->rows = std::move(result.records);
    capture->stats = total;
  };

  for (size_t i = first_chunk; i < n_chunks; ++i) {
    if (std::optional<SuspendReason> why = want_suspend(i)) {
      fill_capture(i, *why);
      QueryResult suspended;
      suspended.schema = plan.schema;
      return suspended;
    }
    Status s = parallel_chunks ? run_chunk_parallel(i) : run_chunk_serial(i);
    if (!s.ok()) {
      if (ck.park_on_cache_budget && IsCacheBudgetExceeded(s)) {
        // The tripping chunk's rows and charges were discarded above;
        // park the query at its boundary instead of degrading.
        fill_capture(i, SuspendReason::kCacheBudget);
        QueryResult parked;
        parked.schema = plan.schema;
        return parked;
      }
      return s;
    }
    if (telem != nullptr) {
      telem->morsels_done.fetch_add(1, std::memory_order_relaxed);
    }
  }

  if (stats != nullptr) stats->Merge(total);
  return result;
}

std::string QueryResult::ToString(size_t limit) const {
  std::ostringstream oss;
  size_t shown = std::min(limit, records.size());
  for (size_t i = 0; i < shown; ++i) {
    oss << PosRecordToString(records[i], *schema) << "\n";
  }
  if (records.size() > shown) {
    oss << "... (" << records.size() << " records total)\n";
  }
  return oss.str();
}

}  // namespace seq
