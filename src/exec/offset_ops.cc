#include "exec/offset_ops.h"

#include <cstdlib>

#include "common/logging.h"

namespace seq {

namespace {
constexpr const char* kCacheBLabel = "ValueOffset(cache-B)";
}  // namespace

Status ValueOffsetOp::Open(ExecContext* ctx) {
  SEQ_RETURN_IF_ERROR(ctx->PollOpenFault(kCacheBLabel));
  ctx_ = ctx;
  next_pos_ = required_.start;
  child_done_ = false;
  pending_.reset();
  cache_.clear();
  cache_footprint_ = 0;
  input_.Reset();
  last_probe_pos_ = kMinPosition;
  return child_->Open(ctx);
}

void ValueOffsetOp::Fill() {
  if (child_done_ || pending_.has_value()) return;
  pending_ = child_->Next();
  if (!pending_.has_value()) child_done_ = true;
}

bool ValueOffsetOp::ChargeCacheEntry() {
  const int64_t b = static_cast<int64_t>(sizeof(Position)) +
                    ApproxRecordBytes(cache_.back().rec);
  cache_footprint_ += b;
  if (!ctx_->AdjustCacheBytes(b)) {
    ctx_->RaiseCacheBudget(kCacheBLabel);
    return false;
  }
  return true;
}

void ValueOffsetOp::ReleaseFrontEntry() {
  const int64_t b = static_cast<int64_t>(sizeof(Position)) +
                    ApproxRecordBytes(cache_.front().rec);
  cache_footprint_ -= b;
  ctx_->AdjustCacheBytes(-b);
  cache_.pop_front();
}

void ValueOffsetOp::ReleaseAllEntries() {
  ctx_->AdjustCacheBytes(-cache_footprint_);
  cache_footprint_ = 0;
  cache_.clear();
}

std::optional<PosRecord> ValueOffsetOp::Next() {
  return NextAtOrAfter(next_pos_);
}

std::optional<PosRecord> ValueOffsetOp::NextAtOrAfter(Position p) {
  if (required_.IsEmpty()) return std::nullopt;
  if (p < next_pos_) p = next_pos_;
  if (p < required_.start) p = required_.start;
  size_t magnitude = static_cast<size_t>(std::abs(offset_));

  if (offset_ < 0) {
    while (p <= required_.end && !ctx_->failed()) {
      // Consume every input strictly before p into the recency cache.
      Fill();
      while (pending_.has_value() && pending_->pos < p) {
        cache_.push_back(std::move(*pending_));
        ctx_->ChargeCacheStore();
        if (!ChargeCacheEntry()) return std::nullopt;
        if (cache_.size() > magnitude) ReleaseFrontEntry();
        pending_.reset();
        Fill();
      }
      if (cache_.size() == magnitude) {
        ctx_->ChargeCacheHit();
        next_pos_ = p + 1;
        return PosRecord{p, cache_.front().rec};
      }
      // Not enough history yet: jump to just after the next input record.
      if (!pending_.has_value()) return std::nullopt;
      p = pending_->pos + 1;
    }
    return std::nullopt;
  }

  // offset_ > 0: out(p) is the offset_-th input strictly after p. Keep a
  // lookahead buffer of upcoming inputs.
  while (p <= required_.end && !ctx_->failed()) {
    while (!cache_.empty() && cache_.front().pos <= p) ReleaseFrontEntry();
    while (cache_.size() < magnitude) {
      Fill();
      if (!pending_.has_value()) break;
      if (pending_->pos > p) {
        cache_.push_back(std::move(*pending_));
        ctx_->ChargeCacheStore();
        if (!ChargeCacheEntry()) return std::nullopt;
      }
      pending_.reset();
    }
    if (cache_.size() >= magnitude) {
      ctx_->ChargeCacheHit();
      next_pos_ = p + 1;
      return PosRecord{p, cache_[magnitude - 1].rec};
    }
    // Too few inputs remain after p; larger p only makes it worse.
    return std::nullopt;
  }
  return std::nullopt;
}

// Batches both sides. The child is pulled through a BatchInput cursor
// bounded by NextBatchUpTo: a value offset must not prefetch past what the
// tuple path would read, and the include-overshoot bound reproduces the
// tuple path's one-record look-ahead exactly — the consumed input set (and
// therefore every AccessStats counter) is identical in both driving modes.
size_t ValueOffsetOp::NextBatch(RecordBatch* out) {
  out->Clear();
  if (required_.IsEmpty()) return 0;
  Position p = next_pos_;
  if (p < required_.start) p = required_.start;
  const size_t magnitude = static_cast<size_t>(std::abs(offset_));
  const size_t cap = out->capacity();
  int64_t stores = 0;

  if (offset_ < 0) {
    // The tuple path consumes inputs strictly before required_.end plus
    // one look-ahead record at/past it; limit = end - 1 gives the same.
    const Position limit = required_.end - 1;
    while (!out->full() && p <= required_.end) {
      if (ctx_->failed()) break;
      bool have = input_.Ready(child_.get(), cap, limit);
      while (have && input_.pos() < p) {
        cache_.emplace_back();
        PosRecord& slot = cache_.back();
        slot.pos = input_.pos();
        MoveRecordValues(slot.rec, input_.rec());
        ++stores;
        if (!ChargeCacheEntry()) break;
        if (cache_.size() > magnitude) ReleaseFrontEntry();
        input_.Consume();
        have = input_.Ready(child_.get(), cap, limit);
      }
      if (ctx_->failed()) break;
      if (cache_.size() == magnitude) {
        AssignRecord(out->Append(p), cache_.front().rec);
        ++p;
        continue;
      }
      if (!have) break;
      p = input_.pos() + 1;
    }
    next_pos_ = p;
    ctx_->ChargeCacheStores(stores);
    ctx_->ChargeCacheHits(static_cast<int64_t>(out->size()));
    return out->size();
  }

  // offset_ > 0: the look-ahead consumes inputs at positions <= end plus
  // exactly `magnitude` records past it — past the limit the bounded pull
  // degrades to one record per refill, so the look-ahead stops at the same
  // input record as the tuple path.
  const Position limit = required_.end;
  while (!out->full() && p <= required_.end) {
    if (ctx_->failed()) break;
    while (!cache_.empty() && cache_.front().pos <= p) ReleaseFrontEntry();
    while (cache_.size() < magnitude) {
      if (!input_.Ready(child_.get(), cap, limit)) break;
      if (input_.pos() > p) {
        cache_.emplace_back();
        PosRecord& slot = cache_.back();
        slot.pos = input_.pos();
        MoveRecordValues(slot.rec, input_.rec());
        ++stores;
        if (!ChargeCacheEntry()) break;
      }
      input_.Consume();
    }
    if (ctx_->failed()) break;
    if (cache_.size() < magnitude) break;
    AssignRecord(out->Append(p), cache_[magnitude - 1].rec);
    ++p;
  }
  next_pos_ = p;
  ctx_->ChargeCacheStores(stores);
  ctx_->ChargeCacheHits(static_cast<int64_t>(out->size()));
  return out->size();
}

void ValueOffsetOp::RewindProbes() {
  // A consumer regressed its probe position. The incremental state only
  // moves forward, so restart the child and replay deterministically —
  // the same reset happens under Probe and ProbeBatch driving, so the
  // paths still charge identically (just more than a monotone consumer
  // would; the planner avoids handing this operator to one). The reopen
  // can fail legitimately (injected Open fault), so failure is raised on
  // the context rather than asserted; ProbeStep bails on the raised error.
  child_->Close();
  Status reopened = child_->Open(ctx_);
  if (!reopened.ok()) ctx_->Raise(std::move(reopened));
  pending_.reset();
  child_done_ = false;
  ReleaseAllEntries();
  last_probe_pos_ = kMinPosition;
}

const Record* ValueOffsetOp::ProbeStep(Position p, int64_t* stores) {
  if (ctx_->failed()) return nullptr;
  if (p < last_probe_pos_) {
    RewindProbes();
    if (ctx_->failed()) return nullptr;
  }
  last_probe_pos_ = p;
  const size_t magnitude = static_cast<size_t>(std::abs(offset_));

  if (offset_ < 0) {
    Fill();
    while (pending_.has_value() && pending_->pos < p) {
      cache_.push_back(std::move(*pending_));
      ++*stores;
      if (!ChargeCacheEntry()) return nullptr;
      if (cache_.size() > magnitude) ReleaseFrontEntry();
      pending_.reset();
      Fill();
    }
    // Repeat probes of the same position re-run this advance with nothing
    // left to consume, so they are idempotent and answer from the cache.
    if (cache_.size() < magnitude) return nullptr;
    return &cache_.front().rec;
  }

  while (!cache_.empty() && cache_.front().pos <= p) ReleaseFrontEntry();
  while (cache_.size() < magnitude) {
    Fill();
    if (!pending_.has_value()) break;
    if (pending_->pos > p) {
      cache_.push_back(std::move(*pending_));
      ++*stores;
      if (!ChargeCacheEntry()) return nullptr;
    }
    pending_.reset();
  }
  if (cache_.size() < magnitude) return nullptr;
  return &cache_[magnitude - 1].rec;
}

std::optional<Record> ValueOffsetOp::Probe(Position p) {
  int64_t stores = 0;
  const Record* r = ProbeStep(p, &stores);
  ctx_->ChargeCacheStores(stores);
  if (r == nullptr) return std::nullopt;
  ctx_->ChargeCacheHit();
  return *r;
}

size_t ValueOffsetOp::ProbeBatch(std::span<const Position> positions,
                                 RecordBatch* out) {
  out->Clear();
  int64_t stores = 0;
  for (Position p : positions) {
    const Record* r = ProbeStep(p, &stores);
    if (ctx_->failed()) break;
    if (r != nullptr) AssignRecord(out->Append(p), *r);
  }
  ctx_->ChargeCacheStores(stores);
  ctx_->ChargeCacheHits(static_cast<int64_t>(out->size()));
  return out->size();
}

std::optional<Record> ValueOffsetNaiveOp::Search(Position p) {
  if (child_span_.IsEmpty()) return std::nullopt;
  int64_t magnitude = std::abs(offset_);
  int64_t found = 0;
  if (offset_ < 0) {
    for (Position q = p - 1; q >= child_span_.start; --q) {
      std::optional<Record> r = child_->Probe(q);
      if (ctx_->failed()) return std::nullopt;
      if (r.has_value() && ++found == magnitude) return r;
    }
    return std::nullopt;
  }
  for (Position q = p + 1; q <= child_span_.end; ++q) {
    std::optional<Record> r = child_->Probe(q);
    if (ctx_->failed()) return std::nullopt;
    if (r.has_value() && ++found == magnitude) return r;
  }
  return std::nullopt;
}

std::optional<PosRecord> ValueOffsetNaiveOp::Next() {
  while (next_pos_ <= required_.end) {
    if (ctx_->failed()) return std::nullopt;
    Position p = next_pos_++;
    std::optional<Record> r = Search(p);
    if (r.has_value()) return PosRecord{p, std::move(*r)};
  }
  return std::nullopt;
}

size_t ValueOffsetNaiveOp::NextBatch(RecordBatch* out) {
  // Every access charge lives in the child probes the search performs, so
  // the batch fill loop charges exactly what the same tuple walk would.
  out->Clear();
  while (!out->full() && next_pos_ <= required_.end) {
    if (ctx_->failed()) break;
    Position p = next_pos_++;
    std::optional<Record> r = Search(p);
    if (r.has_value()) MoveRecordValues(out->Append(p), *r);
  }
  return out->size();
}

size_t ValueOffsetNaiveOp::ProbeBatch(std::span<const Position> positions,
                                      RecordBatch* out) {
  out->Clear();
  for (Position p : positions) {
    if (ctx_->failed()) break;
    std::optional<Record> r = Search(p);
    if (r.has_value()) MoveRecordValues(out->Append(p), *r);
  }
  return out->size();
}

}  // namespace seq
