#include "exec/offset_ops.h"

#include <cstdlib>

#include "common/logging.h"

namespace seq {

Status ValueOffsetStream::Open(ExecContext* ctx) {
  ctx_ = ctx;
  next_pos_ = required_.start;
  child_done_ = false;
  pending_.reset();
  cache_.clear();
  return child_->Open(ctx);
}

void ValueOffsetStream::Fill() {
  if (child_done_ || pending_.has_value()) return;
  pending_ = child_->Next();
  if (!pending_.has_value()) child_done_ = true;
}

std::optional<PosRecord> ValueOffsetStream::Next() {
  return NextAtOrAfter(next_pos_);
}

std::optional<PosRecord> ValueOffsetStream::NextAtOrAfter(Position p) {
  if (required_.IsEmpty()) return std::nullopt;
  if (p < next_pos_) p = next_pos_;
  if (p < required_.start) p = required_.start;
  size_t magnitude = static_cast<size_t>(std::abs(offset_));

  if (offset_ < 0) {
    while (p <= required_.end) {
      // Consume every input strictly before p into the recency cache.
      Fill();
      while (pending_.has_value() && pending_->pos < p) {
        cache_.push_back(std::move(*pending_));
        ctx_->ChargeCacheStore();
        if (cache_.size() > magnitude) cache_.pop_front();
        pending_.reset();
        Fill();
      }
      if (cache_.size() == magnitude) {
        ctx_->ChargeCacheHit();
        next_pos_ = p + 1;
        return PosRecord{p, cache_.front().rec};
      }
      // Not enough history yet: jump to just after the next input record.
      if (!pending_.has_value()) return std::nullopt;
      p = pending_->pos + 1;
    }
    return std::nullopt;
  }

  // offset_ > 0: out(p) is the offset_-th input strictly after p. Keep a
  // lookahead buffer of upcoming inputs.
  while (p <= required_.end) {
    while (!cache_.empty() && cache_.front().pos <= p) cache_.pop_front();
    while (cache_.size() < magnitude) {
      Fill();
      if (!pending_.has_value()) break;
      if (pending_->pos > p) {
        cache_.push_back(std::move(*pending_));
        ctx_->ChargeCacheStore();
      }
      pending_.reset();
    }
    if (cache_.size() >= magnitude) {
      ctx_->ChargeCacheHit();
      next_pos_ = p + 1;
      return PosRecord{p, cache_[magnitude - 1].rec};
    }
    // Too few inputs remain after p; larger p only makes it worse.
    return std::nullopt;
  }
  return std::nullopt;
}

// The batch path batches only the (dense) output side. The child is still
// pulled record-at-a-time through Fill(): a value offset's lookahead may
// stop consuming its input mid-stream once the required range is served,
// and prefetching child records in batch granularity would over-read the
// input relative to the tuple path, breaking AccessStats parity.
size_t ValueOffsetStream::NextBatch(RecordBatch* out) {
  out->Clear();
  if (required_.IsEmpty()) return 0;
  Position p = next_pos_;
  if (p < required_.start) p = required_.start;
  const size_t magnitude = static_cast<size_t>(std::abs(offset_));

  if (offset_ < 0) {
    while (!out->full() && p <= required_.end) {
      Fill();
      while (pending_.has_value() && pending_->pos < p) {
        cache_.push_back(std::move(*pending_));
        ctx_->ChargeCacheStore();
        if (cache_.size() > magnitude) cache_.pop_front();
        pending_.reset();
        Fill();
      }
      if (cache_.size() == magnitude) {
        ctx_->ChargeCacheHit();
        AssignRecord(out->Append(p), cache_.front().rec);
        ++p;
        continue;
      }
      if (!pending_.has_value()) break;
      p = pending_->pos + 1;
    }
    next_pos_ = p;
    return out->size();
  }

  while (!out->full() && p <= required_.end) {
    while (!cache_.empty() && cache_.front().pos <= p) cache_.pop_front();
    while (cache_.size() < magnitude) {
      Fill();
      if (!pending_.has_value()) break;
      if (pending_->pos > p) {
        cache_.push_back(std::move(*pending_));
        ctx_->ChargeCacheStore();
      }
      pending_.reset();
    }
    if (cache_.size() < magnitude) break;
    ctx_->ChargeCacheHit();
    AssignRecord(out->Append(p), cache_[magnitude - 1].rec);
    ++p;
  }
  next_pos_ = p;
  return out->size();
}

std::optional<Record> ValueOffsetNaiveProbe::Probe(Position p) {
  if (child_span_.IsEmpty()) return std::nullopt;
  int64_t magnitude = std::abs(offset_);
  int64_t found = 0;
  if (offset_ < 0) {
    for (Position q = p - 1; q >= child_span_.start; --q) {
      std::optional<Record> r = child_->Probe(q);
      if (r.has_value() && ++found == magnitude) return r;
    }
    return std::nullopt;
  }
  for (Position q = p + 1; q <= child_span_.end; ++q) {
    std::optional<Record> r = child_->Probe(q);
    if (r.has_value() && ++found == magnitude) return r;
  }
  return std::nullopt;
}

std::optional<PosRecord> ValueOffsetNaiveStream::Next() {
  while (next_pos_ <= required_.end) {
    Position p = next_pos_++;
    std::optional<Record> r = search_.Probe(p);
    if (r.has_value()) return PosRecord{p, std::move(*r)};
  }
  return std::nullopt;
}

}  // namespace seq
