#ifndef SEQ_EXEC_COLLAPSE_OPS_H_
#define SEQ_EXEC_COLLAPSE_OPS_H_

#include <map>
#include <optional>
#include <span>
#include <utility>

#include "exec/operator.h"
#include "exec/window_state.h"
#include "logical/logical_op.h"

namespace seq {

/// Collapse to a coarser ordering domain (§5.1): output position b holds
/// the aggregate of input positions [b·f, (b+1)·f). One operator, two
/// evaluation shapes chosen at construction: stream mode folds buckets in
/// a single pass, emitting a bucket when the input moves past it; probed
/// mode (`materialized = true`) folds ALL buckets into a map at Open and
/// serves probes by lookup — the input is consumed either way, so the
/// executor hands it a stream-built child in both modes.
class CollapseOp : public SeqOp {
 public:
  CollapseOp(SeqOpPtr child, AggFunc func, size_t col_index, TypeId col_type,
             int64_t factor, Span required, bool materialized)
      : child_(std::move(child)),
        func_(func),
        col_index_(col_index),
        col_type_(col_type),
        factor_(factor),
        required_(required),
        materialized_(materialized) {}

  Status Open(ExecContext* ctx) override;
  std::optional<PosRecord> Next() override;
  std::optional<Record> Probe(Position p) override;
  size_t ProbeBatch(std::span<const Position> positions,
                    RecordBatch* out) override;
  void Close() override { child_->Close(); }
  void SaveState(OpStateWriter* w) const override { child_->SaveState(w); }
  bool RestoreState(OpStateReader* r) override {
    return child_->RestoreState(r);
  }

 private:
  SeqOpPtr child_;
  AggFunc func_;
  size_t col_index_;
  TypeId col_type_;
  int64_t factor_;
  Span required_;
  bool materialized_;
  ExecContext* ctx_ = nullptr;

  std::optional<PosRecord> pending_;
  bool child_done_ = false;
  std::map<Position, Value> buckets_;  // probed-mode materialization
};

/// Expand to a finer ordering domain (§5.1): out(i) = in(floor(i/f)).
/// Stream access replicates each input record over its f output
/// positions; probed access probes the input once at floor(p/f). The
/// executor builds the child in the matching mode. Probes at the same
/// bucket repeat as output positions walk through it, so ProbeBatch stays
/// on the per-probe default adapter — the repeated child probes are
/// exactly what the tuple path charges.
class ExpandOp : public SeqOp {
 public:
  ExpandOp(SeqOpPtr child, int64_t factor, Span required)
      : child_(std::move(child)), factor_(factor), required_(required) {}

  Status Open(ExecContext* ctx) override;
  std::optional<PosRecord> Next() override;
  std::optional<PosRecord> NextAtOrAfter(Position p) override;
  std::optional<Record> Probe(Position p) override;
  void Close() override { child_->Close(); }
  void SaveState(OpStateWriter* w) const override { child_->SaveState(w); }
  bool RestoreState(OpStateReader* r) override {
    return child_->RestoreState(r);
  }

 private:
  SeqOpPtr child_;
  int64_t factor_;
  Span required_;
  ExecContext* ctx_ = nullptr;

  std::optional<PosRecord> current_;  // input record being replicated
  Position next_pos_ = 0;
};

}  // namespace seq

#endif  // SEQ_EXEC_COLLAPSE_OPS_H_
