#ifndef SEQ_EXEC_COLLAPSE_OPS_H_
#define SEQ_EXEC_COLLAPSE_OPS_H_

#include <map>
#include <optional>
#include <utility>

#include "exec/operator.h"
#include "exec/window_state.h"
#include "logical/logical_op.h"

namespace seq {

/// Collapse to a coarser ordering domain (§5.1): output position b holds
/// the aggregate of input positions [b·f, (b+1)·f). One pass, emitting a
/// bucket when the input moves past it.
class CollapseStream : public StreamOp {
 public:
  CollapseStream(StreamOpPtr child, AggFunc func, size_t col_index,
                 TypeId col_type, int64_t factor, Span required)
      : child_(std::move(child)),
        func_(func),
        col_index_(col_index),
        col_type_(col_type),
        factor_(factor),
        required_(required) {}

  Status Open(ExecContext* ctx) override;
  std::optional<PosRecord> Next() override;
  void Close() override { child_->Close(); }

 private:
  StreamOpPtr child_;
  AggFunc func_;
  size_t col_index_;
  TypeId col_type_;
  int64_t factor_;
  Span required_;
  ExecContext* ctx_ = nullptr;

  std::optional<PosRecord> pending_;
  bool child_done_ = false;
};

/// Probed-mode collapse: materializes all buckets in one input pass.
class CollapseProbe : public ProbeOp {
 public:
  CollapseProbe(StreamOpPtr child, AggFunc func, size_t col_index,
                TypeId col_type, int64_t factor)
      : child_(std::move(child)),
        func_(func),
        col_index_(col_index),
        col_type_(col_type),
        factor_(factor) {}

  Status Open(ExecContext* ctx) override;
  std::optional<Record> Probe(Position p) override;
  void Close() override { child_->Close(); }

 private:
  StreamOpPtr child_;
  AggFunc func_;
  size_t col_index_;
  TypeId col_type_;
  int64_t factor_;
  ExecContext* ctx_ = nullptr;

  std::map<Position, Value> buckets_;
};

/// Expand to a finer ordering domain (§5.1): out(i) = in(floor(i/f)).
/// Stream mode replicates each input record over its f output positions.
class ExpandStream : public StreamOp {
 public:
  ExpandStream(StreamOpPtr child, int64_t factor, Span required)
      : child_(std::move(child)), factor_(factor), required_(required) {}

  Status Open(ExecContext* ctx) override;
  std::optional<PosRecord> Next() override;
  std::optional<PosRecord> NextAtOrAfter(Position p) override;
  void Close() override { child_->Close(); }

 private:
  StreamOpPtr child_;
  int64_t factor_;
  Span required_;
  ExecContext* ctx_ = nullptr;

  std::optional<PosRecord> current_;  // input record being replicated
  Position next_pos_ = 0;
};

/// Probed expand: one input probe at floor(p / f).
class ExpandProbe : public ProbeOp {
 public:
  ExpandProbe(ProbeOpPtr child, int64_t factor)
      : child_(std::move(child)), factor_(factor) {}

  Status Open(ExecContext* ctx) override {
    ctx_ = ctx;
    return child_->Open(ctx);
  }
  std::optional<Record> Probe(Position p) override;
  void Close() override { child_->Close(); }

 private:
  ProbeOpPtr child_;
  int64_t factor_;
  ExecContext* ctx_ = nullptr;
};

}  // namespace seq

#endif  // SEQ_EXEC_COLLAPSE_OPS_H_
