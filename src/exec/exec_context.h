#ifndef SEQ_EXEC_EXEC_CONTEXT_H_
#define SEQ_EXEC_EXEC_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <sstream>
#include <string>
#include <utility>

#include "catalog/catalog.h"
#include "catalog/cost_params.h"
#include "common/status.h"
#include "exec/fault_injector.h"
#include "storage/access_stats.h"
#include "types/span.h"

namespace seq {

/// Per-query resource budgets, checked cooperatively at batch boundaries
/// (every driver loop iteration and every leaf-scan batch refill). 0 means
/// unlimited. Exceeding a budget yields a clean ResourceExhausted /
/// DeadlineExceeded / Cancelled status — never a crash, never a silently
/// truncated answer.
struct QueryGuards {
  /// Output rows the query may produce at the root.
  int64_t max_rows = 0;
  /// Page accesses (streamed pages + probe page fetches) the whole plan
  /// may charge.
  int64_t max_pages = 0;
  /// Wall-clock budget for execution, measured from plan Open.
  int64_t max_wall_ms = 0;
  /// Memory budget (approximate bytes) shared by all operator caches
  /// (Cache-Strategy-A windows, Cache-Strategy-B offset caches). Hitting
  /// it does not fail the query: the engine degrades to the cache-free
  /// naive plan (see docs/robustness.md).
  int64_t max_cache_bytes = 0;
  /// Cooperative cancellation: the driver sets the flag (from any thread);
  /// execution notices at the next batch boundary and returns Cancelled.
  const std::atomic<bool>* cancel = nullptr;

  bool any_armed() const {
    return max_rows > 0 || max_pages > 0 || max_wall_ms > 0 ||
           cancel != nullptr;
  }
};

/// Message prefix of the degradation signal raised when an operator cache
/// hits QueryGuards::max_cache_bytes. Engine::Run and StreamSession::Poll
/// recognize it (IsCacheBudgetExceeded) and re-plan with caching disabled
/// instead of failing the query.
inline constexpr const char* kCacheBudgetExceededPrefix =
    "operator cache memory budget exceeded";

/// Shared state threaded through a plan's operators during evaluation.
/// `stats` receives every simulated access/cache/predicate charge; the cost
/// constants mirror the ones the optimizer estimated with so measured
/// simulated cost is comparable to plan estimates.
///
/// Per-operation price table (all from CostParams; the optimizer's
/// estimate formulas charge the same constants for the same events):
///
///   operation                      counter           simulated cost
///   ---------------------------------------------------------------
///   join predicate application     predicate_evals   join_predicate_cost
///   select predicate application   predicate_evals   select_predicate_cost
///   operator-cache store           cache_stores      cache_store_cost
///   operator-cache access          cache_hits        cache_access_cost
///   output-record computation      —                 compute_cost
///   aggregate state step (Add)     agg_steps         agg_step_cost
///
/// Base-sequence page/probe charges are priced per store (AccessCosts) and
/// charged by the scan operators directly.
struct ExecContext {
  const Catalog* catalog = nullptr;
  AccessStats* stats = nullptr;
  CostParams params;

  /// Optional deterministic fault source (robustness testing). Unset in
  /// production runs; every polling site gates on the pointer first.
  FaultInjector* faults = nullptr;

  /// Per-query budgets; ArmGuards() latches the wall-clock deadline.
  QueryGuards guards;

  // ---- Mid-stream error channel ----------------------------------------
  //
  // SeqOp::Next/NextBatch/Probe return optionals and row counts with no
  // error slot, so a mid-stream failure is reported out-of-band: the
  // failing operator Raise()s a status here and returns end-of-stream.
  // Every native batch loop checks failed() between child pulls, the
  // default adapters terminate on the end-of-stream they are handed, and
  // the executor's driving loop surfaces the raised status from
  // Execute/ExecuteVisit — partial rows are discarded, never returned.

  bool failed() const { return !error_.ok(); }
  const Status& error() const { return error_; }

  /// Records a mid-stream error. The first raised error wins; later ones
  /// (usually cascading end-of-stream confusion) are dropped.
  void Raise(Status s) {
    if (error_.ok() && !s.ok()) error_ = std::move(s);
  }

  Status TakeError() {
    Status s = std::move(error_);
    error_ = Status::OK();
    return s;
  }

  // ---- Guard checks -----------------------------------------------------

  /// Latches the wall-clock deadline; called once by the executor before
  /// driving the plan.
  void ArmGuards() {
    if (guards.max_wall_ms > 0) {
      deadline_ = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(guards.max_wall_ms);
      has_deadline_ = true;
    }
  }

  /// Latches a caller-computed deadline. Morsel workers all arm the SAME
  /// instant (computed once before any worker spawns), so the wall-clock
  /// budget measures the query, not each worker's start skew.
  void ArmGuardsAt(std::chrono::steady_clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }

  /// Cooperative budget check, called at batch boundaries. `rows_emitted`
  /// is the driver's root-row count (operators pass the running total they
  /// know, or 0 when only checking cancellation/time/pages).
  Status CheckGuards(int64_t rows_emitted) const {
    if (guards.cancel != nullptr &&
        guards.cancel->load(std::memory_order_relaxed)) {
      return Status::Cancelled("query cancelled by driver");
    }
    if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
      return Status::DeadlineExceeded(
          "query exceeded wall-clock budget of " +
          std::to_string(guards.max_wall_ms) + "ms");
    }
    if (guards.max_pages > 0 && stats != nullptr &&
        stats->stream_pages + stats->probe_pages > guards.max_pages) {
      return Status::ResourceExhausted(
          "query exceeded page-access budget of " +
          std::to_string(guards.max_pages) + " pages");
    }
    if (guards.max_rows > 0 && rows_emitted > guards.max_rows) {
      return Status::ResourceExhausted("query exceeded row budget of " +
                                       std::to_string(guards.max_rows) +
                                       " rows");
    }
    return Status::OK();
  }

  // ---- Fault polling ----------------------------------------------------

  bool FaultArmed(FaultSite site) const {
    return faults != nullptr && faults->armed(site);
  }

  /// Open-time fault poll: operators call this first thing in Open and
  /// propagate the status directly (Open has a real error channel).
  Status PollOpenFault(const char* op_label) {
    if (faults == nullptr || !faults->Poll(FaultSite::kOperatorOpen)) {
      return Status::OK();
    }
    return FaultStatus(FaultSite::kOperatorOpen, op_label, kNoFaultPos);
  }

  /// Mid-stream fault poll: counts a hit of `site`; when the injector
  /// fires, raises an Unavailable status carrying the operator label and
  /// position and returns true — the caller then returns end-of-stream.
  bool PollFaultRaise(FaultSite site, const char* op_label, Position pos) {
    if (faults == nullptr || !faults->Poll(site)) return false;
    Raise(FaultStatus(site, op_label, pos));
    return true;
  }

  // ---- Operator-cache memory accounting ---------------------------------

  /// Adjusts the shared cache footprint by `delta` bytes (negative on
  /// eviction). Returns false when a positive adjustment pushes the
  /// footprint over guards.max_cache_bytes; the caller then raises the
  /// degradation signal via RaiseCacheBudget. With no budget set this is
  /// pure accounting.
  bool AdjustCacheBytes(int64_t delta) {
    cache_bytes_used_ += delta;
    if (cache_bytes_used_ < 0) cache_bytes_used_ = 0;
    if (cache_bytes_used_ > cache_bytes_peak_) {
      cache_bytes_peak_ = cache_bytes_used_;
    }
    return guards.max_cache_bytes <= 0 ||
           cache_bytes_used_ <= guards.max_cache_bytes;
  }

  /// Raises the cache-budget degradation signal (recognized by
  /// IsCacheBudgetExceeded) naming the operator that hit the budget.
  void RaiseCacheBudget(const char* op_label) {
    std::ostringstream oss;
    oss << kCacheBudgetExceededPrefix << " (" << guards.max_cache_bytes
        << " bytes) [op=" << op_label << " used=" << cache_bytes_used_
        << "]";
    Raise(Status::ResourceExhausted(oss.str()));
  }

  int64_t cache_bytes_used() const { return cache_bytes_used_; }
  int64_t cache_bytes_peak() const { return cache_bytes_peak_; }

  void ChargePredicate(bool join) {
    if (stats == nullptr) return;
    ++stats->predicate_evals;
    stats->simulated_cost +=
        join ? params.join_predicate_cost : params.select_predicate_cost;
  }
  void ChargeCacheStore() {
    if (stats == nullptr) return;
    ++stats->cache_stores;
    stats->simulated_cost += params.cache_store_cost;
  }
  void ChargeCacheHit() {
    if (stats == nullptr) return;
    ++stats->cache_hits;
    stats->simulated_cost += params.cache_access_cost;
  }
  void ChargeCompute() {
    if (stats == nullptr) return;
    stats->simulated_cost += params.compute_cost;
  }
  void ChargeAggStep() {
    if (stats == nullptr) return;
    ++stats->agg_steps;
    stats->simulated_cost += params.agg_step_cost;
  }

  // Bulk variants used by the batch path: one call per batch with the
  // per-event constant multiplied out. Counter totals are identical to n
  // single charges; simulated_cost agrees up to floating-point
  // reassociation (see ExecOptions::use_batch).
  void ChargePredicates(bool join, int64_t n) {
    if (stats == nullptr || n <= 0) return;
    stats->predicate_evals += n;
    stats->simulated_cost +=
        static_cast<double>(n) *
        (join ? params.join_predicate_cost : params.select_predicate_cost);
  }
  void ChargeCacheStores(int64_t n) {
    if (stats == nullptr || n <= 0) return;
    stats->cache_stores += n;
    stats->simulated_cost += static_cast<double>(n) * params.cache_store_cost;
  }
  void ChargeCacheHits(int64_t n) {
    if (stats == nullptr || n <= 0) return;
    stats->cache_hits += n;
    stats->simulated_cost += static_cast<double>(n) * params.cache_access_cost;
  }
  void ChargeComputeN(int64_t n) {
    if (stats == nullptr || n <= 0) return;
    stats->simulated_cost += static_cast<double>(n) * params.compute_cost;
  }
  void ChargeAggSteps(int64_t n) {
    if (stats == nullptr || n <= 0) return;
    stats->agg_steps += n;
    stats->simulated_cost += static_cast<double>(n) * params.agg_step_cost;
  }

 private:
  static constexpr Position kNoFaultPos = kMinPosition;

  Status FaultStatus(FaultSite site, const char* op_label,
                     Position pos) const {
    std::ostringstream oss;
    oss << "injected fault at " << FaultSiteName(site) << " [op=" << op_label;
    if (pos != kNoFaultPos) oss << " pos=" << pos;
    oss << " hit=" << faults->hits(site) << "]";
    return Status::Unavailable(oss.str());
  }

  Status error_;
  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;
  int64_t cache_bytes_used_ = 0;
  int64_t cache_bytes_peak_ = 0;
};

/// Leaf-scan cooperative stop check, polled at batch boundaries by the
/// scan operators: true when a mid-stream error has been raised or an
/// armed budget has tripped. A budget trip is Raise()d here so that the
/// leaf can simply return end-of-stream and the driver surfaces the
/// status.
inline bool LeafShouldStop(ExecContext* ctx) {
  if (ctx->failed()) return true;
  if (!ctx->guards.any_armed()) return false;
  Status g = ctx->CheckGuards(0);
  if (g.ok()) return false;
  ctx->Raise(std::move(g));
  return true;
}

/// True when `status` is the cache-budget degradation signal raised by a
/// Cache-A/Cache-B operator: the query is valid, only its cached plan does
/// not fit the memory budget, so callers holding the logical query (Engine,
/// StreamSession) re-plan with operator caches disabled instead of failing.
inline bool IsCacheBudgetExceeded(const Status& status) {
  return status.code() == StatusCode::kResourceExhausted &&
         status.message().rfind(kCacheBudgetExceededPrefix, 0) == 0;
}

}  // namespace seq

#endif  // SEQ_EXEC_EXEC_CONTEXT_H_
