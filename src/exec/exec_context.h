#ifndef SEQ_EXEC_EXEC_CONTEXT_H_
#define SEQ_EXEC_EXEC_CONTEXT_H_

#include "catalog/catalog.h"
#include "catalog/cost_params.h"
#include "storage/access_stats.h"

namespace seq {

/// Shared state threaded through a plan's operators during evaluation.
/// `stats` receives every simulated access/cache/predicate charge; the cost
/// constants mirror the ones the optimizer estimated with so measured
/// simulated cost is comparable to plan estimates.
struct ExecContext {
  const Catalog* catalog = nullptr;
  AccessStats* stats = nullptr;
  CostParams params;

  void ChargePredicate(bool join) {
    if (stats == nullptr) return;
    ++stats->predicate_evals;
    stats->simulated_cost +=
        join ? params.join_predicate_cost : params.select_predicate_cost;
  }
  void ChargeCacheStore() {
    if (stats == nullptr) return;
    ++stats->cache_stores;
    stats->simulated_cost += params.cache_store_cost;
  }
  void ChargeCacheHit() {
    if (stats == nullptr) return;
    ++stats->cache_hits;
    stats->simulated_cost += params.cache_access_cost;
  }
  void ChargeCompute() {
    if (stats == nullptr) return;
    stats->simulated_cost += params.compute_cost;
  }
  void ChargeAggStep() {
    if (stats == nullptr) return;
    ++stats->agg_steps;
  }
};

}  // namespace seq

#endif  // SEQ_EXEC_EXEC_CONTEXT_H_
