#ifndef SEQ_EXEC_EXEC_CONTEXT_H_
#define SEQ_EXEC_EXEC_CONTEXT_H_

#include "catalog/catalog.h"
#include "catalog/cost_params.h"
#include "storage/access_stats.h"

namespace seq {

/// Shared state threaded through a plan's operators during evaluation.
/// `stats` receives every simulated access/cache/predicate charge; the cost
/// constants mirror the ones the optimizer estimated with so measured
/// simulated cost is comparable to plan estimates.
///
/// Per-operation price table (all from CostParams; the optimizer's
/// estimate formulas charge the same constants for the same events):
///
///   operation                      counter           simulated cost
///   ---------------------------------------------------------------
///   join predicate application     predicate_evals   join_predicate_cost
///   select predicate application   predicate_evals   select_predicate_cost
///   operator-cache store           cache_stores      cache_store_cost
///   operator-cache access          cache_hits        cache_access_cost
///   output-record computation      —                 compute_cost
///   aggregate state step (Add)     agg_steps         agg_step_cost
///
/// Base-sequence page/probe charges are priced per store (AccessCosts) and
/// charged by the scan operators directly.
struct ExecContext {
  const Catalog* catalog = nullptr;
  AccessStats* stats = nullptr;
  CostParams params;

  void ChargePredicate(bool join) {
    if (stats == nullptr) return;
    ++stats->predicate_evals;
    stats->simulated_cost +=
        join ? params.join_predicate_cost : params.select_predicate_cost;
  }
  void ChargeCacheStore() {
    if (stats == nullptr) return;
    ++stats->cache_stores;
    stats->simulated_cost += params.cache_store_cost;
  }
  void ChargeCacheHit() {
    if (stats == nullptr) return;
    ++stats->cache_hits;
    stats->simulated_cost += params.cache_access_cost;
  }
  void ChargeCompute() {
    if (stats == nullptr) return;
    stats->simulated_cost += params.compute_cost;
  }
  void ChargeAggStep() {
    if (stats == nullptr) return;
    ++stats->agg_steps;
    stats->simulated_cost += params.agg_step_cost;
  }

  // Bulk variants used by the batch path: one call per batch with the
  // per-event constant multiplied out. Counter totals are identical to n
  // single charges; simulated_cost agrees up to floating-point
  // reassociation (see ExecOptions::use_batch).
  void ChargePredicates(bool join, int64_t n) {
    if (stats == nullptr || n <= 0) return;
    stats->predicate_evals += n;
    stats->simulated_cost +=
        static_cast<double>(n) *
        (join ? params.join_predicate_cost : params.select_predicate_cost);
  }
  void ChargeCacheStores(int64_t n) {
    if (stats == nullptr || n <= 0) return;
    stats->cache_stores += n;
    stats->simulated_cost += static_cast<double>(n) * params.cache_store_cost;
  }
  void ChargeCacheHits(int64_t n) {
    if (stats == nullptr || n <= 0) return;
    stats->cache_hits += n;
    stats->simulated_cost += static_cast<double>(n) * params.cache_access_cost;
  }
  void ChargeComputeN(int64_t n) {
    if (stats == nullptr || n <= 0) return;
    stats->simulated_cost += static_cast<double>(n) * params.compute_cost;
  }
  void ChargeAggSteps(int64_t n) {
    if (stats == nullptr || n <= 0) return;
    stats->agg_steps += n;
    stats->simulated_cost += static_cast<double>(n) * params.agg_step_cost;
  }
};

}  // namespace seq

#endif  // SEQ_EXEC_EXEC_CONTEXT_H_
