#ifndef SEQ_EXEC_STREAM_SESSION_H_
#define SEQ_EXEC_STREAM_SESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "exec/executor.h"
#include "logical/logical_op.h"
#include "optimizer/optimizer.h"

namespace seq {

/// Incremental ("trigger") evaluation of a standing sequence query over
/// dynamically arriving records — the §5.3 extension: "in applications
/// where the data sequences are dynamic, and where the queries are acting
/// as triggers, it may be important to optimize the incremental cost of
/// processing each new arriving data item".
///
/// The session exploits the stream-access property: when every operator
/// has a bounded (effective) scope, output at positions ≥ p depends only
/// on input positions ≥ p − lookback, where lookback is derived from the
/// query's composed scope over its leaves (Prop. 2.1) — so each Poll()
/// re-evaluates only a bounded suffix window and emits the new answers.
/// Queries with unbounded scopes (running/overall aggregates, value
/// offsets) fall back to a caller-supplied `max_lookback` horizon.
class StreamSession {
 public:
  /// `catalog` must outlive the session; `max_lookback` bounds the replay
  /// window for operators with unbounded scope. `exec_options` controls
  /// how each Poll drives its plan (batch vs tuple, batch capacity).
  StreamSession(const Catalog* catalog, LogicalOpPtr graph,
                OptimizerOptions options = {}, int64_t max_lookback = 1024,
                ExecOptions exec_options = {});

  /// Appends an arriving record to a registered base sequence. Positions
  /// must increase per sequence (enforced by the store).
  Status Append(const std::string& sequence, Position pos, Record record);

  /// Evaluates the query over the newly covered positions and returns the
  /// answer records not yet emitted. The high-water mark only advances to
  /// positions whose inputs are complete (all sequences have advanced past
  /// them), so late-arriving data on a lagging sequence is never missed.
  Result<std::vector<PosRecord>> Poll(AccessStats* stats = nullptr);

  /// Persists the standing query and its emission frontier as a
  /// checkpoint file (docs/robustness.md): the query text, the validity
  /// tuple (catalog version, optimizer-options fingerprint, plan
  /// signature) and the high-water mark / degradation flag. Base data is
  /// NOT copied — it lives in the catalog's stores.
  Status Suspend(const std::string& checkpoint_path) const;

  /// Reconstructs a session from a Suspend() checkpoint against the same
  /// catalog contents: validates the validity tuple (FailedPrecondition
  /// with the precise mismatch otherwise), re-parses the query, and
  /// restores the high-water mark — the next Poll() continues exactly
  /// where the suspended session stopped.
  static Result<StreamSession> Resume(const Catalog* catalog,
                                      const std::string& checkpoint_path,
                                      OptimizerOptions options = {},
                                      ExecOptions exec_options = {});

  /// Output positions emitted so far (exclusive upper bound).
  Position high_water_mark() const { return high_water_; }

  /// The replay window derived from the query's scopes.
  int64_t lookback() const { return lookback_; }

  /// True once a poll hit QueryGuards::max_cache_bytes and the session
  /// permanently fell back to cache-free plans (see docs/robustness.md).
  bool degraded() const { return degraded_; }

 private:
  const Catalog* catalog_;
  LogicalOpPtr graph_;
  OptimizerOptions options_;
  ExecOptions exec_options_;
  int64_t max_lookback_ = 1024;  ///< ctor horizon, persisted by Suspend
  int64_t lookback_ = 0;
  int64_t lead_ = 0;  // how far output may precede the earliest input
  Position high_water_ = kMinPosition;
  bool degraded_ = false;
};

}  // namespace seq

#endif  // SEQ_EXEC_STREAM_SESSION_H_
