#ifndef SEQ_EXEC_COMPOSE_OPS_H_
#define SEQ_EXEC_COMPOSE_OPS_H_

#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "exec/operator.h"
#include "expr/compiled_expr.h"

namespace seq {

/// Join-Strategy-B (§3.3): stream both inputs in lock step, joining at
/// common positions — the sort-merge analogue from the paper's motivating
/// example. Uses NextAtOrAfter so dense inputs (value offsets, constants)
/// are skipped through in O(1). Stream-only.
class ComposeLockstepOp : public SeqOp {
 public:
  ComposeLockstepOp(SeqOpPtr left, SeqOpPtr right, ExprPtr predicate,
                    SchemaPtr out_schema)
      : left_(std::move(left)),
        right_(std::move(right)),
        predicate_(std::move(predicate)),
        out_schema_(std::move(out_schema)) {}

  Status Open(ExecContext* ctx) override;
  std::optional<PosRecord> Next() override { return Advance(nullptr); }
  std::optional<PosRecord> NextAtOrAfter(Position p) override {
    return Advance(&p);
  }
  /// Fills the batch by looping the lock-step merge. The children stay on
  /// the tuple interface: the merge's NextAtOrAfter skipping is what keeps
  /// dense inputs O(1), and batching it away would change the access (and
  /// therefore cost) pattern.
  size_t NextBatch(RecordBatch* out) override {
    out->Clear();
    while (!out->full()) {
      std::optional<PosRecord> r = Advance(nullptr);
      if (!r.has_value()) break;
      out->Append(r->pos) = std::move(r->rec);
    }
    return out->size();
  }
  void Close() override {
    left_->Close();
    right_->Close();
  }
  void SaveState(OpStateWriter* w) const override {
    left_->SaveState(w);
    right_->SaveState(w);
  }
  bool RestoreState(OpStateReader* r) override {
    return left_->RestoreState(r) && right_->RestoreState(r);
  }

 private:
  std::optional<PosRecord> Advance(const Position* at_or_after);

  SeqOpPtr left_;
  SeqOpPtr right_;
  ExprPtr predicate_;
  SchemaPtr out_schema_;
  std::optional<CompiledExpr> compiled_;
  ExecContext* ctx_ = nullptr;

  std::optional<PosRecord> l_;
  std::optional<PosRecord> r_;
  bool done_ = false;
};

/// Join-Strategy-A (§3.3): stream one input (the driver) and probe the
/// other at each of its record positions. The native NextBatch pulls the
/// driver a batch at a time and probes the other side through ProbeBatch
/// at the driver's (strictly increasing) positions — the same probe set
/// as the tuple path, so AccessStats totals are identical.
class ComposeStreamProbeOp : public SeqOp {
 public:
  /// `driver_is_left`: the streamed child is the compose's left input
  /// (controls output field order).
  ComposeStreamProbeOp(SeqOpPtr driver, SeqOpPtr other, bool driver_is_left,
                       ExprPtr predicate, SchemaPtr out_schema)
      : driver_(std::move(driver)),
        other_(std::move(other)),
        driver_is_left_(driver_is_left),
        predicate_(std::move(predicate)),
        out_schema_(std::move(out_schema)) {}

  Status Open(ExecContext* ctx) override;
  std::optional<PosRecord> Next() override;
  std::optional<PosRecord> NextAtOrAfter(Position p) override;
  size_t NextBatch(RecordBatch* out) override;
  void Close() override {
    driver_->Close();
    other_->Close();
  }
  void SaveState(OpStateWriter* w) const override {
    driver_->SaveState(w);
    other_->SaveState(w);
  }
  bool RestoreState(OpStateReader* r) override {
    return driver_->RestoreState(r) && other_->RestoreState(r);
  }

 private:
  std::optional<PosRecord> TryJoin(PosRecord d);

  SeqOpPtr driver_;
  SeqOpPtr other_;
  bool driver_is_left_;
  ExprPtr predicate_;
  SchemaPtr out_schema_;
  std::optional<CompiledExpr> compiled_;
  ExecContext* ctx_ = nullptr;
  ExprScratch scratch_;

  // Reusable batch-path buffers, allocated lazily at the output capacity.
  std::unique_ptr<RecordBatch> driver_batch_;
  std::unique_ptr<RecordBatch> probe_batch_;
  std::vector<Position> positions_;
};

/// Probed-mode compose: probe one side (the cheaper rejector first), then
/// the other only on a hit. The native ProbeBatch preserves the
/// short-circuit — the second side sees only the first side's hit
/// positions — so the probe sets (and charges) match the tuple path.
class ComposeProbeBothOp : public SeqOp {
 public:
  ComposeProbeBothOp(SeqOpPtr left, SeqOpPtr right, bool probe_left_first,
                     ExprPtr predicate, SchemaPtr out_schema)
      : left_(std::move(left)),
        right_(std::move(right)),
        probe_left_first_(probe_left_first),
        predicate_(std::move(predicate)),
        out_schema_(std::move(out_schema)) {}

  Status Open(ExecContext* ctx) override;
  std::optional<Record> Probe(Position p) override;
  size_t ProbeBatch(std::span<const Position> positions,
                    RecordBatch* out) override;
  void Close() override {
    left_->Close();
    right_->Close();
  }
  void SaveState(OpStateWriter* w) const override {
    left_->SaveState(w);
    right_->SaveState(w);
  }
  bool RestoreState(OpStateReader* r) override {
    return left_->RestoreState(r) && right_->RestoreState(r);
  }

 private:
  SeqOpPtr left_;
  SeqOpPtr right_;
  bool probe_left_first_;
  ExprPtr predicate_;
  SchemaPtr out_schema_;
  std::optional<CompiledExpr> compiled_;
  ExecContext* ctx_ = nullptr;
  ExprScratch scratch_;

  std::unique_ptr<RecordBatch> batch_a_;  // first-probed side's hits
  std::unique_ptr<RecordBatch> batch_b_;  // second side's hits
  std::vector<Position> positions2_;      // first side's hit positions
};

}  // namespace seq

#endif  // SEQ_EXEC_COMPOSE_OPS_H_
