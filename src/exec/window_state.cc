#include "exec/window_state.h"

#include "common/logging.h"

namespace seq {

void WindowState::Add(Position pos, const Value& v, ExecContext* ctx) {
  if (ctx != nullptr) ctx->ChargeAggStep();
  window_.emplace_back(pos, v);
  ++count_;
  if (IsNumeric(v.type())) {
    if (value_type_ == TypeId::kInt64) {
      sum_i_ += v.int64();
    }
    sum_d_ += v.AsDouble();
  }
  if (func_ == AggFunc::kMin) {
    while (!min_q_.empty() && min_q_.back().second.Compare(v) >= 0) {
      min_q_.pop_back();
    }
    min_q_.emplace_back(pos, v);
  } else if (func_ == AggFunc::kMax) {
    while (!max_q_.empty() && max_q_.back().second.Compare(v) <= 0) {
      max_q_.pop_back();
    }
    max_q_.emplace_back(pos, v);
  }
}

void WindowState::EvictBefore(Position p) {
  while (!window_.empty() && window_.front().first < p) {
    const Value& v = window_.front().second;
    --count_;
    if (IsNumeric(v.type())) {
      if (value_type_ == TypeId::kInt64) {
        sum_i_ -= v.int64();
      }
      sum_d_ -= v.AsDouble();
    }
    window_.pop_front();
  }
  while (!min_q_.empty() && min_q_.front().first < p) min_q_.pop_front();
  while (!max_q_.empty() && max_q_.front().first < p) max_q_.pop_front();
}

Value WindowState::Current() const {
  SEQ_CHECK(count_ > 0);
  switch (func_) {
    case AggFunc::kCount:
      return Value::Int64(count_);
    case AggFunc::kSum:
      return value_type_ == TypeId::kInt64 ? Value::Int64(sum_i_)
                                           : Value::Double(sum_d_);
    case AggFunc::kAvg:
      return Value::Double(sum_d_ / static_cast<double>(count_));
    case AggFunc::kMin:
      SEQ_CHECK(!min_q_.empty());
      return min_q_.front().second;
    case AggFunc::kMax:
      SEQ_CHECK(!max_q_.empty());
      return max_q_.front().second;
  }
  SEQ_CHECK(false);
  return Value();
}

}  // namespace seq
