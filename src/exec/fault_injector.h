#ifndef SEQ_EXEC_FAULT_INJECTOR_H_
#define SEQ_EXEC_FAULT_INJECTOR_H_

#include <array>
#include <cstdint>
#include <random>

namespace seq {

/// Places where the execution engine consults the fault injector. Each
/// site models one failure class of a real deployment:
///
///  * kPageRead     — a storage access (stream page read or positional
///                    probe) fails, as a disk/remote-page fault would;
///  * kOperatorOpen — an operator fails to initialize (allocation failure,
///                    missing resource) during plan Open;
///  * kExprEval     — a predicate/expression evaluation faults mid-stream
///                    (the record-k error-propagation case);
///  * kCheckpointWrite — persisting a suspend checkpoint fails partway,
///                    leaving a torn file on disk (power loss, full disk);
///  * kCheckpointRead — reading a checkpoint back fails (bit rot, torn
///                    page), exercising the DataLoss fail-closed path.
enum class FaultSite : uint8_t {
  kPageRead = 0,
  kOperatorOpen,
  kExprEval,
  kCheckpointWrite,
  kCheckpointRead,
};
inline constexpr int kNumFaultSites = 5;

const char* FaultSiteName(FaultSite site);

/// Deterministic, seeded fault source for robustness testing. Each site is
/// armed independently with either a trigger count ("fail exactly the n-th
/// hit of this site") or a probability (seeded Bernoulli per hit); both can
/// be active. Unarmed sites cost one predictable branch per poll, and an
/// injector is only consulted at all when one is registered on the
/// ExecContext, so production runs pay nothing.
///
/// The injector is intentionally *global per site*, not per operator: with
/// a deterministic plan, "the k-th Open" or "the k-th page read" identifies
/// a unique plan location, which is what lets the fault-matrix test sweep
/// every operator in a plan by sweeping k.
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed = 0) : seed_(seed), engine_(seed) {}

  /// Fail exactly the n-th (1-based) hit of `site`. 0 disarms the trigger.
  void ArmAfter(FaultSite site, int64_t n) {
    sites_[Index(site)].trigger_at = n;
  }

  /// Fail each hit of `site` independently with probability `p`.
  void ArmProbability(FaultSite site, double p) {
    sites_[Index(site)].probability = p;
  }

  bool armed(FaultSite site) const {
    const SiteState& s = sites_[Index(site)];
    return s.trigger_at > 0 || s.probability > 0.0;
  }

  /// Counts a hit of `site`; true when this hit is chosen to fail. A fired
  /// trigger stays fired only once (hit counters keep advancing), so a
  /// retried query re-fails only if the trigger count is hit again.
  bool Poll(FaultSite site) {
    SiteState& s = sites_[Index(site)];
    ++s.hits;
    bool fire = false;
    if (s.trigger_at > 0 && s.hits == s.trigger_at) fire = true;
    if (!fire && s.probability > 0.0) {
      fire = std::bernoulli_distribution(s.probability)(engine_);
    }
    if (fire) ++fired_;
    return fire;
  }

  /// Clears hit/fire counters and re-seeds the probability stream, keeping
  /// the armed configuration — one configured injector can drive many
  /// identical runs deterministically.
  void ResetCounters() {
    for (SiteState& s : sites_) s.hits = 0;
    fired_ = 0;
    engine_.seed(seed_);
  }

  int64_t hits(FaultSite site) const { return sites_[Index(site)].hits; }
  int64_t fired() const { return fired_; }

 private:
  struct SiteState {
    int64_t trigger_at = 0;    // fail the n-th hit; 0 = off
    double probability = 0.0;  // per-hit failure probability; 0 = off
    int64_t hits = 0;
  };

  static size_t Index(FaultSite site) { return static_cast<size_t>(site); }

  uint64_t seed_;
  std::mt19937_64 engine_;
  std::array<SiteState, kNumFaultSites> sites_{};
  int64_t fired_ = 0;
};

}  // namespace seq

#endif  // SEQ_EXEC_FAULT_INJECTOR_H_
