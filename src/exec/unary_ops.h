#ifndef SEQ_EXEC_UNARY_OPS_H_
#define SEQ_EXEC_UNARY_OPS_H_

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "exec/operator.h"
#include "expr/compiled_expr.h"

namespace seq {

/// Selection: passes records satisfying the predicate (unit scope). Both
/// access modes are the child's, filtered: stream access filters the
/// child's stream, probed access filters the child's probe answers. One
/// predicate application is charged per child record seen, in every mode.
class SelectOp : public SeqOp {
 public:
  SelectOp(SeqOpPtr child, ExprPtr predicate, SchemaPtr in_schema)
      : child_(std::move(child)),
        predicate_(std::move(predicate)),
        in_schema_(std::move(in_schema)) {}

  Status Open(ExecContext* ctx) override;
  std::optional<PosRecord> Next() override;
  std::optional<PosRecord> NextAtOrAfter(Position p) override;
  size_t NextBatch(RecordBatch* out) override;
  size_t NextBatchUpTo(Position limit, RecordBatch* out) override;
  std::optional<Record> Probe(Position p) override;
  size_t ProbeBatch(std::span<const Position> positions,
                    RecordBatch* out) override;
  void Close() override { child_->Close(); }
  void SaveState(OpStateWriter* w) const override { child_->SaveState(w); }
  bool RestoreState(OpStateReader* r) override {
    return child_->RestoreState(r);
  }

 private:
  size_t Filter(RecordBatch* out, size_t n);
  size_t FilterGeneric(RecordBatch* out, size_t n);
  size_t FilterSimple(RecordBatch* out, size_t n);
  size_t FilterFaulted(RecordBatch* out, size_t n);

  SeqOpPtr child_;
  ExprPtr predicate_;
  SchemaPtr in_schema_;
  std::optional<CompiledExpr> compiled_;
  std::optional<SimpleIntCmp> simple_;  // set when the predicate matches
  ExecContext* ctx_ = nullptr;
  ExprScratch scratch_;
};

/// Projection: reorders/renames/narrows fields (unit scope). Like
/// selection, both access modes are 1:1 transforms of the child's.
class ProjectOp : public SeqOp {
 public:
  ProjectOp(SeqOpPtr child, std::vector<size_t> indices)
      : child_(std::move(child)), indices_(std::move(indices)) {
    // Strictly increasing source indices imply indices_[j] >= j with no
    // duplicate sources, so values can shift left within the row without
    // clobbering a slot that is still to be read.
    in_place_ = true;
    for (size_t j = 0; j + 1 < indices_.size(); ++j) {
      if (indices_[j] >= indices_[j + 1]) in_place_ = false;
    }
  }

  Status Open(ExecContext* ctx) override {
    SEQ_RETURN_IF_ERROR(ctx->PollOpenFault("Project"));
    ctx_ = ctx;
    return child_->Open(ctx);
  }
  std::optional<PosRecord> Next() override;
  std::optional<PosRecord> NextAtOrAfter(Position p) override;
  size_t NextBatch(RecordBatch* out) override;
  size_t NextBatchUpTo(Position limit, RecordBatch* out) override;
  std::optional<Record> Probe(Position p) override;
  size_t ProbeBatch(std::span<const Position> positions,
                    RecordBatch* out) override;
  void Close() override { child_->Close(); }
  void SaveState(OpStateWriter* w) const override { child_->SaveState(w); }
  bool RestoreState(OpStateReader* r) override {
    return child_->RestoreState(r);
  }

 private:
  Record Map(Record in) const;
  void MapBatchRows(RecordBatch* out, size_t n);

  SeqOpPtr child_;
  std::vector<size_t> indices_;
  ExecContext* ctx_ = nullptr;
  bool in_place_ = false;
  Record tmp_;  // row staging buffer for permuting projections
};

/// Positional offset: out(i) = in(i + l). Pure position relabeling in
/// both modes — the stream side's child cursor simply runs `l` positions
/// ahead of (or behind) the output, realizing the §3.4 effective-scope
/// broadening without a buffer; the probed side shifts each probe.
class PosOffsetOp : public SeqOp {
 public:
  PosOffsetOp(SeqOpPtr child, int64_t offset)
      : child_(std::move(child)), offset_(offset) {}

  Status Open(ExecContext* ctx) override {
    SEQ_RETURN_IF_ERROR(ctx->PollOpenFault("PosOffset"));
    return child_->Open(ctx);
  }
  std::optional<PosRecord> Next() override {
    std::optional<PosRecord> r = child_->Next();
    if (!r.has_value()) return std::nullopt;
    return PosRecord{r->pos - offset_, std::move(r->rec)};
  }
  std::optional<PosRecord> NextAtOrAfter(Position p) override {
    std::optional<PosRecord> r = child_->NextAtOrAfter(p + offset_);
    if (!r.has_value()) return std::nullopt;
    return PosRecord{r->pos - offset_, std::move(r->rec)};
  }
  size_t NextBatch(RecordBatch* out) override {
    // Pure position relabeling: the child fills the batch, we restamp.
    size_t n = child_->NextBatch(out);
    for (size_t i = 0; i < n; ++i) out->pos(i) -= offset_;
    return n;
  }
  size_t NextBatchUpTo(Position limit, RecordBatch* out) override {
    size_t n = child_->NextBatchUpTo(limit + offset_, out);
    for (size_t i = 0; i < n; ++i) out->pos(i) -= offset_;
    return n;
  }
  std::optional<Record> Probe(Position p) override {
    return child_->Probe(p + offset_);
  }
  size_t ProbeBatch(std::span<const Position> positions,
                    RecordBatch* out) override {
    shifted_.assign(positions.begin(), positions.end());
    for (Position& p : shifted_) p += offset_;
    size_t n = child_->ProbeBatch(shifted_, out);
    for (size_t i = 0; i < n; ++i) out->pos(i) -= offset_;
    return n;
  }
  void Close() override { child_->Close(); }
  void SaveState(OpStateWriter* w) const override { child_->SaveState(w); }
  bool RestoreState(OpStateReader* r) override {
    return child_->RestoreState(r);
  }

 private:
  SeqOpPtr child_;
  int64_t offset_;
  std::vector<Position> shifted_;  // reusable probe-position buffer
};

}  // namespace seq

#endif  // SEQ_EXEC_UNARY_OPS_H_
