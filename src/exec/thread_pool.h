#ifndef SEQ_EXEC_THREAD_POOL_H_
#define SEQ_EXEC_THREAD_POOL_H_

#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace seq {

/// A small owned worker pool: submit N tasks, wait at the barrier.
/// Superseded for query execution by the process-wide QueryScheduler
/// (exec/scheduler.h) — the executor no longer creates per-query pools —
/// but kept for tests and one-off auxiliary work that wants an owned,
/// joinable pool with no global state.
class ThreadPool {
 public:
  explicit ThreadPool(int threads) {
    threads_.reserve(static_cast<size_t>(threads > 0 ? threads : 0));
    for (int i = 0; i < threads; ++i) {
      threads_.emplace_back([this] { Loop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not submit further tasks.
  void Submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++pending_;
      tasks_.push_back(std::move(task));
    }
    cv_.notify_one();
  }

  /// Blocks until every submitted task has finished. `poll`, when set, is
  /// invoked roughly every millisecond while waiting — the coordinating
  /// thread uses it to forward the caller's cancellation flag to workers
  /// that are deep inside a blocking operator.
  void Wait(const std::function<void()>& poll = {}) {
    std::unique_lock<std::mutex> lock(mu_);
    if (!poll) {
      done_cv_.wait(lock, [this] { return pending_ == 0; });
      return;
    }
    // Re-check the completion predicate before every re-arm: a bare
    // wait_for here kept this thread waking (and polling) every
    // millisecond after pending_ hit zero mid-wait, because the notify
    // could land between the wake and the loop condition.
    while (pending_ > 0) {
      done_cv_.wait_for(lock, std::chrono::milliseconds(1),
                        [this] { return pending_ == 0; });
      if (pending_ == 0) break;
      lock.unlock();
      poll();
      lock.lock();
    }
  }

 private:
  void Loop() {
    std::unique_lock<std::mutex> lock(mu_);
    while (true) {
      cv_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      std::function<void()> task = std::move(tasks_.back());
      tasks_.pop_back();
      lock.unlock();
      task();
      lock.lock();
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  std::vector<std::function<void()>> tasks_;
  int pending_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace seq

#endif  // SEQ_EXEC_THREAD_POOL_H_
