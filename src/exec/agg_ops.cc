#include "exec/agg_ops.h"

#include <algorithm>

#include "common/logging.h"

namespace seq {

// --- WindowAggCachedOp ------------------------------------------------------

namespace {
constexpr const char* kCacheALabel = "WindowAgg(cache-A)";

/// Streams a morsel carry-in subtree to completion into `state`, charging
/// nothing: the carry context has no stats block and no fault injector, so
/// the fold is invisible to AccessStats and to fault determinism — the
/// records it re-reads were charged by the morsel that owns them. Budgets
/// still apply cooperatively: the cancel flag is forwarded so a tripped
/// sibling morsel stops a long fold.
Status FoldCarry(SeqOp* carry, ExecContext* ctx, WindowState* state,
                 size_t col_index) {
  ExecContext carry_ctx;
  carry_ctx.catalog = ctx->catalog;
  carry_ctx.params = ctx->params;
  carry_ctx.guards.cancel = ctx->guards.cancel;
  SEQ_RETURN_IF_ERROR(carry->Open(&carry_ctx));
  int64_t seen = 0;
  while (true) {
    std::optional<PosRecord> r = carry->Next();
    if (!r.has_value()) break;
    state->Add(r->pos, r->rec[col_index], nullptr);
    if ((++seen & 0xFF) == 0) {
      SEQ_RETURN_IF_ERROR(carry_ctx.CheckGuards(0));
    }
  }
  carry->Close();
  return carry_ctx.TakeError();
}

}  // namespace

Status WindowAggCachedOp::Open(ExecContext* ctx) {
  SEQ_RETURN_IF_ERROR(ctx->PollOpenFault(kCacheALabel));
  ctx_ = ctx;
  next_pos_ = required_.start;
  pending_.reset();
  child_done_ = false;
  state_ = WindowState(func_, col_type_);
  cache_footprint_ = 0;
  input_.Reset();
  SEQ_RETURN_IF_ERROR(child_->Open(ctx));
  if (carry_ != nullptr) {
    // The first SyncCacheBytes after this fold charges the carried
    // entries' footprint, so the cache-memory budget sees the same state
    // size at every output position as a serial run.
    SEQ_RETURN_IF_ERROR(FoldCarry(carry_.get(), ctx, &state_, col_index_));
  }
  return Status::OK();
}

void WindowAggCachedOp::Fill() {
  if (child_done_ || pending_.has_value()) return;
  pending_ = child_->Next();
  if (!pending_.has_value()) child_done_ = true;
}

bool WindowAggCachedOp::SyncCacheBytes() {
  const int64_t now = state_.ApproxBytes();
  const int64_t delta = now - cache_footprint_;
  cache_footprint_ = now;
  if (delta == 0) return true;
  if (!ctx_->AdjustCacheBytes(delta)) {
    ctx_->RaiseCacheBudget(kCacheALabel);
    return false;
  }
  return true;
}

std::optional<PosRecord> WindowAggCachedOp::Next() {
  return NextAtOrAfter(next_pos_);
}

std::optional<PosRecord> WindowAggCachedOp::NextAtOrAfter(Position p) {
  if (required_.IsEmpty()) return std::nullopt;
  if (p < next_pos_) p = next_pos_;
  if (p < required_.start) p = required_.start;
  while (p <= required_.end) {
    if (ctx_->failed()) return std::nullopt;
    // Pull every input at positions <= p into the window cache.
    Fill();
    while (pending_.has_value() && pending_->pos <= p) {
      ctx_->ChargeCacheStore();
      state_.Add(pending_->pos, pending_->rec[col_index_], ctx_);
      pending_.reset();
      Fill();
    }
    state_.EvictBefore(p - window_ + 1);
    if (!SyncCacheBytes()) return std::nullopt;
    if (state_.count() > 0) {
      ctx_->ChargeCacheHit();
      ctx_->ChargeCompute();
      next_pos_ = p + 1;
      return PosRecord{p, Record{state_.Current()}};
    }
    // Window empty at p: jump to the next input record's position.
    if (!pending_.has_value()) return std::nullopt;
    p = pending_->pos;
  }
  return std::nullopt;
}

size_t WindowAggCachedOp::NextBatch(RecordBatch* out) {
  out->Clear();
  if (required_.IsEmpty()) return 0;
  Position p = next_pos_;
  if (p < required_.start) p = required_.start;
  int64_t consumed = 0;
  while (!out->full() && p <= required_.end) {
    if (ctx_->failed()) break;
    bool have = input_.Ready(child_.get(), out->capacity());
    while (have && input_.pos() <= p) {
      state_.Add(input_.pos(), input_.rec()[col_index_], nullptr);
      ++consumed;
      input_.Consume();
      have = input_.Ready(child_.get(), out->capacity());
    }
    state_.EvictBefore(p - window_ + 1);
    if (!SyncCacheBytes()) break;
    if (state_.count() > 0) {
      Record& dst = out->Append(p);
      dst.resize(1);
      dst[0] = state_.Current();
      ++p;
      continue;
    }
    if (!have) break;
    p = input_.pos();
  }
  next_pos_ = p;
  // Bulk charging: one cache store + agg step per consumed input, one
  // cache hit + compute per emitted row — the same totals the tuple path
  // charges per event.
  ctx_->ChargeCacheStores(consumed);
  ctx_->ChargeAggSteps(consumed);
  ctx_->ChargeCacheHits(static_cast<int64_t>(out->size()));
  ctx_->ChargeComputeN(static_cast<int64_t>(out->size()));
  return out->size();
}

// --- RunningAggOp -----------------------------------------------------------

Status RunningAggOp::Open(ExecContext* ctx) {
  SEQ_RETURN_IF_ERROR(ctx->PollOpenFault("RunningAgg"));
  ctx_ = ctx;
  next_pos_ = required_.start;
  pending_.reset();
  child_done_ = false;
  state_ = WindowState(func_, col_type_);
  input_.Reset();
  SEQ_RETURN_IF_ERROR(child_->Open(ctx));
  if (carry_ != nullptr) {
    SEQ_RETURN_IF_ERROR(FoldCarry(carry_.get(), ctx, &state_, col_index_));
  }
  return Status::OK();
}

std::optional<PosRecord> RunningAggOp::Next() {
  return NextAtOrAfter(next_pos_);
}

std::optional<PosRecord> RunningAggOp::NextAtOrAfter(Position p) {
  if (required_.IsEmpty()) return std::nullopt;
  if (p < next_pos_) p = next_pos_;
  if (p < required_.start) p = required_.start;
  while (p <= required_.end) {
    if (ctx_->failed()) return std::nullopt;
    if (!pending_.has_value() && !child_done_) {
      pending_ = child_->Next();
      if (!pending_.has_value()) child_done_ = true;
    }
    while (pending_.has_value() && pending_->pos <= p) {
      state_.Add(pending_->pos, pending_->rec[col_index_], ctx_);
      pending_.reset();
      if (!child_done_) {
        pending_ = child_->Next();
        if (!pending_.has_value()) child_done_ = true;
      }
    }
    if (state_.count() > 0) {
      ctx_->ChargeCompute();
      next_pos_ = p + 1;
      return PosRecord{p, Record{state_.Current()}};
    }
    if (!pending_.has_value()) return std::nullopt;
    p = pending_->pos;
  }
  return std::nullopt;
}

size_t RunningAggOp::NextBatch(RecordBatch* out) {
  out->Clear();
  if (required_.IsEmpty()) return 0;
  Position p = next_pos_;
  if (p < required_.start) p = required_.start;
  int64_t consumed = 0;
  while (!out->full() && p <= required_.end) {
    if (ctx_->failed()) break;
    bool have = input_.Ready(child_.get(), out->capacity());
    while (have && input_.pos() <= p) {
      state_.Add(input_.pos(), input_.rec()[col_index_], nullptr);
      ++consumed;
      input_.Consume();
      have = input_.Ready(child_.get(), out->capacity());
    }
    if (state_.count() > 0) {
      Record& dst = out->Append(p);
      dst.resize(1);
      dst[0] = state_.Current();
      ++p;
      continue;
    }
    if (!have) break;
    p = input_.pos();
  }
  next_pos_ = p;
  ctx_->ChargeAggSteps(consumed);
  ctx_->ChargeComputeN(static_cast<int64_t>(out->size()));
  return out->size();
}

// --- OverallAggOp -----------------------------------------------------------

Status OverallAggOp::Open(ExecContext* ctx) {
  SEQ_RETURN_IF_ERROR(ctx->PollOpenFault("OverallAgg"));
  ctx_ = ctx;
  next_pos_ = required_.start;
  SEQ_RETURN_IF_ERROR(child_->Open(ctx));
  // One full pass computes the aggregate (the paper's "agg_pos always
  // true" special case aggregates the whole sequence). The pass blocks
  // inside Open, so it checks budgets/cancellation itself every 256
  // records — the driver's batch-boundary checks never see this loop.
  WindowState state(func_, col_type_);
  int64_t seen = 0;
  while (true) {
    std::optional<PosRecord> r = child_->Next();
    if (!r.has_value()) break;
    state.Add(r->pos, r->rec[col_index_], ctx);
    if ((++seen & 0xFF) == 0) {
      SEQ_RETURN_IF_ERROR(ctx->CheckGuards(0));
    }
  }
  if (ctx->failed()) return ctx->TakeError();
  if (state.count() > 0) value_ = state.Current();
  return Status::OK();
}

std::optional<PosRecord> OverallAggOp::Next() {
  if (!value_.has_value() || required_.IsEmpty()) return std::nullopt;
  if (next_pos_ < required_.start) next_pos_ = required_.start;
  if (next_pos_ > required_.end) return std::nullopt;
  ctx_->ChargeCompute();
  return PosRecord{next_pos_++, Record{*value_}};
}

size_t OverallAggOp::NextBatch(RecordBatch* out) {
  out->Clear();
  if (!value_.has_value() || required_.IsEmpty()) return 0;
  if (next_pos_ < required_.start) next_pos_ = required_.start;
  while (!out->full() && next_pos_ <= required_.end) {
    Record& dst = out->Append(next_pos_++);
    dst.resize(1);
    dst[0] = *value_;
  }
  ctx_->ChargeComputeN(static_cast<int64_t>(out->size()));
  return out->size();
}

// --- WindowAggNaiveOp -------------------------------------------------------

std::optional<Value> WindowAggNaiveOp::WindowAt(Position p, int64_t* steps) {
  WindowState state(func_, col_type_);
  for (Position q = p - window_ + 1; q <= p; ++q) {
    std::optional<Record> r = child_->Probe(q);
    if (ctx_->failed()) return std::nullopt;
    if (r.has_value()) {
      state.Add(q, (*r)[col_index_], nullptr);
      ++*steps;
    }
  }
  if (state.count() == 0) return std::nullopt;
  return state.Current();
}

std::optional<Record> WindowAggNaiveOp::Probe(Position p) {
  int64_t steps = 0;
  std::optional<Value> v = WindowAt(p, &steps);
  ctx_->ChargeAggSteps(steps);
  if (!v.has_value()) return std::nullopt;
  ctx_->ChargeCompute();
  return Record{std::move(*v)};
}

std::optional<PosRecord> WindowAggNaiveOp::Next() {
  while (next_pos_ <= required_.end) {
    if (ctx_->failed()) return std::nullopt;
    Position p = next_pos_++;
    std::optional<Record> r = Probe(p);
    if (r.has_value()) return PosRecord{p, std::move(*r)};
  }
  return std::nullopt;
}

size_t WindowAggNaiveOp::NextBatch(RecordBatch* out) {
  out->Clear();
  int64_t steps = 0;
  while (!out->full() && next_pos_ <= required_.end) {
    if (ctx_->failed()) break;
    Position p = next_pos_++;
    std::optional<Value> v = WindowAt(p, &steps);
    if (v.has_value()) {
      Record& dst = out->Append(p);
      dst.resize(1);
      dst[0] = std::move(*v);
    }
  }
  ctx_->ChargeAggSteps(steps);
  ctx_->ChargeComputeN(static_cast<int64_t>(out->size()));
  return out->size();
}

size_t WindowAggNaiveOp::ProbeBatch(std::span<const Position> positions,
                                    RecordBatch* out) {
  out->Clear();
  int64_t steps = 0;
  for (Position p : positions) {
    if (ctx_->failed()) break;
    std::optional<Value> v = WindowAt(p, &steps);
    if (v.has_value()) {
      Record& dst = out->Append(p);
      dst.resize(1);
      dst[0] = std::move(*v);
    }
  }
  ctx_->ChargeAggSteps(steps);
  ctx_->ChargeComputeN(static_cast<int64_t>(out->size()));
  return out->size();
}

// --- MaterializedAggOp ------------------------------------------------------

Status MaterializedAggOp::Open(ExecContext* ctx) {
  SEQ_RETURN_IF_ERROR(ctx->PollOpenFault("MaterializedAgg"));
  ctx_ = ctx;
  SEQ_RETURN_IF_ERROR(child_->Open(ctx));
  // Blocking materialization pass: like OverallAgg::Open it checks
  // budgets/cancellation itself every 256 records. The checkpoint vector
  // is a materialization, not an operator cache, so it is exempt from
  // max_cache_bytes — the degraded (cache-free) re-plan must be able to
  // run it (see docs/robustness.md).
  WindowState state(func_, col_type_);
  checkpoints_.clear();
  int64_t seen = 0;
  while (true) {
    std::optional<PosRecord> r = child_->Next();
    if (!r.has_value()) break;
    state.Add(r->pos, r->rec[col_index_], ctx);
    if (kind_ == WindowKind::kRunning) {
      checkpoints_.emplace_back(r->pos, state.Current());
    }
    if ((++seen & 0xFF) == 0) {
      SEQ_RETURN_IF_ERROR(ctx->CheckGuards(0));
    }
  }
  if (ctx->failed()) return ctx->TakeError();
  if (kind_ == WindowKind::kAll && state.count() > 0) {
    checkpoints_.emplace_back(out_span_.start, state.Current());
  }
  return Status::OK();
}

const Value* MaterializedAggOp::Lookup(Position p) const {
  if (checkpoints_.empty() || !out_span_.Contains(p)) return nullptr;
  if (kind_ == WindowKind::kAll) return &checkpoints_.front().second;
  // Running: value at the greatest checkpoint position <= p.
  auto it = std::upper_bound(
      checkpoints_.begin(), checkpoints_.end(), p,
      [](Position pos, const std::pair<Position, Value>& cp) {
        return pos < cp.first;
      });
  if (it == checkpoints_.begin()) return nullptr;
  return &std::prev(it)->second;
}

std::optional<Record> MaterializedAggOp::Probe(Position p) {
  const Value* v = Lookup(p);
  if (v == nullptr) return std::nullopt;
  ctx_->ChargeCacheHit();
  return Record{*v};
}

size_t MaterializedAggOp::ProbeBatch(std::span<const Position> positions,
                                     RecordBatch* out) {
  out->Clear();
  for (Position p : positions) {
    const Value* v = Lookup(p);
    if (v == nullptr) continue;
    Record& dst = out->Append(p);
    dst.resize(1);
    dst[0] = *v;
  }
  ctx_->ChargeCacheHits(static_cast<int64_t>(out->size()));
  return out->size();
}

}  // namespace seq
