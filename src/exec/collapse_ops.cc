#include "exec/collapse_ops.h"

namespace seq {
namespace {

// Floor division (buckets must nest correctly for negative positions).
Position BucketOf(Position pos, int64_t factor) {
  Position b = pos / factor;
  if (pos % factor != 0 && pos < 0) --b;
  return b;
}

}  // namespace

Status CollapseOp::Open(ExecContext* ctx) {
  SEQ_RETURN_IF_ERROR(ctx->PollOpenFault("Collapse"));
  ctx_ = ctx;
  pending_.reset();
  child_done_ = false;
  buckets_.clear();
  SEQ_RETURN_IF_ERROR(child_->Open(ctx));
  if (!materialized_) return Status::OK();
  // Probed mode: fold every bucket now, serve probes by lookup. The fold
  // blocks inside Open, so it checks budgets/cancellation itself every
  // 256 records; the bucket map is a materialization, exempt from
  // max_cache_bytes (the degraded re-plan must be able to run it).
  int64_t seen = 0;
  std::optional<PosRecord> r = child_->Next();
  while (r.has_value()) {
    Position bucket = BucketOf(r->pos, factor_);
    WindowState state(func_, col_type_);
    while (r.has_value() && BucketOf(r->pos, factor_) == bucket) {
      state.Add(r->pos, r->rec[col_index_], ctx);
      r = child_->Next();
      if ((++seen & 0xFF) == 0) {
        SEQ_RETURN_IF_ERROR(ctx->CheckGuards(0));
      }
    }
    if (ctx->failed()) return ctx->TakeError();
    ctx->ChargeCompute();
    buckets_.emplace(bucket, state.Current());
  }
  if (ctx->failed()) return ctx->TakeError();
  return Status::OK();
}

std::optional<PosRecord> CollapseOp::Next() {
  if (!pending_.has_value() && !child_done_) {
    pending_ = child_->Next();
    if (!pending_.has_value()) child_done_ = true;
  }
  if (!pending_.has_value() || ctx_->failed()) return std::nullopt;

  Position bucket = BucketOf(pending_->pos, factor_);
  WindowState state(func_, col_type_);
  while (pending_.has_value() && BucketOf(pending_->pos, factor_) == bucket) {
    state.Add(pending_->pos, pending_->rec[col_index_], ctx_);
    pending_ = child_->Next();
    if (!pending_.has_value()) child_done_ = true;
  }
  if (ctx_->failed()) return std::nullopt;
  ctx_->ChargeCompute();
  if (!required_.Contains(bucket)) {
    // Outside the requested collapsed range; recurse to the next bucket.
    return Next();
  }
  return PosRecord{bucket, Record{state.Current()}};
}

std::optional<Record> CollapseOp::Probe(Position p) {
  auto it = buckets_.find(p);
  if (it == buckets_.end()) return std::nullopt;
  ctx_->ChargeCacheHit();
  return Record{it->second};
}

size_t CollapseOp::ProbeBatch(std::span<const Position> positions,
                              RecordBatch* out) {
  out->Clear();
  for (Position p : positions) {
    auto it = buckets_.find(p);
    if (it == buckets_.end()) continue;
    Record& dst = out->Append(p);
    dst.resize(1);
    dst[0] = it->second;
  }
  ctx_->ChargeCacheHits(static_cast<int64_t>(out->size()));
  return out->size();
}

Status ExpandOp::Open(ExecContext* ctx) {
  SEQ_RETURN_IF_ERROR(ctx->PollOpenFault("Expand"));
  ctx_ = ctx;
  current_.reset();
  next_pos_ = required_.start;
  return child_->Open(ctx);
}

std::optional<PosRecord> ExpandOp::Next() {
  return NextAtOrAfter(next_pos_);
}

std::optional<PosRecord> ExpandOp::NextAtOrAfter(Position p) {
  if (required_.IsEmpty()) return std::nullopt;
  if (p < next_pos_) p = next_pos_;
  if (p < required_.start) p = required_.start;
  while (p <= required_.end) {
    if (ctx_->failed()) return std::nullopt;
    Position bucket = BucketOf(p, factor_);
    // Advance the input to the bucket covering p (or beyond).
    while (!current_.has_value() || current_->pos < bucket) {
      current_ = child_->NextAtOrAfter(bucket);
      if (!current_.has_value()) return std::nullopt;
    }
    if (current_->pos == bucket) {
      ctx_->ChargeCompute();
      next_pos_ = p + 1;
      return PosRecord{p, current_->rec};
    }
    // Input bucket lies ahead: jump to its first output position.
    p = current_->pos * factor_;
  }
  return std::nullopt;
}

std::optional<Record> ExpandOp::Probe(Position p) {
  ctx_->ChargeCompute();
  return child_->Probe(BucketOf(p, factor_));
}

}  // namespace seq
