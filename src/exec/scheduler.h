#ifndef SEQ_EXEC_SCHEDULER_H_
#define SEQ_EXEC_SCHEDULER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"

namespace seq {

/// Admission priority class of one query. Higher classes are admitted from
/// the wait queue first and their morsels are dispatched to workers first;
/// within a class everything is FIFO (arrival order) with per-query
/// round-robin morsel dispatch, so no class member can starve another.
enum class QueryPriority { kLow = 0, kNormal = 1, kHigh = 2 };

const char* QueryPriorityName(QueryPriority priority);

/// Strictly validated positive-integer environment parse shared by the
/// execution knobs (SEQ_PARALLELISM, SEQ_SCHED_WORKERS): the whole string
/// must be a decimal integer >= `min_value`. Anything else — garbage,
/// negative, zero where a positive count is required, trailing junk —
/// logs one warning to stderr and returns `fallback` instead of being
/// silently adopted.
int ValidatedEnvInt(const char* name, int min_value, int fallback);

/// Process-wide default for the scheduler's worker-pool size: the
/// SEQ_SCHED_WORKERS environment variable when set (validated), otherwise
/// std::thread::hardware_concurrency() (with a floor of 1).
int DefaultSchedWorkers();

/// Point-in-time scheduler counters for `.sched stats` and tests.
struct SchedulerStats {
  int workers = 0;          ///< configured pool size
  int live_workers = 0;     ///< threads currently alive in the pool
  int active_workers = 0;   ///< threads currently running a task
  int peak_active_workers = 0;
  int running = 0;          ///< queries holding an admission slot
  int peak_running = 0;
  int max_running = 0;      ///< admission limit (0 = unlimited)
  size_t queued = 0;        ///< queries waiting in the admission queue
  size_t max_queued = 0;    ///< wait-queue bound
  int64_t default_timeout_ms = 0;  ///< queue-timeout default (0 = none)
  int64_t admitted = 0;
  int64_t queued_total = 0;  ///< admissions that had to wait
  int64_t rejected_queue_full = 0;
  int64_t rejected_timeout = 0;
  int64_t groups = 0;  ///< task groups (parallel queries) executed
  int64_t tasks = 0;   ///< individual tasks (morsel claims) dispatched
  size_t preemptible = 0;       ///< checkpointable runners registered now
  int64_t suspend_requests = 0;  ///< preemptions requested under pressure
};

/// The process-wide query scheduler: ONE shared worker pool executing the
/// morsels of every parallel query in the process, fed through an
/// admission controller that bounds how many queries run at once.
///
/// Replaces the per-query owned ThreadPool (PR 5): N concurrent 8-way
/// queries used to spawn 8N threads with nothing bounding total load; now
/// the pool is a fixed, process-wide resource (default hardware
/// concurrency, SEQ_SCHED_WORKERS env, `.sched workers <n>` in seqsh) and
/// ExecOptions::parallelism is a per-query *share cap* — the most workers
/// that may run one query's morsels concurrently — not a thread count.
///
/// Scheduling is per-query fair round-robin: workers claim tasks one at a
/// time, rotating across the runnable task groups of the highest non-empty
/// priority class; within a group, tasks are claimed strictly FIFO (the
/// old per-query pool drained its queue LIFO via pop_back — morsel order
/// now matches submission order). Results stay byte-identical to serial
/// regardless: the executor merges per-morsel output in morsel order.
///
/// Admission: a query asking for parallel execution first takes an
/// admission slot. At most `max_running` queries hold slots; beyond that,
/// callers wait in a bounded priority queue (`max_queued`, rejection with
/// ResourceExhausted when full) until a slot frees, their admission
/// timeout elapses (ResourceExhausted), their wall-clock budget expires
/// (DeadlineExceeded — queue time counts toward max_wall_ms), or they are
/// cancelled. Serial queries never touch the scheduler and are never
/// queued or rejected — admission bounds *pool* load, and a serial query
/// uses only its caller's thread.
///
/// Lifecycle: a leaked process singleton (Global()), its worker threads
/// started lazily on the first parallel query and detached — they only
/// ever touch the leaked scheduler and the leaked metrics registries, so
/// process exit while they idle is safe.
class QueryScheduler {
 public:
  /// RAII admission slot. Releasing it (destruction) hands the slot to
  /// the best waiting query (highest priority class, earliest arrival).
  class Admission {
   public:
    Admission() = default;
    Admission(Admission&& other) noexcept { *this = std::move(other); }
    Admission& operator=(Admission&& other) noexcept;
    Admission(const Admission&) = delete;
    Admission& operator=(const Admission&) = delete;
    ~Admission() { Release(); }

    bool active() const { return scheduler_ != nullptr; }
    /// Time spent waiting in the admission queue (0 when a slot was free).
    int64_t queue_wait_us() const { return queue_wait_us_; }
    void Release();

   private:
    friend class QueryScheduler;
    Admission(QueryScheduler* scheduler, int64_t queue_wait_us)
        : scheduler_(scheduler), queue_wait_us_(queue_wait_us) {}
    QueryScheduler* scheduler_ = nullptr;
    int64_t queue_wait_us_ = 0;
  };

  /// Admission request: everything the controller needs to decide how
  /// long this query may wait and when the wait must be abandoned.
  struct AdmitRequest {
    QueryPriority priority = QueryPriority::kNormal;
    /// Longest acceptable queue wait: > 0 bounds it, 0 adopts the
    /// scheduler default, < 0 waits indefinitely (subject to deadline and
    /// cancellation).
    int64_t timeout_ms = 0;
    /// The query's wall-clock budget deadline (armed BEFORE admission, so
    /// queue time counts toward max_wall_ms). Expiry while queued returns
    /// DeadlineExceeded with the standard budget message.
    std::optional<std::chrono::steady_clock::time_point> deadline;
    /// The caller's cooperative cancellation flag, polled while queued.
    const std::atomic<bool>* cancel = nullptr;
  };

  /// Blocks until this query holds an admission slot, or returns why it
  /// never will: ResourceExhausted (queue full / queue timeout),
  /// DeadlineExceeded (wall-clock budget expired while queued) or
  /// Cancelled. Immediate when a slot is free.
  Result<Admission> Admit(const AdmitRequest& request);

  /// RAII registration of a checkpoint-capable (suspendable) running
  /// query. While registered, the scheduler may set the flag when a
  /// higher-priority query has to wait for an admission slot — the
  /// runner is expected to suspend to a checkpoint at its next chunk
  /// boundary and release its slot (docs/robustness.md).
  class Preemption {
   public:
    Preemption() = default;
    Preemption(Preemption&& other) noexcept { *this = std::move(other); }
    Preemption& operator=(Preemption&& other) noexcept;
    Preemption(const Preemption&) = delete;
    Preemption& operator=(const Preemption&) = delete;
    ~Preemption() { Release(); }

    bool active() const { return scheduler_ != nullptr; }
    /// The flag the executor polls at chunk boundaries
    /// (CheckpointConfig::preempt).
    const std::atomic<bool>* flag() const { return token_.get(); }
    /// Clears a fired request so the runner can be preempted again after
    /// it resumed.
    void Rearm() {
      if (token_ != nullptr) token_->store(false, std::memory_order_release);
    }
    void Release();

   private:
    friend class QueryScheduler;
    QueryScheduler* scheduler_ = nullptr;
    std::shared_ptr<std::atomic<bool>> token_;
    uint64_t id_ = 0;
  };

  /// Registers the calling query (running at `priority`) as preemptible.
  /// Under admission-queue pressure the scheduler picks the
  /// lowest-priority registered runner whose class is strictly below the
  /// waiter's and sets its flag.
  Preemption RegisterPreemptible(QueryPriority priority);

  /// Runs `n_tasks` invocations of `task` (arguments 0..n_tasks-1) on the
  /// shared pool and returns when all have finished. At most `share_cap`
  /// workers run this group's tasks concurrently (the per-query fair
  /// share); tasks are dispatched FIFO. The calling thread does not
  /// execute tasks — it waits, invoking `poll` roughly every millisecond
  /// when set (cancellation forwarding), and stops polling the moment the
  /// group completes (the predicate is re-checked before every re-arm).
  /// Tasks must not call back into RunGroup or Admit.
  void RunGroup(size_t n_tasks, int share_cap, QueryPriority priority,
                const std::function<void(size_t)>& task,
                const std::function<void()>& poll = {});

  /// Resizes the worker pool (clamped to >= 1). Shrinking takes effect as
  /// excess workers finish their current task; tasks already running are
  /// never interrupted.
  void SetWorkers(int n);
  int workers() const;

  /// Admission limit: at most `n` queries hold slots at once (0 =
  /// unlimited). Raising it (or removing it) admits eligible waiters
  /// immediately.
  void SetMaxRunning(int n);
  int max_running() const;

  /// Bound of the admission wait queue; arrivals beyond it are rejected
  /// with ResourceExhausted. 0 rejects the instant no slot is free.
  void SetMaxQueued(size_t n);

  /// Default queue timeout applied when AdmitRequest::timeout_ms == 0.
  /// 0 (the initial value) means no timeout.
  void SetDefaultTimeoutMs(int64_t ms);

  SchedulerStats Stats() const;

  /// Human-readable stats block for the seqsh `.sched` command.
  std::string ToString() const;

  /// The process-global scheduler every parallel query runs on.
  static QueryScheduler& Global();

  QueryScheduler();
  /// Shuts the worker pool down: wakes every idle worker and blocks until
  /// all of them have exited. The caller must have no RunGroup or Admit in
  /// flight. (The Global() instance is leaked and never runs this; local
  /// instances — tests — need it so detached workers never outlive the
  /// scheduler they reference.)
  ~QueryScheduler();
  QueryScheduler(const QueryScheduler&) = delete;
  QueryScheduler& operator=(const QueryScheduler&) = delete;

 private:
  struct TaskGroup;
  struct Waiter;
  struct PreemptEntry;

  void ReleaseSlot();
  void UnregisterPreemptible(uint64_t id);
  /// Called when a waiter of class `waiter_priority` has to queue: flags
  /// the best victim among the registered preemptible runners.
  void RequestPreemptionLocked(int waiter_priority);
  void EnsureWorkersLocked();
  void WorkerLoop();
  /// True when some group has an unclaimed task and a free share slot.
  bool HasRunnableLocked() const;
  /// The next group to serve: highest priority class first, then
  /// round-robin rotation across that class's runnable groups.
  std::shared_ptr<TaskGroup> PickLocked();
  /// Hands freed slots to waiting queries (best class, earliest arrival).
  void GrantSlotsLocked();

  mutable std::mutex mu_;
  std::condition_variable worker_cv_;  ///< workers: "a task may be runnable"
  std::condition_variable admit_cv_;   ///< admission waiters
  std::condition_variable exit_cv_;    ///< destructor: "all workers gone"

  // Worker pool (guarded by mu_).
  bool shutdown_ = false;
  int target_workers_;
  int live_workers_ = 0;
  int active_workers_ = 0;
  int peak_active_workers_ = 0;

  // Task groups of running queries (guarded by mu_). A group leaves the
  // list once fully claimed; completion is signalled on its own cv.
  std::vector<std::shared_ptr<TaskGroup>> groups_;
  size_t rr_cursor_ = 0;

  // Admission (guarded by mu_).
  int max_running_;
  size_t max_queued_;
  int64_t default_timeout_ms_ = 0;
  int running_ = 0;
  int peak_running_ = 0;
  uint64_t next_arrival_ = 0;
  std::vector<Waiter*> wait_queue_;

  // Preemptible (checkpoint-capable) runners (guarded by mu_).
  std::vector<PreemptEntry> preemptible_;
  uint64_t next_preempt_id_ = 1;

  // Monotonic totals (guarded by mu_; cheap, cold-path updates).
  int64_t admitted_ = 0;
  int64_t queued_total_ = 0;
  int64_t rejected_queue_full_ = 0;
  int64_t rejected_timeout_ = 0;
  int64_t groups_total_ = 0;
  int64_t tasks_total_ = 0;
  int64_t suspend_requests_ = 0;
};

}  // namespace seq

#endif  // SEQ_EXEC_SCHEDULER_H_
