#include "storage/statistics.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "common/string_util.h"

namespace seq {
namespace {

// Distinct counting is exact until this many distinct values are seen, then
// saturates; good enough for selectivity heuristics.
constexpr size_t kDistinctCap = 1 << 16;

}  // namespace

double ColumnStats::FractionBelow(double v) const {
  if (!min.has_value() || !max.has_value()) return 0.5;
  if (*max <= *min) return v > *min ? 1.0 : 0.0;
  if (v <= *min) return 0.0;
  if (v > *max) return 1.0;
  if (bucket_counts.empty() || count == 0) {
    return std::clamp((v - *min) / (*max - *min), 0.0, 1.0);
  }
  double width = (*max - *min) / kHistogramBuckets;
  double below = 0.0;
  for (int b = 0; b < kHistogramBuckets; ++b) {
    double lo = *min + b * width;
    double hi = lo + width;
    if (v >= hi) {
      below += static_cast<double>(bucket_counts[static_cast<size_t>(b)]);
    } else if (v > lo) {
      below += static_cast<double>(bucket_counts[static_cast<size_t>(b)]) *
               (v - lo) / width;
      break;
    } else {
      break;
    }
  }
  return std::clamp(below / static_cast<double>(count), 0.0, 1.0);
}

std::string ColumnStats::ToString() const {
  std::ostringstream oss;
  oss << "count=" << count << " distinct=" << distinct;
  if (min.has_value()) {
    oss << " min=" << FormatDouble(*min) << " max=" << FormatDouble(*max);
  }
  return oss.str();
}

std::vector<ColumnStats> ComputeColumnStats(
    const std::vector<PosRecord>& records, const Schema& schema) {
  std::vector<ColumnStats> stats(schema.num_fields());
  std::vector<std::unordered_set<size_t>> distinct_hashes(schema.num_fields());
  for (const PosRecord& pr : records) {
    for (size_t i = 0; i < schema.num_fields() && i < pr.rec.size(); ++i) {
      ColumnStats& cs = stats[i];
      const Value& v = pr.rec[i];
      ++cs.count;
      if (IsNumeric(v.type())) {
        double d = v.AsDouble();
        if (!cs.min.has_value() || d < *cs.min) cs.min = d;
        if (!cs.max.has_value() || d > *cs.max) cs.max = d;
      }
      auto& seen = distinct_hashes[i];
      if (seen.size() < kDistinctCap) seen.insert(v.Hash());
    }
  }
  for (size_t i = 0; i < stats.size(); ++i) {
    stats[i].distinct = static_cast<int64_t>(distinct_hashes[i].size());
  }
  // Second pass: equi-width histograms for numeric columns with a range.
  for (size_t i = 0; i < stats.size(); ++i) {
    ColumnStats& cs = stats[i];
    if (!cs.min.has_value() || !cs.max.has_value() || *cs.max <= *cs.min) {
      continue;
    }
    cs.bucket_counts.assign(ColumnStats::kHistogramBuckets, 0);
    double width = (*cs.max - *cs.min) / ColumnStats::kHistogramBuckets;
    for (const PosRecord& pr : records) {
      if (i >= pr.rec.size() || !IsNumeric(pr.rec[i].type())) continue;
      double d = pr.rec[i].AsDouble();
      int b = static_cast<int>((d - *cs.min) / width);
      b = std::clamp(b, 0, ColumnStats::kHistogramBuckets - 1);
      ++cs.bucket_counts[static_cast<size_t>(b)];
    }
  }
  return stats;
}

}  // namespace seq
