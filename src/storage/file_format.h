#ifndef SEQ_STORAGE_FILE_FORMAT_H_
#define SEQ_STORAGE_FILE_FORMAT_H_

#include <string>

#include "common/result.h"
#include "storage/base_sequence.h"

namespace seq {

/// Binary persistence of base sequences: a little-endian single-file
/// format carrying the schema, the declared span, the access-cost
/// parameters, the page layout and all records.
///
///   magic "SEQ1"
///   u32 records_per_page | f64 page_cost | f64 probe_cost | u8 clustered
///   i64 span_start | i64 span_end
///   u32 num_fields { u32 name_len, bytes, u8 type }*
///   u64 num_records { i64 pos, values per schema }*
/// Values: int64 → i64, double → f64, bool → u8, string → u32 len + bytes.
///
/// Readers validate the magic, type tags and string lengths and fail with
/// InvalidArgument on malformed input rather than crashing.

Status SaveSequence(const BaseSequenceStore& store, const std::string& path);

Result<BaseSequencePtr> LoadSequence(const std::string& path);

}  // namespace seq

#endif  // SEQ_STORAGE_FILE_FORMAT_H_
