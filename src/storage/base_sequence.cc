#include "storage/base_sequence.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace seq {

BaseSequenceStore::BaseSequenceStore(SchemaPtr schema, int records_per_page,
                                     AccessCosts costs)
    : schema_(std::move(schema)),
      records_per_page_(records_per_page),
      costs_(costs) {
  SEQ_CHECK(schema_ != nullptr);
  SEQ_CHECK_MSG(records_per_page_ > 0, "records_per_page must be positive");
}

Status BaseSequenceStore::Append(Position pos, Record rec) {
  if (!records_.empty() && pos <= records_.back().pos) {
    return Status::InvalidArgument(
        "records must be appended in strictly increasing position order "
        "(got " +
        std::to_string(pos) + " after " +
        std::to_string(records_.back().pos) + ")");
  }
  if (!RecordMatchesSchema(rec, *schema_)) {
    return Status::TypeError("record does not match schema " +
                             schema_->ToString());
  }
  records_.push_back(PosRecord{pos, std::move(rec)});
  if (!span_declared_) {
    span_ = Span::Of(records_.front().pos, records_.back().pos);
  } else if (!span_.Contains(pos)) {
    return Status::OutOfRange("appended position " + std::to_string(pos) +
                              " outside declared span " + span_.ToString());
  }
  stats_fresh_ = false;
  return Status::OK();
}

Result<std::shared_ptr<BaseSequenceStore>> BaseSequenceStore::FromRecords(
    SchemaPtr schema, std::vector<PosRecord> records, int records_per_page,
    AccessCosts costs) {
  auto store = std::make_shared<BaseSequenceStore>(std::move(schema),
                                                   records_per_page, costs);
  for (PosRecord& pr : records) {
    SEQ_RETURN_IF_ERROR(store->Append(pr.pos, std::move(pr.rec)));
  }
  return store;
}

Status BaseSequenceStore::DeclareSpan(Span span) {
  if (!records_.empty()) {
    Span hull = Span::Of(records_.front().pos, records_.back().pos);
    if (span.Intersect(hull) != hull) {
      return Status::InvalidArgument("declared span " + span.ToString() +
                                     " does not cover stored records " +
                                     hull.ToString());
    }
  }
  span_ = span;
  span_declared_ = true;
  return Status::OK();
}

double BaseSequenceStore::density() const {
  if (span_.IsEmpty() || records_.empty()) return 0.0;
  if (span_.IsUnbounded()) return 0.0;
  return static_cast<double>(records_.size()) /
         static_cast<double>(span_.Length());
}

int64_t BaseSequenceStore::num_pages() const {
  return (num_records() + records_per_page_ - 1) / records_per_page_;
}

const std::vector<ColumnStats>& BaseSequenceStore::column_stats() const {
  if (!stats_fresh_) {
    column_stats_ = ComputeColumnStats(records_, *schema_);
    stats_fresh_ = true;
  }
  return column_stats_;
}

size_t BaseSequenceStore::LowerBound(Position pos) const {
  return static_cast<size_t>(
      std::lower_bound(records_.begin(), records_.end(), pos,
                       [](const PosRecord& pr, Position p) {
                         return pr.pos < p;
                       }) -
      records_.begin());
}

BaseSequenceStore::StreamCursor BaseSequenceStore::OpenStream(
    Span range, AccessStats* stats) const {
  Span effective = range.Intersect(span_);
  if (effective.IsEmpty()) {
    return StreamCursor(this, 0, 0, stats);
  }
  size_t begin = LowerBound(effective.start);
  size_t end = LowerBound(effective.end + 1);
  return StreamCursor(this, begin, end, stats);
}

BaseSequenceStore::StreamCursor BaseSequenceStore::OpenStreamResumed(
    Span range, Position covered_from, AccessStats* stats) const {
  StreamCursor cursor = OpenStream(range, stats);
  // If the record just before this cursor's first was streamed by the
  // preceding cursor (its position is inside the covered prefix), that
  // record's page has been charged already: seed last_page_ with it so a
  // shared page boundary is not paid twice. Unclustered layouts charge per
  // record, so the seeded page never matches the first record's and the
  // behavior is unchanged there.
  if (cursor.index_ > 0 && cursor.index_ < cursor.end_ &&
      records_[cursor.index_ - 1].pos >= covered_from) {
    const int64_t prev = static_cast<int64_t>(cursor.index_) - 1;
    cursor.last_page_ = costs_.clustered ? prev / records_per_page_ : prev;
  }
  return cursor;
}

std::optional<PosRecord> BaseSequenceStore::StreamCursor::Next() {
  if (index_ >= end_) return std::nullopt;
  const PosRecord& pr = store_->records_[index_];
  // Unclustered layouts pay one page fetch per record (§3.4 fn. 8).
  int64_t page = store_->costs_.clustered
                     ? static_cast<int64_t>(index_) /
                           store_->records_per_page_
                     : static_cast<int64_t>(index_);
  ++index_;
  if (stats_ != nullptr) {
    ++stats_->stream_records;
    if (page != last_page_) {
      ++stats_->stream_pages;
      stats_->simulated_cost += store_->costs_.page_cost;
    }
  }
  last_page_ = page;
  return pr;
}

size_t BaseSequenceStore::StreamCursor::FillBatch(RecordBatch* out) {
  out->Clear();
  if (stats_ == nullptr) {
    // No accounting requested for this cursor's lifetime: skip the page
    // bookkeeping entirely (last_page_ is only read when charging).
    const std::vector<PosRecord>& records = store_->records_;
    while (!out->full() && index_ < end_) {
      const PosRecord& pr = records[index_];
      ++index_;
      AssignRecord(out->Append(pr.pos), pr.rec);
    }
    return out->size();
  }
  const bool clustered = store_->costs_.clustered;
  const int64_t rpp = store_->records_per_page_;
  while (!out->full() && index_ < end_) {
    const PosRecord& pr = store_->records_[index_];
    int64_t page = clustered ? static_cast<int64_t>(index_) / rpp
                             : static_cast<int64_t>(index_);
    ++index_;
    ++stats_->stream_records;
    if (page != last_page_) {
      ++stats_->stream_pages;
      stats_->simulated_cost += store_->costs_.page_cost;
    }
    last_page_ = page;
    AssignRecord(out->Append(pr.pos), pr.rec);
  }
  return out->size();
}

size_t BaseSequenceStore::StreamCursor::FillBatchUpTo(Position limit,
                                                      RecordBatch* out) {
  out->Clear();
  const bool clustered = store_->costs_.clustered;
  const int64_t rpp = store_->records_per_page_;
  while (!out->full() && index_ < end_) {
    const PosRecord& pr = store_->records_[index_];
    int64_t page = clustered ? static_cast<int64_t>(index_) / rpp
                             : static_cast<int64_t>(index_);
    ++index_;
    if (stats_ != nullptr) {
      ++stats_->stream_records;
      if (page != last_page_) {
        ++stats_->stream_pages;
        stats_->simulated_cost += store_->costs_.page_cost;
      }
    }
    last_page_ = page;
    AssignRecord(out->Append(pr.pos), pr.rec);
    if (pr.pos > limit) break;  // overshoot included, then stop
  }
  return out->size();
}

std::optional<Position> BaseSequenceStore::StreamCursor::PeekPosition() const {
  if (index_ >= end_) return std::nullopt;
  return store_->records_[index_].pos;
}

std::optional<Record> BaseSequenceStore::Probe(Position pos,
                                               AccessStats* stats) const {
  if (stats != nullptr) {
    ++stats->probes;
    ++stats->probe_pages;
    stats->simulated_cost += costs_.probe_cost;
  }
  if (!span_.Contains(pos)) return std::nullopt;
  size_t idx = LowerBound(pos);
  if (idx < records_.size() && records_[idx].pos == pos) {
    return records_[idx].rec;
  }
  return std::nullopt;
}

std::string BaseSequenceStore::DescribeMeta() const {
  std::ostringstream oss;
  oss << "span=" << span_.ToString() << " records=" << num_records()
      << " density=" << density() << " pages=" << num_pages();
  return oss.str();
}

}  // namespace seq
