#ifndef SEQ_STORAGE_ACCESS_STATS_H_
#define SEQ_STORAGE_ACCESS_STATS_H_

#include <cstdint>
#include <string>

namespace seq {

/// Operation counters charged by the storage layer and the execution
/// engine. These are the simulator's observable "cost": tests and
/// benchmarks assert the paper's shape claims (single scan, O(1) cache,
/// strategy crossovers) against them, and the cost-model validation
/// experiment correlates them with optimizer estimates.
struct AccessStats {
  // Storage access paths.
  int64_t stream_records = 0;  ///< records delivered by stream cursors
  int64_t stream_pages = 0;    ///< distinct pages touched by stream access
  int64_t probes = 0;          ///< positional probe operations
  int64_t probe_pages = 0;     ///< pages touched by probes

  // Operator caches (§3.5).
  int64_t cache_stores = 0;  ///< records inserted into operator caches
  int64_t cache_hits = 0;    ///< records served from operator caches

  // Computation.
  int64_t predicate_evals = 0;  ///< join/selection predicate applications
  int64_t agg_steps = 0;        ///< aggregate accumulator updates
  int64_t records_output = 0;   ///< records delivered at the query root

  /// Abstract cost units accumulated using the same per-operation prices
  /// the optimizer estimates with; comparable against plan cost estimates.
  double simulated_cost = 0.0;

  void Reset() { *this = AccessStats{}; }

  /// Folds another counter block into this one. Morsel-parallel execution
  /// gives every worker a private AccessStats (no atomics on the charge
  /// path) and merges them in morsel order at the barrier, so totals are
  /// deterministic and equal to a serial run's.
  AccessStats& Merge(const AccessStats& other) { return *this += other; }

  AccessStats& operator+=(const AccessStats& other) {
    stream_records += other.stream_records;
    stream_pages += other.stream_pages;
    probes += other.probes;
    probe_pages += other.probe_pages;
    cache_stores += other.cache_stores;
    cache_hits += other.cache_hits;
    predicate_evals += other.predicate_evals;
    agg_steps += other.agg_steps;
    records_output += other.records_output;
    simulated_cost += other.simulated_cost;
    return *this;
  }

  std::string ToString() const;
};

}  // namespace seq

#endif  // SEQ_STORAGE_ACCESS_STATS_H_
