#ifndef SEQ_STORAGE_BASE_SEQUENCE_H_
#define SEQ_STORAGE_BASE_SEQUENCE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/access_stats.h"
#include "storage/statistics.h"
#include "types/record.h"
#include "types/schema.h"
#include "types/span.h"

namespace seq {

/// Simulated per-access-path prices of a stored sequence (paper §3:
/// "available access paths to base sequences, and the costs of access
/// along these paths"). Units are abstract; defaults model a clustered
/// sequential file plus a positional index.
struct AccessCosts {
  double page_cost = 10.0;   ///< cost of streaming one page
  double probe_cost = 12.0;  ///< cost of one positional probe (index descent)

  /// Whether the physical layout is clustered by position (§3.4, fn. 8:
  /// "a relation with an unclustered index on a position attribute does
  /// not particularly favor stream access"). Unclustered stores charge a
  /// page fetch per *record* streamed, so probed plans win more often.
  bool clustered = true;
};

/// A materialized base sequence (paper §2: "an explicit materialized
/// association of positions with records"). Records are stored sorted by
/// position and grouped into fixed-capacity pages; the two access paths the
/// paper reasons about are exposed directly:
///
///  * stream access — "get the next non-Null record", in position order,
///    charging `page_cost` per page entered;
///  * probed access — "get the record at a specific position", charging
///    `probe_cost` per call.
///
/// Every access is counted into the caller-provided AccessStats so tests
/// and benchmarks can observe exactly what a plan touched.
class BaseSequenceStore {
 public:
  /// `records_per_page` controls the page layout of the simulated file.
  explicit BaseSequenceStore(SchemaPtr schema, int records_per_page = 64,
                             AccessCosts costs = AccessCosts{});

  BaseSequenceStore(BaseSequenceStore&&) = default;
  BaseSequenceStore& operator=(BaseSequenceStore&&) = default;
  BaseSequenceStore(const BaseSequenceStore&) = delete;
  BaseSequenceStore& operator=(const BaseSequenceStore&) = delete;

  /// Appends a record at `pos`, which must exceed the last stored position
  /// and match the schema.
  Status Append(Position pos, Record rec);

  /// Builds a store from position-sorted records.
  static Result<std::shared_ptr<BaseSequenceStore>> FromRecords(
      SchemaPtr schema, std::vector<PosRecord> records,
      int records_per_page = 64, AccessCosts costs = AccessCosts{});

  /// Declares the valid range of the sequence. By default the span is the
  /// hull of the stored positions; workloads with known ranges (Table 1)
  /// can widen it (positions without records are empty positions).
  Status DeclareSpan(Span span);

  const SchemaPtr& schema() const { return schema_; }
  Span span() const { return span_; }
  int64_t num_records() const { return static_cast<int64_t>(records_.size()); }

  /// Fraction of positions in the span holding non-null records (§3).
  double density() const;

  int records_per_page() const { return records_per_page_; }
  int64_t num_pages() const;
  const AccessCosts& costs() const { return costs_; }
  void set_costs(AccessCosts costs) { costs_ = costs; }

  /// Per-column statistics; computed on first use after the last Append.
  const std::vector<ColumnStats>& column_stats() const;

  /// Stream access path: yields non-null records with positions inside
  /// `range`, in increasing position order.
  class StreamCursor {
   public:
    /// Next record, or nullopt at end of range.
    std::optional<PosRecord> Next();

    /// Batch access: fills `out` with the next up-to-capacity records,
    /// charging exactly what the same sequence of Next() calls would
    /// (one stream_record each, page costs on page boundaries). Records
    /// are copied into the batch's reusable slots. Returns the row count;
    /// 0 at end of range.
    size_t FillBatch(RecordBatch* out);

    /// Bounded batch access with include-overshoot semantics (see
    /// SeqOp::NextBatchUpTo): fills `out` with records at positions
    /// <= `limit` and stops after the first record past `limit`, which is
    /// included as the last row. Charges exactly what the same sequence
    /// of Next() calls would.
    size_t FillBatchUpTo(Position limit, RecordBatch* out);

    /// Position of the next record without consuming or charging.
    std::optional<Position> PeekPosition() const;

   private:
    friend class BaseSequenceStore;
    StreamCursor(const BaseSequenceStore* store, size_t index, size_t end,
                 AccessStats* stats)
        : store_(store), index_(index), end_(end), stats_(stats) {}

    const BaseSequenceStore* store_;
    size_t index_;
    size_t end_;    // one past the last record in range
    int64_t last_page_ = -1;
    AccessStats* stats_;
  };

  StreamCursor OpenStream(Span range, AccessStats* stats) const;

  /// Stream access resuming a scan another cursor carried up to the start
  /// of `range`: positions in [covered_from, range.start) were streamed by
  /// a preceding cursor (a preceding morsel's scan), so the page holding
  /// the last record before `range` counts as already fetched and is not
  /// charged again when this cursor's first record shares it. With the
  /// cursors' ranges tiling [covered_from, range.end], total page charges
  /// equal one serial scan of the whole tile.
  StreamCursor OpenStreamResumed(Span range, Position covered_from,
                                 AccessStats* stats) const;

  /// Probed access path: the record at exactly `pos`, or nullopt if that
  /// position is empty or outside the span.
  std::optional<Record> Probe(Position pos, AccessStats* stats) const;

  /// Direct (uncharged) access for tests and result comparison.
  const std::vector<PosRecord>& records() const { return records_; }

  std::string DescribeMeta() const;

 private:
  // Index of the first stored record with position >= pos.
  size_t LowerBound(Position pos) const;

  SchemaPtr schema_;
  std::vector<PosRecord> records_;  // sorted by position
  Span span_ = Span::Empty();
  bool span_declared_ = false;
  int records_per_page_;
  AccessCosts costs_;

  mutable std::vector<ColumnStats> column_stats_;
  mutable bool stats_fresh_ = false;
};

using BaseSequencePtr = std::shared_ptr<BaseSequenceStore>;

}  // namespace seq

#endif  // SEQ_STORAGE_BASE_SEQUENCE_H_
