#include "storage/checkpoint_file.h"

#include <cstring>
#include <fstream>
#include <sstream>

#include "types/value.h"

namespace seq {
namespace {

constexpr char kMagic[8] = {'S', 'E', 'Q', 'C', 'K', 'P', 'T', '1'};
constexpr uint32_t kFormatVersion = 1;
constexpr uint32_t kMaxStringLen = 1u << 20;
constexpr uint64_t kMaxListLen = 1u << 26;
constexpr uint32_t kMaxRowValues = 1u << 10;
constexpr uint64_t kMaxOpStateLen = 1u << 28;

uint64_t Fnv1a64(const char* data, size_t n) {
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

template <typename T>
void WritePod(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

void WriteString(std::ostream& out, const std::string& s) {
  WritePod<uint32_t>(out, static_cast<uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

template <typename T>
bool ReadPod(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

bool ReadString(std::istream& in, std::string* s) {
  uint32_t len = 0;
  if (!ReadPod(in, &len) || len > kMaxStringLen) return false;
  s->resize(len);
  in.read(s->data(), len);
  return static_cast<bool>(in);
}

void WriteValue(std::ostream& out, const Value& v) {
  WritePod<uint8_t>(out, static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case TypeId::kInt64:
      WritePod<int64_t>(out, v.int64());
      break;
    case TypeId::kDouble:
      WritePod<double>(out, v.dbl());
      break;
    case TypeId::kBool:
      WritePod<uint8_t>(out, v.boolean() ? 1 : 0);
      break;
    case TypeId::kString:
      WriteString(out, v.str());
      break;
  }
}

bool ReadValue(std::istream& in, Value* out) {
  uint8_t tag = 0;
  if (!ReadPod(in, &tag) || tag > static_cast<uint8_t>(TypeId::kString)) {
    return false;
  }
  switch (static_cast<TypeId>(tag)) {
    case TypeId::kInt64: {
      int64_t v;
      if (!ReadPod(in, &v)) return false;
      *out = Value::Int64(v);
      return true;
    }
    case TypeId::kDouble: {
      double v;
      if (!ReadPod(in, &v)) return false;
      *out = Value::Double(v);
      return true;
    }
    case TypeId::kBool: {
      uint8_t v;
      if (!ReadPod(in, &v)) return false;
      *out = Value::Bool(v != 0);
      return true;
    }
    case TypeId::kString: {
      std::string v;
      if (!ReadString(in, &v)) return false;
      *out = Value::String(std::move(v));
      return true;
    }
  }
  return false;
}

std::string SerializeBody(const CheckpointImage& image) {
  std::ostringstream body(std::ios::binary);
  WritePod<uint64_t>(body, image.catalog_version);
  WriteString(body, image.options_fingerprint);
  WriteString(body, image.plan_signature);
  WriteString(body, image.query_text);
  WritePod<uint8_t>(body, image.probed ? 1 : 0);
  WritePod<uint8_t>(body, image.has_range ? 1 : 0);
  WritePod<int64_t>(body, image.span_start);
  WritePod<int64_t>(body, image.span_end);
  WritePod<uint64_t>(body, static_cast<uint64_t>(image.positions.size()));
  for (int64_t p : image.positions) WritePod<int64_t>(body, p);
  WriteString(body, image.position_sequence);
  WritePod<int64_t>(body, image.watermark);
  WritePod<int64_t>(body, image.next_index);
  WritePod<int64_t>(body, image.chunks_done);
  WritePod<int64_t>(body, image.chunk_len);
  WritePod<int64_t>(body, image.stats.stream_records);
  WritePod<int64_t>(body, image.stats.stream_pages);
  WritePod<int64_t>(body, image.stats.probes);
  WritePod<int64_t>(body, image.stats.probe_pages);
  WritePod<int64_t>(body, image.stats.cache_stores);
  WritePod<int64_t>(body, image.stats.cache_hits);
  WritePod<int64_t>(body, image.stats.predicate_evals);
  WritePod<int64_t>(body, image.stats.agg_steps);
  WritePod<int64_t>(body, image.stats.records_output);
  WritePod<double>(body, image.stats.simulated_cost);
  WritePod<uint64_t>(body, static_cast<uint64_t>(image.rows.size()));
  for (const PosRecord& pr : image.rows) {
    WritePod<int64_t>(body, pr.pos);
    WritePod<uint32_t>(body, static_cast<uint32_t>(pr.rec.size()));
    for (const Value& v : pr.rec) WriteValue(body, v);
  }
  WritePod<uint64_t>(body, static_cast<uint64_t>(image.op_state.size()));
  body.write(image.op_state.data(),
             static_cast<std::streamsize>(image.op_state.size()));
  return body.str();
}

Status Torn(const std::string& path, const char* what) {
  return Status::DataLoss("checkpoint '" + path + "': " + what);
}

}  // namespace

Status SaveCheckpoint(const CheckpointImage& image, const std::string& path,
                      const std::function<Status()>& fault) {
  std::string body = SerializeBody(image);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot open checkpoint '" + path +
                                   "' for writing");
  }
  out.write(kMagic, sizeof(kMagic));
  WritePod<uint32_t>(out, kFormatVersion);
  WritePod<uint64_t>(out, Fnv1a64(body.data(), body.size()));
  WritePod<uint64_t>(out, static_cast<uint64_t>(body.size()));
  if (fault) {
    Status injected = fault();
    if (!injected.ok()) {
      // Model a torn write faithfully: half the body reaches disk, then
      // the failure. A later LoadCheckpoint of this file must fail closed
      // (size/checksum mismatch -> DataLoss), never resume wrong rows.
      out.write(body.data(), static_cast<std::streamsize>(body.size() / 2));
      out.flush();
      return injected;
    }
  }
  out.write(body.data(), static_cast<std::streamsize>(body.size()));
  out.flush();
  if (!out) {
    return Status::DataLoss("write to checkpoint '" + path + "' failed");
  }
  return Status::OK();
}

Result<CheckpointImage> LoadCheckpoint(const std::string& path,
                                       const std::function<Status()>& fault) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open checkpoint '" + path + "'");
  }
  if (fault) {
    Status injected = fault();
    if (!injected.ok()) return injected;
  }
  char magic[sizeof(kMagic)];
  in.read(magic, sizeof(kMagic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("'" + path + "' is not a SEQCKPT1 file");
  }
  uint32_t version = 0;
  uint64_t checksum = 0;
  uint64_t body_size = 0;
  if (!ReadPod(in, &version) || !ReadPod(in, &checksum) ||
      !ReadPod(in, &body_size)) {
    return Torn(path, "truncated header");
  }
  if (version != kFormatVersion) {
    return Status::FailedPrecondition(
        "checkpoint '" + path + "': format version " +
        std::to_string(version) + " not supported (expected " +
        std::to_string(kFormatVersion) + ")");
  }
  if (body_size > (kMaxOpStateLen + (kMaxListLen * 16))) {
    return Torn(path, "implausible body size");
  }
  std::string body(body_size, '\0');
  in.read(body.data(), static_cast<std::streamsize>(body_size));
  if (!in || static_cast<uint64_t>(in.gcount()) != body_size) {
    return Torn(path, "truncated body (torn write?)");
  }
  if (Fnv1a64(body.data(), body.size()) != checksum) {
    return Torn(path, "body checksum mismatch (corrupt or torn write)");
  }
  std::istringstream bin(body, std::ios::binary);
  CheckpointImage image;
  uint8_t probed = 0;
  uint8_t has_range = 0;
  uint64_t n_positions = 0;
  if (!ReadPod(bin, &image.catalog_version) ||
      !ReadString(bin, &image.options_fingerprint) ||
      !ReadString(bin, &image.plan_signature) ||
      !ReadString(bin, &image.query_text) || !ReadPod(bin, &probed) ||
      !ReadPod(bin, &has_range) || !ReadPod(bin, &image.span_start) ||
      !ReadPod(bin, &image.span_end) || !ReadPod(bin, &n_positions) ||
      n_positions > kMaxListLen) {
    return Torn(path, "corrupt query section");
  }
  image.probed = probed != 0;
  image.has_range = has_range != 0;
  image.positions.reserve(n_positions);
  for (uint64_t i = 0; i < n_positions; ++i) {
    int64_t p = 0;
    if (!ReadPod(bin, &p)) return Torn(path, "truncated position list");
    image.positions.push_back(p);
  }
  if (!ReadString(bin, &image.position_sequence)) {
    return Torn(path, "corrupt position-sequence name");
  }
  if (!ReadPod(bin, &image.watermark) || !ReadPod(bin, &image.next_index) ||
      !ReadPod(bin, &image.chunks_done) || !ReadPod(bin, &image.chunk_len) ||
      !ReadPod(bin, &image.stats.stream_records) ||
      !ReadPod(bin, &image.stats.stream_pages) ||
      !ReadPod(bin, &image.stats.probes) ||
      !ReadPod(bin, &image.stats.probe_pages) ||
      !ReadPod(bin, &image.stats.cache_stores) ||
      !ReadPod(bin, &image.stats.cache_hits) ||
      !ReadPod(bin, &image.stats.predicate_evals) ||
      !ReadPod(bin, &image.stats.agg_steps) ||
      !ReadPod(bin, &image.stats.records_output) ||
      !ReadPod(bin, &image.stats.simulated_cost)) {
    return Torn(path, "corrupt resume-point section");
  }
  uint64_t n_rows = 0;
  if (!ReadPod(bin, &n_rows) || n_rows > kMaxListLen) {
    return Torn(path, "corrupt row count");
  }
  image.rows.reserve(n_rows);
  for (uint64_t r = 0; r < n_rows; ++r) {
    PosRecord pr;
    uint32_t n_values = 0;
    if (!ReadPod(bin, &pr.pos) || !ReadPod(bin, &n_values) ||
        n_values > kMaxRowValues) {
      return Torn(path, "corrupt row header");
    }
    pr.rec.reserve(n_values);
    for (uint32_t v = 0; v < n_values; ++v) {
      Value value;
      if (!ReadValue(bin, &value)) return Torn(path, "corrupt row value");
      pr.rec.push_back(std::move(value));
    }
    image.rows.push_back(std::move(pr));
  }
  uint64_t op_state_len = 0;
  if (!ReadPod(bin, &op_state_len) || op_state_len > kMaxOpStateLen) {
    return Torn(path, "corrupt operator-state length");
  }
  image.op_state.resize(op_state_len);
  bin.read(image.op_state.data(),
           static_cast<std::streamsize>(op_state_len));
  if (!bin || static_cast<uint64_t>(bin.gcount()) != op_state_len) {
    return Torn(path, "truncated operator state");
  }
  return image;
}

}  // namespace seq
