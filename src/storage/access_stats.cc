#include "storage/access_stats.h"

#include <sstream>

#include "common/string_util.h"

namespace seq {

// Guards against fields added without extending operator+= and ToString():
// 9 int64 counters + 1 double, no padding. If this fires, update Reset is
// fine (it reassigns), but operator+=, ToString() below, and the coverage
// test in tests/obs_test.cc must learn the new field.
static_assert(sizeof(AccessStats) == 9 * sizeof(int64_t) + sizeof(double),
              "AccessStats changed size: extend operator+= and ToString() "
              "for the new field, then adjust this assert");

std::string AccessStats::ToString() const {
  std::ostringstream oss;
  oss << "stream_records=" << stream_records
      << " stream_pages=" << stream_pages << " probes=" << probes
      << " probe_pages=" << probe_pages << " cache_stores=" << cache_stores
      << " cache_hits=" << cache_hits << " predicate_evals=" << predicate_evals
      << " agg_steps=" << agg_steps << " records_output=" << records_output
      << " simulated_cost=" << FormatDouble(simulated_cost);
  return oss.str();
}

}  // namespace seq
