#include "storage/access_stats.h"

#include <sstream>

#include "common/string_util.h"

namespace seq {

std::string AccessStats::ToString() const {
  std::ostringstream oss;
  oss << "stream_records=" << stream_records
      << " stream_pages=" << stream_pages << " probes=" << probes
      << " probe_pages=" << probe_pages << " cache_stores=" << cache_stores
      << " cache_hits=" << cache_hits << " predicate_evals=" << predicate_evals
      << " agg_steps=" << agg_steps << " records_output=" << records_output
      << " simulated_cost=" << FormatDouble(simulated_cost);
  return oss.str();
}

}  // namespace seq
