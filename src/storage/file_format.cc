#include "storage/file_format.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <set>

namespace seq {
namespace {

constexpr char kMagic[4] = {'S', 'E', 'Q', '1'};
constexpr uint32_t kMaxStringLen = 1u << 20;
constexpr uint32_t kMaxFields = 1u << 10;
constexpr uint32_t kMaxRecordsPerPage = 1u << 20;

template <typename T>
void WritePod(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

void WriteString(std::ostream& out, const std::string& s) {
  WritePod<uint32_t>(out, static_cast<uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

template <typename T>
bool ReadPod(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

bool ReadString(std::istream& in, std::string* s) {
  uint32_t len = 0;
  if (!ReadPod(in, &len) || len > kMaxStringLen) return false;
  s->resize(len);
  in.read(s->data(), len);
  return static_cast<bool>(in);
}

}  // namespace

Status SaveSequence(const BaseSequenceStore& store, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot open '" + path + "' for writing");
  }
  out.write(kMagic, 4);
  WritePod<uint32_t>(out, static_cast<uint32_t>(store.records_per_page()));
  WritePod<double>(out, store.costs().page_cost);
  WritePod<double>(out, store.costs().probe_cost);
  WritePod<uint8_t>(out, store.costs().clustered ? 1 : 0);
  WritePod<int64_t>(out, store.span().start);
  WritePod<int64_t>(out, store.span().end);
  const Schema& schema = *store.schema();
  WritePod<uint32_t>(out, static_cast<uint32_t>(schema.num_fields()));
  for (const Field& f : schema.fields()) {
    WriteString(out, f.name);
    WritePod<uint8_t>(out, static_cast<uint8_t>(f.type));
  }
  WritePod<uint64_t>(out, static_cast<uint64_t>(store.num_records()));
  for (const PosRecord& pr : store.records()) {
    WritePod<int64_t>(out, pr.pos);
    for (const Value& v : pr.rec) {
      switch (v.type()) {
        case TypeId::kInt64:
          WritePod<int64_t>(out, v.int64());
          break;
        case TypeId::kDouble:
          WritePod<double>(out, v.dbl());
          break;
        case TypeId::kBool:
          WritePod<uint8_t>(out, v.boolean() ? 1 : 0);
          break;
        case TypeId::kString:
          WriteString(out, v.str());
          break;
      }
    }
  }
  out.flush();
  if (!out) {
    return Status::Internal("write to '" + path + "' failed");
  }
  return Status::OK();
}

Result<BaseSequencePtr> LoadSequence(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  char magic[4];
  in.read(magic, 4);
  if (!in || std::memcmp(magic, kMagic, 4) != 0) {
    return Status::InvalidArgument("'" + path + "' is not a SEQ1 file");
  }
  uint32_t records_per_page = 0;
  AccessCosts costs;
  uint8_t clustered = 1;
  int64_t span_start = 0;
  int64_t span_end = 0;
  if (!ReadPod(in, &records_per_page) || records_per_page == 0 ||
      !ReadPod(in, &costs.page_cost) || !ReadPod(in, &costs.probe_cost) ||
      !ReadPod(in, &clustered) || !ReadPod(in, &span_start) ||
      !ReadPod(in, &span_end)) {
    return Status::DataLoss("'" + path + "': truncated header");
  }
  // The store takes records_per_page as a positive int; a corrupt value
  // above INT_MAX would otherwise wrap negative and trip its invariant
  // check (an abort — never acceptable on file input).
  if (records_per_page > kMaxRecordsPerPage) {
    return Status::DataLoss("'" + path + "': implausible records_per_page " +
                            std::to_string(records_per_page));
  }
  costs.clustered = clustered != 0;
  uint32_t num_fields = 0;
  if (!ReadPod(in, &num_fields) || num_fields == 0 ||
      num_fields > kMaxFields) {
    return Status::DataLoss("'" + path + "': bad field count");
  }
  std::vector<Field> fields;
  fields.reserve(num_fields);
  std::set<std::string> names;
  for (uint32_t i = 0; i < num_fields; ++i) {
    Field f;
    uint8_t type = 0;
    if (!ReadString(in, &f.name) || !ReadPod(in, &type) ||
        type > static_cast<uint8_t>(TypeId::kString)) {
      return Status::DataLoss("'" + path + "': bad field header");
    }
    // Schema::Make treats duplicate names as a programming error (abort);
    // reject them here so a corrupt file cannot reach it.
    if (!names.insert(f.name).second) {
      return Status::DataLoss("'" + path + "': duplicate field name '" +
                              f.name + "'");
    }
    f.type = static_cast<TypeId>(type);
    fields.push_back(std::move(f));
  }
  SchemaPtr schema = Schema::Make(std::move(fields));
  auto store = std::make_shared<BaseSequenceStore>(
      schema, static_cast<int>(records_per_page), costs);
  uint64_t num_records = 0;
  if (!ReadPod(in, &num_records)) {
    return Status::DataLoss("'" + path + "': truncated record count");
  }
  for (uint64_t r = 0; r < num_records; ++r) {
    int64_t pos = 0;
    if (!ReadPod(in, &pos)) {
      return Status::DataLoss("'" + path + "': truncated records");
    }
    Record rec;
    rec.reserve(schema->num_fields());
    for (const Field& f : schema->fields()) {
      switch (f.type) {
        case TypeId::kInt64: {
          int64_t v;
          if (!ReadPod(in, &v)) {
            return Status::DataLoss("'" + path + "': truncated value");
          }
          rec.push_back(Value::Int64(v));
          break;
        }
        case TypeId::kDouble: {
          double v;
          if (!ReadPod(in, &v)) {
            return Status::DataLoss("'" + path + "': truncated value");
          }
          rec.push_back(Value::Double(v));
          break;
        }
        case TypeId::kBool: {
          uint8_t v;
          if (!ReadPod(in, &v)) {
            return Status::DataLoss("'" + path + "': truncated value");
          }
          rec.push_back(Value::Bool(v != 0));
          break;
        }
        case TypeId::kString: {
          std::string v;
          if (!ReadString(in, &v)) {
            return Status::DataLoss("'" + path + "': truncated value");
          }
          rec.push_back(Value::String(std::move(v)));
          break;
        }
      }
    }
    SEQ_RETURN_IF_ERROR(store->Append(pos, std::move(rec)));
  }
  if (!Span::Of(span_start, span_end).IsEmpty()) {
    SEQ_RETURN_IF_ERROR(store->DeclareSpan(Span::Of(span_start, span_end)));
  }
  return store;
}

}  // namespace seq
