#ifndef SEQ_STORAGE_CHECKPOINT_FILE_H_
#define SEQ_STORAGE_CHECKPOINT_FILE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/access_stats.h"
#include "types/record.h"

namespace seq {

/// Everything needed to resume a suspended query in this or another
/// process: the validity tuple that proves the checkpoint still matches
/// the engine it is handed to, the logical query text (re-planned on
/// resume through the normal plan-cache path), the driving range or
/// position list with the resume watermark, the rows and stats already
/// produced, and an opaque operator-state blob (empty = rebuild operator
/// state from scratch via the morsel carry machinery).
struct CheckpointImage {
  // ---- Validity tuple (checked on Resume; mismatch = FailedPrecondition).
  uint64_t catalog_version = 0;
  std::string options_fingerprint;  ///< FingerprintOptimizerOptions
  std::string plan_signature;       ///< ParameterizeQuery shape signature

  // ---- The logical query and its driving access, exactly as the
  // ---- original Query asked it (NOT the resolved output span): Resume
  // ---- reconstructs the Query verbatim so the re-planned signature can
  // ---- match the stored one.
  std::string query_text;  ///< UnparseQuery of the view-inlined graph
  bool probed = false;
  bool has_range = false;  ///< the query carried an explicit range
  int64_t span_start = 0;  ///< that explicit range (has_range only)
  int64_t span_end = 0;
  std::vector<int64_t> positions;   ///< explicit point-position list
  std::string position_sequence;    ///< Fig. 6 Position Sequence name

  // ---- Resume point.
  int64_t watermark = 0;    ///< stream: first position NOT yet covered
  int64_t next_index = 0;   ///< probed: first positions[] index not covered
  int64_t chunks_done = 0;  ///< completed chunk count (diagnostics)
  int64_t chunk_len = 0;    ///< chunk grid length; resume re-derives the
                            ///< exact grid of the interrupted run

  // ---- The prefix already produced before the suspend point.
  AccessStats stats;
  std::vector<PosRecord> rows;

  // ---- Operator state (tagged records framed by OpStateWriter/Reader).
  std::string op_state;
};

/// Persistence of CheckpointImage: a versioned little-endian single-file
/// format with a whole-body FNV-1a checksum.
///
///   magic "SEQCKPT1"
///   u32 format_version | u64 body_checksum | u64 body_size
///   body:
///     u64 catalog_version | str fingerprint | str signature | str query
///     u8 probed | u8 has_range | i64 span_start | i64 span_end
///     u64 n_positions { i64 }* | str position_sequence
///     i64 watermark | i64 next_index | i64 chunks_done | i64 chunk_len
///     stats (9 x i64, f64 simulated_cost)
///     u64 n_rows { i64 pos, u32 n_values { u8 type, payload }* }*
///     u64 op_state_len + bytes
/// Values: int64 -> i64, double -> f64, bool -> u8, string -> u32 len +
/// bytes (self-describing — a checkpoint carries no schema).
///
/// Every read failure — bad magic aside (InvalidArgument), truncation,
/// checksum mismatch, implausible counts — is DataLoss: a torn or corrupt
/// checkpoint must fail closed, never crash or resume with wrong rows.
///
/// `fault` hooks inject failures for robustness testing without a
/// storage->exec dependency: when the hook returns non-OK, SaveCheckpoint
/// truncates the file mid-body (a genuinely torn file stays on disk) and
/// LoadCheckpoint abandons the read; both then return the hook's status.
Status SaveCheckpoint(const CheckpointImage& image, const std::string& path,
                      const std::function<Status()>& fault = {});

Result<CheckpointImage> LoadCheckpoint(
    const std::string& path, const std::function<Status()>& fault = {});

}  // namespace seq

#endif  // SEQ_STORAGE_CHECKPOINT_FILE_H_
