#ifndef SEQ_STORAGE_STATISTICS_H_
#define SEQ_STORAGE_STATISTICS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "types/record.h"
#include "types/schema.h"

namespace seq {

/// Per-column statistics of a base sequence, used by the optimizer for
/// selectivity estimation (paper §3: "distributions of values in the
/// columns ... used to determine the selectivity of predicates").
struct ColumnStats {
  /// Number of equi-width histogram buckets kept for numeric columns.
  static constexpr int kHistogramBuckets = 32;

  int64_t count = 0;  ///< non-null records observed

  /// Numeric range (present for int64/double columns with count > 0).
  std::optional<double> min;
  std::optional<double> max;

  /// Estimated number of distinct values (exact up to an internal cap).
  int64_t distinct = 0;

  /// Equi-width histogram over [min, max] for numeric columns (empty for
  /// non-numeric). bucket_counts.size() == kHistogramBuckets when present.
  std::vector<int64_t> bucket_counts;

  /// Estimated fraction of values strictly below `v`, using the histogram
  /// when available (values inside a bucket are assumed uniform), else
  /// linear interpolation on [min, max]. Returns 0.5 without statistics.
  double FractionBelow(double v) const;

  std::string ToString() const;
};

/// Computes column statistics for all fields over `records`.
std::vector<ColumnStats> ComputeColumnStats(
    const std::vector<PosRecord>& records, const Schema& schema);

}  // namespace seq

#endif  // SEQ_STORAGE_STATISTICS_H_
