#ifndef SEQ_EXPR_COMPILED_EXPR_H_
#define SEQ_EXPR_COMPILED_EXPR_H_

#include <memory>
#include <optional>
#include <vector>

#include "common/result.h"
#include "expr/expr.h"
#include "types/record.h"
#include "types/schema.h"

namespace seq {

/// Reusable evaluation scratch for CompiledExpr's flattened path: one slot
/// pointer and one owned result cell per compiled node. Sized once by
/// InitScratch; evaluation then runs with zero allocations and zero Value
/// temporaries per row (column references and literals are served by
/// pointer, only computed nodes write their inline-numeric results).
struct ExprScratch {
  std::vector<Value> owned;        // results of computed nodes
  std::vector<const Value*> slot;  // value of each node for the current row
};

/// A predicate of the shape `column <cmp> int64-literal` (either operand
/// order; `op` is normalized to put the column on the left). Batch filters
/// recognize this shape and run a specialized compare loop instead of the
/// general flattened evaluator.
struct SimpleIntCmp {
  size_t field_index;
  BinaryOp op;
  int64_t literal;
};

/// An expression tree type-checked and bound against one or two input
/// schemas: column names are resolved to field indices and every node's
/// result type is fixed. Compilation catches all type errors up front so
/// evaluation can run without error paths.
///
/// Evaluation semantics notes:
///  * int64 (op) int64 arithmetic stays int64; any double operand promotes
///    the result to double.
///  * Integer division by zero yields int64 0 (documented simulator
///    behavior; real engines would raise a runtime error). Double division
///    follows IEEE.
class CompiledExpr {
 public:
  /// Binds `expr` against `left` (side 0) and optionally `right` (side 1).
  /// Fails with TypeError/NotFound on bad column references or type
  /// mismatches.
  static Result<CompiledExpr> Compile(const ExprPtr& expr, const Schema& left,
                                      const Schema* right = nullptr);

  /// Like Compile but additionally requires a bool result (predicates).
  static Result<CompiledExpr> CompilePredicate(const ExprPtr& expr,
                                               const Schema& left,
                                               const Schema* right = nullptr);

  TypeId result_type() const { return result_type_; }

  /// Evaluates against the given input records. `right` may be null when
  /// the expression references only side 0. `pos` feeds Position() nodes.
  Value Eval(const Record& left, const Record* right, Position pos) const;

  /// Evaluates a predicate; requires result_type() == kBool.
  bool EvalBool(const Record& left, const Record* right, Position pos) const {
    return Eval(left, right, pos).boolean();
  }

  /// Single-input conveniences.
  Value Eval(const Record& input, Position pos) const {
    return Eval(input, nullptr, pos);
  }
  bool EvalBool(const Record& input, Position pos) const {
    return EvalBool(input, nullptr, pos);
  }

  /// Prepares `scratch` for EvalFlat against this expression: sizes the
  /// register file and binds literal slots once. Must be called after any
  /// assignment to this CompiledExpr and before the first EvalFlat.
  void InitScratch(ExprScratch* scratch) const;

  /// Flattened evaluation: one linear pass over the post-order node array
  /// with an explicit register file — no recursion, no per-row Value
  /// temporaries. Connectives evaluate both sides (no short-circuit);
  /// results are identical because operand evaluation is total and
  /// side-effect free. The returned reference lives in `scratch` (or the
  /// input row) until the next EvalFlat call.
  const Value& EvalFlat(const Record& left, const Record* right,
                        Position pos, ExprScratch* scratch) const;

  bool EvalBoolFlat(const Record& left, const Record* right, Position pos,
                    ExprScratch* scratch) const {
    return EvalFlat(left, right, pos, scratch).boolean();
  }

  /// Single-input flattened conveniences.
  const Value& EvalFlat(const Record& input, Position pos,
                        ExprScratch* scratch) const {
    return EvalFlat(input, nullptr, pos, scratch);
  }
  bool EvalBoolFlat(const Record& input, Position pos,
                    ExprScratch* scratch) const {
    return EvalBoolFlat(input, nullptr, pos, scratch);
  }

  /// Recognizes a whole-predicate `column <cmp> int64-literal` shape
  /// against side 0; nullopt for anything else.
  std::optional<SimpleIntCmp> AsSimpleIntCmp() const;

  /// The original (unbound) expression, for printing.
  const ExprPtr& expr() const { return expr_; }

 private:
  /// Fused operand-type x operator kernels for the flattened path,
  /// selected once at compile time from the operand types. kInt* compare
  /// two int64s directly; kNum* compare after double promotion using the
  /// same ordering as Value::Compare (NaN compares "equal" to everything,
  /// hence the negated forms). kGeneric falls back to the shared
  /// tree-walk helpers.
  enum class BinKernel : uint8_t {
    kGeneric = 0,
    kIntEq, kIntNe, kIntLt, kIntLe, kIntGt, kIntGe,
    kNumEq, kNumNe, kNumLt, kNumLe, kNumGt, kNumGe,
  };

  struct Node {
    ExprKind kind;
    TypeId type;
    // kColumn:
    int side = 0;
    size_t field_index = 0;
    // kLiteral:
    Value literal;
    // kUnary / kBinary:
    UnaryOp unary_op = UnaryOp::kNot;
    BinaryOp binary_op = BinaryOp::kAnd;
    BinKernel kernel = BinKernel::kGeneric;
    int left = -1;   // child indices into nodes_
    int right = -1;
  };

  static BinKernel SelectKernel(BinaryOp op, TypeId lt, TypeId rt);

  static Result<int> CompileNode(const ExprPtr& expr, const Schema& left,
                                 const Schema* right,
                                 std::vector<Node>* nodes);

  Value EvalNode(int idx, const Record& left, const Record* right,
                 Position pos) const;

  static Value EvalUnaryOp(const Node& node, const Value& v);
  static Value EvalBinaryOp(const Node& node, const Value& lv,
                            const Value& rv);

  ExprPtr expr_;
  std::vector<Node> nodes_;  // tree in post-order; root is last
  TypeId result_type_ = TypeId::kBool;
};

}  // namespace seq

#endif  // SEQ_EXPR_COMPILED_EXPR_H_
