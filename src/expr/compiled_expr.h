#ifndef SEQ_EXPR_COMPILED_EXPR_H_
#define SEQ_EXPR_COMPILED_EXPR_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "expr/expr.h"
#include "types/record.h"
#include "types/schema.h"

namespace seq {

/// An expression tree type-checked and bound against one or two input
/// schemas: column names are resolved to field indices and every node's
/// result type is fixed. Compilation catches all type errors up front so
/// evaluation can run without error paths.
///
/// Evaluation semantics notes:
///  * int64 (op) int64 arithmetic stays int64; any double operand promotes
///    the result to double.
///  * Integer division by zero yields int64 0 (documented simulator
///    behavior; real engines would raise a runtime error). Double division
///    follows IEEE.
class CompiledExpr {
 public:
  /// Binds `expr` against `left` (side 0) and optionally `right` (side 1).
  /// Fails with TypeError/NotFound on bad column references or type
  /// mismatches.
  static Result<CompiledExpr> Compile(const ExprPtr& expr, const Schema& left,
                                      const Schema* right = nullptr);

  /// Like Compile but additionally requires a bool result (predicates).
  static Result<CompiledExpr> CompilePredicate(const ExprPtr& expr,
                                               const Schema& left,
                                               const Schema* right = nullptr);

  TypeId result_type() const { return result_type_; }

  /// Evaluates against the given input records. `right` may be null when
  /// the expression references only side 0. `pos` feeds Position() nodes.
  Value Eval(const Record& left, const Record* right, Position pos) const;

  /// Evaluates a predicate; requires result_type() == kBool.
  bool EvalBool(const Record& left, const Record* right, Position pos) const {
    return Eval(left, right, pos).boolean();
  }

  /// Single-input conveniences.
  Value Eval(const Record& input, Position pos) const {
    return Eval(input, nullptr, pos);
  }
  bool EvalBool(const Record& input, Position pos) const {
    return EvalBool(input, nullptr, pos);
  }

  /// The original (unbound) expression, for printing.
  const ExprPtr& expr() const { return expr_; }

 private:
  struct Node {
    ExprKind kind;
    TypeId type;
    // kColumn:
    int side = 0;
    size_t field_index = 0;
    // kLiteral:
    Value literal;
    // kUnary / kBinary:
    UnaryOp unary_op = UnaryOp::kNot;
    BinaryOp binary_op = BinaryOp::kAnd;
    int left = -1;   // child indices into nodes_
    int right = -1;
  };

  static Result<int> CompileNode(const ExprPtr& expr, const Schema& left,
                                 const Schema* right,
                                 std::vector<Node>* nodes);

  Value EvalNode(int idx, const Record& left, const Record* right,
                 Position pos) const;

  ExprPtr expr_;
  std::vector<Node> nodes_;  // tree in post-order; root is last
  TypeId result_type_ = TypeId::kBool;
};

}  // namespace seq

#endif  // SEQ_EXPR_COMPILED_EXPR_H_
