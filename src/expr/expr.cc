#include "expr/expr.h"

#include <sstream>

#include "common/logging.h"

namespace seq {

const char* UnaryOpName(UnaryOp op) {
  switch (op) {
    case UnaryOp::kNot:
      return "not";
    case UnaryOp::kNeg:
      return "-";
    case UnaryOp::kAbs:
      return "abs";
  }
  return "?";
}

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kEq:
      return "==";
    case BinaryOp::kNe:
      return "!=";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "and";
    case BinaryOp::kOr:
      return "or";
  }
  return "?";
}

bool IsComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

bool IsArithmetic(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
      return true;
    default:
      return false;
  }
}

bool IsConnective(BinaryOp op) {
  return op == BinaryOp::kAnd || op == BinaryOp::kOr;
}

ExprPtr Expr::Column(std::string name, int side) {
  SEQ_CHECK(side == 0 || side == 1);
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kColumn;
  e->name_ = std::move(name);
  e->side_ = side;
  return e;
}

ExprPtr Expr::Literal(Value v) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kLiteral;
  e->literal_ = std::move(v);
  return e;
}

ExprPtr Expr::ParamLiteral(Value v, int index) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kLiteral;
  e->literal_ = std::move(v);
  e->param_index_ = index;
  return e;
}

ExprPtr Expr::Position() {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kPosition;
  return e;
}

ExprPtr Expr::Unary(UnaryOp op, ExprPtr operand) {
  SEQ_CHECK(operand != nullptr);
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kUnary;
  e->unary_op_ = op;
  e->left_ = std::move(operand);
  return e;
}

ExprPtr Expr::Binary(BinaryOp op, ExprPtr left, ExprPtr right) {
  SEQ_CHECK(left != nullptr && right != nullptr);
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kBinary;
  e->binary_op_ = op;
  e->left_ = std::move(left);
  e->right_ = std::move(right);
  return e;
}

void Expr::CollectColumns(
    std::vector<std::pair<int, std::string>>* out) const {
  switch (kind_) {
    case ExprKind::kColumn:
      out->emplace_back(side_, name_);
      return;
    case ExprKind::kLiteral:
    case ExprKind::kPosition:
      return;
    case ExprKind::kUnary:
      left_->CollectColumns(out);
      return;
    case ExprKind::kBinary:
      left_->CollectColumns(out);
      right_->CollectColumns(out);
      return;
  }
}

bool Expr::ReferencesOnlySide(int side) const {
  std::vector<std::pair<int, std::string>> cols;
  CollectColumns(&cols);
  for (const auto& [s, name] : cols) {
    if (s != side) return false;
  }
  return true;
}

bool Expr::ReferencesAnyColumn() const {
  std::vector<std::pair<int, std::string>> cols;
  CollectColumns(&cols);
  return !cols.empty();
}

bool Expr::Equals(const Expr& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case ExprKind::kColumn:
      return side_ == other.side_ && name_ == other.name_;
    case ExprKind::kLiteral:
      return literal_.type() == other.literal_.type() &&
             literal_ == other.literal_;
    case ExprKind::kPosition:
      return true;
    case ExprKind::kUnary:
      return unary_op_ == other.unary_op_ && left_->Equals(*other.left_);
    case ExprKind::kBinary:
      return binary_op_ == other.binary_op_ && left_->Equals(*other.left_) &&
             right_->Equals(*other.right_);
  }
  return false;
}

ExprPtr Expr::RenameColumns(
    const std::map<std::string, std::string>& renames) const {
  switch (kind_) {
    case ExprKind::kColumn: {
      auto it = renames.find(name_);
      if (it == renames.end()) return Column(name_, side_);
      return Column(it->second, side_);
    }
    case ExprKind::kLiteral:
      return ParamLiteral(literal_, param_index_);
    case ExprKind::kPosition:
      return Position();
    case ExprKind::kUnary:
      return Unary(unary_op_, left_->RenameColumns(renames));
    case ExprKind::kBinary:
      return Binary(binary_op_, left_->RenameColumns(renames),
                    right_->RenameColumns(renames));
  }
  SEQ_CHECK(false);
  return nullptr;
}

ExprPtr Expr::WithAllSides(int side) const {
  switch (kind_) {
    case ExprKind::kColumn:
      return Column(name_, side);
    case ExprKind::kLiteral:
      return ParamLiteral(literal_, param_index_);
    case ExprKind::kPosition:
      return Position();
    case ExprKind::kUnary:
      return Unary(unary_op_, left_->WithAllSides(side));
    case ExprKind::kBinary:
      return Binary(binary_op_, left_->WithAllSides(side),
                    right_->WithAllSides(side));
  }
  SEQ_CHECK(false);
  return nullptr;
}

ExprPtr Expr::RemapColumns(
    const std::map<std::pair<int, std::string>,
                   std::pair<int, std::string>>& mapping) const {
  switch (kind_) {
    case ExprKind::kColumn: {
      auto it = mapping.find({side_, name_});
      if (it == mapping.end()) return Column(name_, side_);
      return Column(it->second.second, it->second.first);
    }
    case ExprKind::kLiteral:
      return ParamLiteral(literal_, param_index_);
    case ExprKind::kPosition:
      return Position();
    case ExprKind::kUnary:
      return Unary(unary_op_, left_->RemapColumns(mapping));
    case ExprKind::kBinary:
      return Binary(binary_op_, left_->RemapColumns(mapping),
                    right_->RemapColumns(mapping));
  }
  SEQ_CHECK(false);
  return nullptr;
}

bool Expr::ContainsPosition() const {
  switch (kind_) {
    case ExprKind::kPosition:
      return true;
    case ExprKind::kColumn:
    case ExprKind::kLiteral:
      return false;
    case ExprKind::kUnary:
      return left_->ContainsPosition();
    case ExprKind::kBinary:
      return left_->ContainsPosition() || right_->ContainsPosition();
  }
  return false;
}

std::string Expr::ToString() const {
  switch (kind_) {
    case ExprKind::kColumn:
      return side_ == 0 ? name_ : ("$r." + name_);
    case ExprKind::kLiteral:
      return literal_.ToString();
    case ExprKind::kPosition:
      return "pos()";
    case ExprKind::kUnary: {
      std::ostringstream oss;
      oss << UnaryOpName(unary_op_) << "(" << left_->ToString() << ")";
      return oss.str();
    }
    case ExprKind::kBinary: {
      std::ostringstream oss;
      oss << "(" << left_->ToString() << " " << BinaryOpName(binary_op_)
          << " " << right_->ToString() << ")";
      return oss.str();
    }
  }
  return "?";
}

ExprPtr ConjoinAll(const std::vector<ExprPtr>& terms) {
  ExprPtr out;
  for (const ExprPtr& t : terms) {
    if (t == nullptr) continue;
    out = (out == nullptr) ? t : And(out, t);
  }
  return out;
}

void SplitConjuncts(const ExprPtr& pred, std::vector<ExprPtr>* out) {
  if (pred == nullptr) return;
  if (pred->kind() == ExprKind::kBinary &&
      pred->binary_op() == BinaryOp::kAnd) {
    SplitConjuncts(pred->left(), out);
    SplitConjuncts(pred->right(), out);
    return;
  }
  out->push_back(pred);
}

}  // namespace seq
