#ifndef SEQ_EXPR_EXPR_H_
#define SEQ_EXPR_EXPR_H_

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "types/record.h"
#include "types/schema.h"
#include "types/value.h"

namespace seq {

/// Expression node kinds. Expressions appear in selection predicates,
/// compose (positional join) predicates, and computed projections.
enum class ExprKind : uint8_t {
  kColumn,    // reference to an attribute of an input record
  kLiteral,   // constant value
  kPosition,  // the current sequence position, as int64
  kUnary,     // NOT, negate, abs
  kBinary,    // arithmetic / comparison / boolean connectives
};

enum class UnaryOp : uint8_t { kNot, kNeg, kAbs };

enum class BinaryOp : uint8_t {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
};

const char* UnaryOpName(UnaryOp op);
const char* BinaryOpName(BinaryOp op);
bool IsComparison(BinaryOp op);
bool IsArithmetic(BinaryOp op);
bool IsConnective(BinaryOp op);

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// An immutable expression tree node. Column references carry a `side`:
/// side 0 is the (only / left) input sequence, side 1 the right input of a
/// compose operator. Trees are shared; rewrites build new nodes.
class Expr {
 public:
  /// Factories ------------------------------------------------------------
  static ExprPtr Column(std::string name, int side = 0);
  static ExprPtr Literal(Value v);
  /// A literal tagged as bind parameter `index` of a parameterized plan
  /// template. Behaves exactly like Literal everywhere (evaluation,
  /// Equals, ToString); the tag only tells the plan cache which literal
  /// nodes to rebind on a cache hit. Rewrites preserve the tag.
  static ExprPtr ParamLiteral(Value v, int index);
  static ExprPtr Position();
  static ExprPtr Unary(UnaryOp op, ExprPtr operand);
  static ExprPtr Binary(BinaryOp op, ExprPtr left, ExprPtr right);

  /// Accessors ------------------------------------------------------------
  ExprKind kind() const { return kind_; }
  // kColumn:
  const std::string& column_name() const { return name_; }
  int side() const { return side_; }
  // kLiteral:
  const Value& literal() const { return literal_; }
  /// Bind-parameter index for plan-cache templates; -1 for ordinary
  /// literals.
  int param_index() const { return param_index_; }
  // kUnary / kBinary:
  UnaryOp unary_op() const { return unary_op_; }
  BinaryOp binary_op() const { return binary_op_; }
  const ExprPtr& left() const { return left_; }
  const ExprPtr& right() const { return right_; }
  /// Operand of a unary node (stored in left_).
  const ExprPtr& operand() const { return left_; }

  /// Analysis --------------------------------------------------------------
  /// Appends every (side, column name) referenced in this tree to `out`.
  void CollectColumns(std::vector<std::pair<int, std::string>>* out) const;

  /// True if the tree references only columns on `side` (or none at all).
  bool ReferencesOnlySide(int side) const;

  /// True if the tree references any column at all.
  bool ReferencesAnyColumn() const;

  /// Structural equality.
  bool Equals(const Expr& other) const;

  /// Rewriting ---------------------------------------------------------------
  /// Returns a tree with every column renamed through `renames`
  /// (old name -> new name; missing entries keep their name). Sides are
  /// unchanged.
  ExprPtr RenameColumns(const std::map<std::string, std::string>& renames) const;

  /// Returns a tree with every column reference moved to `side`.
  ExprPtr WithAllSides(int side) const;

  /// Returns a tree with every (side, name) column reference remapped
  /// through `mapping`; references absent from the mapping are unchanged.
  ExprPtr RemapColumns(
      const std::map<std::pair<int, std::string>,
                     std::pair<int, std::string>>& mapping) const;

  /// True if the tree contains a Position() node (such predicates cannot
  /// move across positional offsets).
  bool ContainsPosition() const;

  std::string ToString() const;

 private:
  Expr() = default;

  ExprKind kind_ = ExprKind::kLiteral;
  std::string name_;
  int side_ = 0;
  Value literal_;
  int param_index_ = -1;
  UnaryOp unary_op_ = UnaryOp::kNot;
  BinaryOp binary_op_ = BinaryOp::kAnd;
  ExprPtr left_;
  ExprPtr right_;
};

/// Convenience builders for readable call sites in tests and examples.
inline ExprPtr Col(std::string name, int side = 0) {
  return Expr::Column(std::move(name), side);
}
inline ExprPtr Lit(int64_t v) { return Expr::Literal(Value::Int64(v)); }
inline ExprPtr Lit(double v) { return Expr::Literal(Value::Double(v)); }
inline ExprPtr Lit(bool v) { return Expr::Literal(Value::Bool(v)); }
inline ExprPtr Lit(const char* v) {
  return Expr::Literal(Value::String(v));
}
inline ExprPtr Gt(ExprPtr l, ExprPtr r) {
  return Expr::Binary(BinaryOp::kGt, std::move(l), std::move(r));
}
inline ExprPtr Ge(ExprPtr l, ExprPtr r) {
  return Expr::Binary(BinaryOp::kGe, std::move(l), std::move(r));
}
inline ExprPtr Lt(ExprPtr l, ExprPtr r) {
  return Expr::Binary(BinaryOp::kLt, std::move(l), std::move(r));
}
inline ExprPtr Le(ExprPtr l, ExprPtr r) {
  return Expr::Binary(BinaryOp::kLe, std::move(l), std::move(r));
}
inline ExprPtr Eq(ExprPtr l, ExprPtr r) {
  return Expr::Binary(BinaryOp::kEq, std::move(l), std::move(r));
}
inline ExprPtr Ne(ExprPtr l, ExprPtr r) {
  return Expr::Binary(BinaryOp::kNe, std::move(l), std::move(r));
}
inline ExprPtr And(ExprPtr l, ExprPtr r) {
  return Expr::Binary(BinaryOp::kAnd, std::move(l), std::move(r));
}
inline ExprPtr Or(ExprPtr l, ExprPtr r) {
  return Expr::Binary(BinaryOp::kOr, std::move(l), std::move(r));
}
inline ExprPtr Not(ExprPtr e) {
  return Expr::Unary(UnaryOp::kNot, std::move(e));
}
inline ExprPtr Add(ExprPtr l, ExprPtr r) {
  return Expr::Binary(BinaryOp::kAdd, std::move(l), std::move(r));
}
inline ExprPtr Sub(ExprPtr l, ExprPtr r) {
  return Expr::Binary(BinaryOp::kSub, std::move(l), std::move(r));
}
inline ExprPtr Mul(ExprPtr l, ExprPtr r) {
  return Expr::Binary(BinaryOp::kMul, std::move(l), std::move(r));
}
inline ExprPtr Div(ExprPtr l, ExprPtr r) {
  return Expr::Binary(BinaryOp::kDiv, std::move(l), std::move(r));
}

/// Conjunction of `terms` (nullptr if empty, the term itself if single).
ExprPtr ConjoinAll(const std::vector<ExprPtr>& terms);

/// Splits a predicate into its top-level AND conjuncts.
void SplitConjuncts(const ExprPtr& pred, std::vector<ExprPtr>* out);

}  // namespace seq

#endif  // SEQ_EXPR_EXPR_H_
