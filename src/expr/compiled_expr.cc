#include "expr/compiled_expr.h"

#include <cmath>

#include "common/logging.h"

namespace seq {

Result<int> CompiledExpr::CompileNode(const ExprPtr& expr, const Schema& left,
                                      const Schema* right,
                                      std::vector<Node>* nodes) {
  Node node;
  node.kind = expr->kind();
  switch (expr->kind()) {
    case ExprKind::kColumn: {
      node.side = expr->side();
      const Schema* schema = (node.side == 0) ? &left : right;
      if (schema == nullptr) {
        return Status::TypeError("expression references right input '" +
                                 expr->column_name() +
                                 "' but the operator has one input");
      }
      SEQ_ASSIGN_OR_RETURN(node.field_index,
                           schema->FieldIndex(expr->column_name()));
      node.type = schema->field(node.field_index).type;
      break;
    }
    case ExprKind::kLiteral:
      node.literal = expr->literal();
      node.type = node.literal.type();
      break;
    case ExprKind::kPosition:
      node.type = TypeId::kInt64;
      break;
    case ExprKind::kUnary: {
      SEQ_ASSIGN_OR_RETURN(node.left,
                           CompileNode(expr->operand(), left, right, nodes));
      node.unary_op = expr->unary_op();
      TypeId in = (*nodes)[node.left].type;
      switch (node.unary_op) {
        case UnaryOp::kNot:
          if (in != TypeId::kBool) {
            return Status::TypeError("not() requires bool, got " +
                                     std::string(TypeName(in)));
          }
          node.type = TypeId::kBool;
          break;
        case UnaryOp::kNeg:
        case UnaryOp::kAbs:
          if (!IsNumeric(in)) {
            return Status::TypeError(std::string(UnaryOpName(node.unary_op)) +
                                     " requires a numeric operand, got " +
                                     TypeName(in));
          }
          node.type = in;
          break;
      }
      break;
    }
    case ExprKind::kBinary: {
      SEQ_ASSIGN_OR_RETURN(node.left,
                           CompileNode(expr->left(), left, right, nodes));
      SEQ_ASSIGN_OR_RETURN(node.right,
                           CompileNode(expr->right(), left, right, nodes));
      node.binary_op = expr->binary_op();
      TypeId lt = (*nodes)[node.left].type;
      TypeId rt = (*nodes)[node.right].type;
      if (IsArithmetic(node.binary_op)) {
        if (!IsNumeric(lt) || !IsNumeric(rt)) {
          return Status::TypeError(
              std::string("arithmetic '") + BinaryOpName(node.binary_op) +
              "' requires numeric operands, got " + TypeName(lt) + " and " +
              TypeName(rt));
        }
        node.type = (lt == TypeId::kInt64 && rt == TypeId::kInt64)
                        ? TypeId::kInt64
                        : TypeId::kDouble;
      } else if (IsComparison(node.binary_op)) {
        bool compatible = (IsNumeric(lt) && IsNumeric(rt)) || lt == rt;
        if (!compatible) {
          return Status::TypeError(
              std::string("cannot compare ") + TypeName(lt) + " with " +
              TypeName(rt));
        }
        node.type = TypeId::kBool;
      } else {  // connective
        if (lt != TypeId::kBool || rt != TypeId::kBool) {
          return Status::TypeError(
              std::string("'") + BinaryOpName(node.binary_op) +
              "' requires bool operands, got " + TypeName(lt) + " and " +
              TypeName(rt));
        }
        node.type = TypeId::kBool;
      }
      break;
    }
  }
  nodes->push_back(std::move(node));
  return static_cast<int>(nodes->size() - 1);
}

Result<CompiledExpr> CompiledExpr::Compile(const ExprPtr& expr,
                                           const Schema& left,
                                           const Schema* right) {
  if (expr == nullptr) {
    return Status::InvalidArgument("cannot compile a null expression");
  }
  CompiledExpr out;
  out.expr_ = expr;
  SEQ_ASSIGN_OR_RETURN(int root,
                       CompileNode(expr, left, right, &out.nodes_));
  (void)root;  // post-order: root is always the last node
  out.result_type_ = out.nodes_.back().type;
  return out;
}

Result<CompiledExpr> CompiledExpr::CompilePredicate(const ExprPtr& expr,
                                                    const Schema& left,
                                                    const Schema* right) {
  SEQ_ASSIGN_OR_RETURN(CompiledExpr compiled, Compile(expr, left, right));
  if (compiled.result_type() != TypeId::kBool) {
    return Status::TypeError("predicate must evaluate to bool, got " +
                             std::string(TypeName(compiled.result_type())) +
                             " in " + expr->ToString());
  }
  return compiled;
}

Value CompiledExpr::EvalNode(int idx, const Record& left, const Record* right,
                             Position pos) const {
  const Node& node = nodes_[idx];
  switch (node.kind) {
    case ExprKind::kColumn: {
      const Record& rec = (node.side == 0) ? left : *right;
      SEQ_DCHECK(node.field_index < rec.size());
      return rec[node.field_index];
    }
    case ExprKind::kLiteral:
      return node.literal;
    case ExprKind::kPosition:
      return Value::Int64(pos);
    case ExprKind::kUnary: {
      Value v = EvalNode(node.left, left, right, pos);
      switch (node.unary_op) {
        case UnaryOp::kNot:
          return Value::Bool(!v.boolean());
        case UnaryOp::kNeg:
          return (node.type == TypeId::kInt64) ? Value::Int64(-v.int64())
                                               : Value::Double(-v.AsDouble());
        case UnaryOp::kAbs:
          return (node.type == TypeId::kInt64)
                     ? Value::Int64(std::abs(v.int64()))
                     : Value::Double(std::fabs(v.AsDouble()));
      }
      SEQ_CHECK(false);
      return Value();
    }
    case ExprKind::kBinary: {
      // Short-circuit the connectives.
      if (node.binary_op == BinaryOp::kAnd) {
        if (!EvalNode(node.left, left, right, pos).boolean()) {
          return Value::Bool(false);
        }
        return EvalNode(node.right, left, right, pos);
      }
      if (node.binary_op == BinaryOp::kOr) {
        if (EvalNode(node.left, left, right, pos).boolean()) {
          return Value::Bool(true);
        }
        return EvalNode(node.right, left, right, pos);
      }
      Value lv = EvalNode(node.left, left, right, pos);
      Value rv = EvalNode(node.right, left, right, pos);
      if (IsComparison(node.binary_op)) {
        int c = lv.Compare(rv);
        switch (node.binary_op) {
          case BinaryOp::kEq:
            return Value::Bool(c == 0);
          case BinaryOp::kNe:
            return Value::Bool(c != 0);
          case BinaryOp::kLt:
            return Value::Bool(c < 0);
          case BinaryOp::kLe:
            return Value::Bool(c <= 0);
          case BinaryOp::kGt:
            return Value::Bool(c > 0);
          case BinaryOp::kGe:
            return Value::Bool(c >= 0);
          default:
            SEQ_CHECK(false);
        }
      }
      // Arithmetic.
      if (node.type == TypeId::kInt64) {
        int64_t a = lv.int64();
        int64_t b = rv.int64();
        switch (node.binary_op) {
          case BinaryOp::kAdd:
            return Value::Int64(a + b);
          case BinaryOp::kSub:
            return Value::Int64(a - b);
          case BinaryOp::kMul:
            return Value::Int64(a * b);
          case BinaryOp::kDiv:
            return Value::Int64(b == 0 ? 0 : a / b);
          default:
            SEQ_CHECK(false);
        }
      }
      double a = lv.AsDouble();
      double b = rv.AsDouble();
      switch (node.binary_op) {
        case BinaryOp::kAdd:
          return Value::Double(a + b);
        case BinaryOp::kSub:
          return Value::Double(a - b);
        case BinaryOp::kMul:
          return Value::Double(a * b);
        case BinaryOp::kDiv:
          return Value::Double(a / b);
        default:
          SEQ_CHECK(false);
      }
    }
  }
  SEQ_CHECK(false);
  return Value();
}

Value CompiledExpr::Eval(const Record& left, const Record* right,
                         Position pos) const {
  SEQ_DCHECK(!nodes_.empty());
  return EvalNode(static_cast<int>(nodes_.size()) - 1, left, right, pos);
}

}  // namespace seq
