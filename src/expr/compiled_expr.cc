#include "expr/compiled_expr.h"

#include <cmath>

#include "common/logging.h"

namespace seq {

Result<int> CompiledExpr::CompileNode(const ExprPtr& expr, const Schema& left,
                                      const Schema* right,
                                      std::vector<Node>* nodes) {
  Node node;
  node.kind = expr->kind();
  switch (expr->kind()) {
    case ExprKind::kColumn: {
      node.side = expr->side();
      const Schema* schema = (node.side == 0) ? &left : right;
      if (schema == nullptr) {
        return Status::TypeError("expression references right input '" +
                                 expr->column_name() +
                                 "' but the operator has one input");
      }
      SEQ_ASSIGN_OR_RETURN(node.field_index,
                           schema->FieldIndex(expr->column_name()));
      node.type = schema->field(node.field_index).type;
      break;
    }
    case ExprKind::kLiteral:
      node.literal = expr->literal();
      node.type = node.literal.type();
      break;
    case ExprKind::kPosition:
      node.type = TypeId::kInt64;
      break;
    case ExprKind::kUnary: {
      SEQ_ASSIGN_OR_RETURN(node.left,
                           CompileNode(expr->operand(), left, right, nodes));
      node.unary_op = expr->unary_op();
      TypeId in = (*nodes)[node.left].type;
      switch (node.unary_op) {
        case UnaryOp::kNot:
          if (in != TypeId::kBool) {
            return Status::TypeError("not() requires bool, got " +
                                     std::string(TypeName(in)));
          }
          node.type = TypeId::kBool;
          break;
        case UnaryOp::kNeg:
        case UnaryOp::kAbs:
          if (!IsNumeric(in)) {
            return Status::TypeError(std::string(UnaryOpName(node.unary_op)) +
                                     " requires a numeric operand, got " +
                                     TypeName(in));
          }
          node.type = in;
          break;
      }
      break;
    }
    case ExprKind::kBinary: {
      SEQ_ASSIGN_OR_RETURN(node.left,
                           CompileNode(expr->left(), left, right, nodes));
      SEQ_ASSIGN_OR_RETURN(node.right,
                           CompileNode(expr->right(), left, right, nodes));
      node.binary_op = expr->binary_op();
      TypeId lt = (*nodes)[node.left].type;
      TypeId rt = (*nodes)[node.right].type;
      if (IsArithmetic(node.binary_op)) {
        if (!IsNumeric(lt) || !IsNumeric(rt)) {
          return Status::TypeError(
              std::string("arithmetic '") + BinaryOpName(node.binary_op) +
              "' requires numeric operands, got " + TypeName(lt) + " and " +
              TypeName(rt));
        }
        node.type = (lt == TypeId::kInt64 && rt == TypeId::kInt64)
                        ? TypeId::kInt64
                        : TypeId::kDouble;
      } else if (IsComparison(node.binary_op)) {
        bool compatible = (IsNumeric(lt) && IsNumeric(rt)) || lt == rt;
        if (!compatible) {
          return Status::TypeError(
              std::string("cannot compare ") + TypeName(lt) + " with " +
              TypeName(rt));
        }
        node.type = TypeId::kBool;
        node.kernel = SelectKernel(node.binary_op, lt, rt);
      } else {  // connective
        if (lt != TypeId::kBool || rt != TypeId::kBool) {
          return Status::TypeError(
              std::string("'") + BinaryOpName(node.binary_op) +
              "' requires bool operands, got " + TypeName(lt) + " and " +
              TypeName(rt));
        }
        node.type = TypeId::kBool;
      }
      break;
    }
  }
  nodes->push_back(std::move(node));
  return static_cast<int>(nodes->size() - 1);
}

Result<CompiledExpr> CompiledExpr::Compile(const ExprPtr& expr,
                                           const Schema& left,
                                           const Schema* right) {
  if (expr == nullptr) {
    return Status::InvalidArgument("cannot compile a null expression");
  }
  CompiledExpr out;
  out.expr_ = expr;
  SEQ_ASSIGN_OR_RETURN(int root,
                       CompileNode(expr, left, right, &out.nodes_));
  (void)root;  // post-order: root is always the last node
  out.result_type_ = out.nodes_.back().type;
  return out;
}

Result<CompiledExpr> CompiledExpr::CompilePredicate(const ExprPtr& expr,
                                                    const Schema& left,
                                                    const Schema* right) {
  SEQ_ASSIGN_OR_RETURN(CompiledExpr compiled, Compile(expr, left, right));
  if (compiled.result_type() != TypeId::kBool) {
    return Status::TypeError("predicate must evaluate to bool, got " +
                             std::string(TypeName(compiled.result_type())) +
                             " in " + expr->ToString());
  }
  return compiled;
}

Value CompiledExpr::EvalNode(int idx, const Record& left, const Record* right,
                             Position pos) const {
  const Node& node = nodes_[idx];
  switch (node.kind) {
    case ExprKind::kColumn: {
      const Record& rec = (node.side == 0) ? left : *right;
      SEQ_DCHECK(node.field_index < rec.size());
      return rec[node.field_index];
    }
    case ExprKind::kLiteral:
      return node.literal;
    case ExprKind::kPosition:
      return Value::Int64(pos);
    case ExprKind::kUnary:
      return EvalUnaryOp(node, EvalNode(node.left, left, right, pos));
    case ExprKind::kBinary: {
      // Short-circuit the connectives.
      if (node.binary_op == BinaryOp::kAnd) {
        if (!EvalNode(node.left, left, right, pos).boolean()) {
          return Value::Bool(false);
        }
        return EvalNode(node.right, left, right, pos);
      }
      if (node.binary_op == BinaryOp::kOr) {
        if (EvalNode(node.left, left, right, pos).boolean()) {
          return Value::Bool(true);
        }
        return EvalNode(node.right, left, right, pos);
      }
      return EvalBinaryOp(node, EvalNode(node.left, left, right, pos),
                          EvalNode(node.right, left, right, pos));
    }
  }
  SEQ_CHECK(false);
  return Value();
}

Value CompiledExpr::EvalUnaryOp(const Node& node, const Value& v) {
  switch (node.unary_op) {
    case UnaryOp::kNot:
      return Value::Bool(!v.boolean());
    case UnaryOp::kNeg:
      return (node.type == TypeId::kInt64) ? Value::Int64(-v.int64())
                                           : Value::Double(-v.AsDouble());
    case UnaryOp::kAbs:
      return (node.type == TypeId::kInt64)
                 ? Value::Int64(std::abs(v.int64()))
                 : Value::Double(std::fabs(v.AsDouble()));
  }
  SEQ_CHECK(false);
  return Value();
}

Value CompiledExpr::EvalBinaryOp(const Node& node, const Value& lv,
                                 const Value& rv) {
  if (IsComparison(node.binary_op)) {
    int c = lv.Compare(rv);
    switch (node.binary_op) {
      case BinaryOp::kEq:
        return Value::Bool(c == 0);
      case BinaryOp::kNe:
        return Value::Bool(c != 0);
      case BinaryOp::kLt:
        return Value::Bool(c < 0);
      case BinaryOp::kLe:
        return Value::Bool(c <= 0);
      case BinaryOp::kGt:
        return Value::Bool(c > 0);
      case BinaryOp::kGe:
        return Value::Bool(c >= 0);
      default:
        SEQ_CHECK(false);
    }
  }
  // Arithmetic.
  if (node.type == TypeId::kInt64) {
    int64_t a = lv.int64();
    int64_t b = rv.int64();
    switch (node.binary_op) {
      case BinaryOp::kAdd:
        return Value::Int64(a + b);
      case BinaryOp::kSub:
        return Value::Int64(a - b);
      case BinaryOp::kMul:
        return Value::Int64(a * b);
      case BinaryOp::kDiv:
        return Value::Int64(b == 0 ? 0 : a / b);
      default:
        SEQ_CHECK(false);
    }
  }
  double a = lv.AsDouble();
  double b = rv.AsDouble();
  switch (node.binary_op) {
    case BinaryOp::kAdd:
      return Value::Double(a + b);
    case BinaryOp::kSub:
      return Value::Double(a - b);
    case BinaryOp::kMul:
      return Value::Double(a * b);
    case BinaryOp::kDiv:
      return Value::Double(a / b);
    default:
      SEQ_CHECK(false);
  }
  return Value();
}

namespace {

/// Comparison with swapped operands: a < b == b > a.
BinaryOp MirrorComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt:
      return BinaryOp::kGt;
    case BinaryOp::kLe:
      return BinaryOp::kGe;
    case BinaryOp::kGt:
      return BinaryOp::kLt;
    case BinaryOp::kGe:
      return BinaryOp::kLe;
    default:
      return op;  // kEq / kNe are symmetric
  }
}

}  // namespace

std::optional<SimpleIntCmp> CompiledExpr::AsSimpleIntCmp() const {
  if (nodes_.size() != 3) return std::nullopt;
  const Node& root = nodes_.back();
  if (root.kind != ExprKind::kBinary || !IsComparison(root.binary_op)) {
    return std::nullopt;
  }
  const Node& l = nodes_[root.left];
  const Node& r = nodes_[root.right];
  if (l.type != TypeId::kInt64 || r.type != TypeId::kInt64) {
    return std::nullopt;
  }
  if (l.kind == ExprKind::kColumn && l.side == 0 &&
      r.kind == ExprKind::kLiteral) {
    return SimpleIntCmp{l.field_index, root.binary_op, r.literal.int64()};
  }
  if (r.kind == ExprKind::kColumn && r.side == 0 &&
      l.kind == ExprKind::kLiteral) {
    return SimpleIntCmp{r.field_index, MirrorComparison(root.binary_op),
                        l.literal.int64()};
  }
  return std::nullopt;
}

CompiledExpr::BinKernel CompiledExpr::SelectKernel(BinaryOp op, TypeId lt,
                                                   TypeId rt) {
  bool both_int = lt == TypeId::kInt64 && rt == TypeId::kInt64;
  bool numeric = IsNumeric(lt) && IsNumeric(rt);
  switch (op) {
    case BinaryOp::kEq:
      return both_int ? BinKernel::kIntEq
                      : numeric ? BinKernel::kNumEq : BinKernel::kGeneric;
    case BinaryOp::kNe:
      return both_int ? BinKernel::kIntNe
                      : numeric ? BinKernel::kNumNe : BinKernel::kGeneric;
    case BinaryOp::kLt:
      return both_int ? BinKernel::kIntLt
                      : numeric ? BinKernel::kNumLt : BinKernel::kGeneric;
    case BinaryOp::kLe:
      return both_int ? BinKernel::kIntLe
                      : numeric ? BinKernel::kNumLe : BinKernel::kGeneric;
    case BinaryOp::kGt:
      return both_int ? BinKernel::kIntGt
                      : numeric ? BinKernel::kNumGt : BinKernel::kGeneric;
    case BinaryOp::kGe:
      return both_int ? BinKernel::kIntGe
                      : numeric ? BinKernel::kNumGe : BinKernel::kGeneric;
    default:
      return BinKernel::kGeneric;
  }
}

void CompiledExpr::InitScratch(ExprScratch* scratch) const {
  scratch->owned.assign(nodes_.size(), Value());
  scratch->slot.assign(nodes_.size(), nullptr);
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].kind == ExprKind::kLiteral) {
      scratch->slot[i] = &nodes_[i].literal;
    }
  }
}

const Value& CompiledExpr::EvalFlat(const Record& left, const Record* right,
                                    Position pos,
                                    ExprScratch* scratch) const {
  SEQ_DCHECK(!nodes_.empty());
  SEQ_DCHECK(scratch->slot.size() == nodes_.size());
  const size_t n = nodes_.size();
  for (size_t i = 0; i < n; ++i) {
    const Node& node = nodes_[i];
    switch (node.kind) {
      case ExprKind::kColumn: {
        const Record& rec = (node.side == 0) ? left : *right;
        SEQ_DCHECK(node.field_index < rec.size());
        scratch->slot[i] = &rec[node.field_index];
        break;
      }
      case ExprKind::kLiteral:
        break;  // bound once by InitScratch
      case ExprKind::kPosition:
        scratch->owned[i] = Value::Int64(pos);
        scratch->slot[i] = &scratch->owned[i];
        break;
      case ExprKind::kUnary:
        scratch->owned[i] = EvalUnaryOp(node, *scratch->slot[node.left]);
        scratch->slot[i] = &scratch->owned[i];
        break;
      case ExprKind::kBinary: {
        const Value& lv = *scratch->slot[node.left];
        const Value& rv = *scratch->slot[node.right];
        Value& out = scratch->owned[i];
        switch (node.kernel) {
          case BinKernel::kIntEq:
            out = Value::Bool(lv.int64() == rv.int64());
            break;
          case BinKernel::kIntNe:
            out = Value::Bool(lv.int64() != rv.int64());
            break;
          case BinKernel::kIntLt:
            out = Value::Bool(lv.int64() < rv.int64());
            break;
          case BinKernel::kIntLe:
            out = Value::Bool(lv.int64() <= rv.int64());
            break;
          case BinKernel::kIntGt:
            out = Value::Bool(lv.int64() > rv.int64());
            break;
          case BinKernel::kIntGe:
            out = Value::Bool(lv.int64() >= rv.int64());
            break;
          // The negated forms reproduce Value::Compare's NaN behavior
          // (NaN orders "equal" to everything).
          case BinKernel::kNumEq:
            out = Value::Bool(!(lv.AsDouble() < rv.AsDouble()) &&
                              !(lv.AsDouble() > rv.AsDouble()));
            break;
          case BinKernel::kNumNe:
            out = Value::Bool(lv.AsDouble() < rv.AsDouble() ||
                              lv.AsDouble() > rv.AsDouble());
            break;
          case BinKernel::kNumLt:
            out = Value::Bool(lv.AsDouble() < rv.AsDouble());
            break;
          case BinKernel::kNumLe:
            out = Value::Bool(!(lv.AsDouble() > rv.AsDouble()));
            break;
          case BinKernel::kNumGt:
            out = Value::Bool(lv.AsDouble() > rv.AsDouble());
            break;
          case BinKernel::kNumGe:
            out = Value::Bool(!(lv.AsDouble() < rv.AsDouble()));
            break;
          case BinKernel::kGeneric:
            // Both sides are already evaluated (post-order pass), so the
            // connectives reduce to plain boolean ops.
            if (node.binary_op == BinaryOp::kAnd) {
              out = Value::Bool(lv.boolean() && rv.boolean());
            } else if (node.binary_op == BinaryOp::kOr) {
              out = Value::Bool(lv.boolean() || rv.boolean());
            } else {
              out = EvalBinaryOp(node, lv, rv);
            }
            break;
        }
        scratch->slot[i] = &out;
        break;
      }
    }
  }
  return *scratch->slot[n - 1];
}

Value CompiledExpr::Eval(const Record& left, const Record* right,
                         Position pos) const {
  SEQ_DCHECK(!nodes_.empty());
  return EvalNode(static_cast<int>(nodes_.size()) - 1, left, right, pos);
}

}  // namespace seq
