#include "pattern/pattern.h"

#include "common/logging.h"

namespace seq {

Pattern Pattern::Start(ExprPtr predicate) {
  SEQ_CHECK(predicate != nullptr);
  Pattern p;
  p.steps_.push_back(Step{std::move(predicate), 0});
  return p;
}

Pattern Pattern::Then(ExprPtr predicate, int64_t max_gap) const {
  SEQ_CHECK(predicate != nullptr);
  Pattern p = *this;
  p.steps_.push_back(Step{std::move(predicate), max_gap});
  return p;
}

Result<LogicalOpPtr> Pattern::Compile(const Catalog& catalog,
                                      const std::string& sequence) const {
  if (steps_.empty()) {
    return Status::InvalidArgument("empty pattern");
  }
  for (size_t k = 1; k < steps_.size(); ++k) {
    if (steps_[k].max_gap < 1) {
      return Status::InvalidArgument("pattern gaps must be >= 1");
    }
  }
  SEQ_ASSIGN_OR_RETURN(const CatalogEntry* entry, catalog.Lookup(sequence));
  const Schema& schema = *entry->schema;
  if (schema.num_fields() == 0) {
    return Status::InvalidArgument("event sequence has no fields");
  }
  // Counting any field counts records; use the first.
  const std::string count_column = schema.field(0).name;
  std::vector<std::string> event_columns;
  for (const Field& f : schema.fields()) event_columns.push_back(f.name);

  // M_1 = σ_p1(seq).
  LogicalOpPtr matches =
      LogicalOp::Select(LogicalOp::BaseRef(sequence), steps_[0].predicate);
  for (size_t k = 1; k < steps_.size(); ++k) {
    // indicator(i) = count of M_{k-1} matches in [i − gap, i − 1]: a
    // trailing count window, shifted to end at i−1 with a positional
    // offset. WindowAgg emits only where its window is non-empty, so
    // composing with the indicator *is* the existence test — no extra
    // predicate needed.
    std::string count_name = "_pattern_count_" + std::to_string(k);
    LogicalOpPtr indicator = LogicalOp::PositionalOffset(
        LogicalOp::WindowAgg(matches, AggFunc::kCount, count_column,
                             steps_[k].max_gap, count_name),
        /*offset=*/-1);
    // M_k = π_event-fields( σ_pk(seq) ∘ indicator ).
    LogicalOpPtr step_events =
        LogicalOp::Select(LogicalOp::BaseRef(sequence), steps_[k].predicate);
    matches = LogicalOp::Project(
        LogicalOp::Compose(std::move(step_events), std::move(indicator)),
        event_columns);
  }
  return matches;
}

}  // namespace seq
