#ifndef SEQ_PATTERN_PATTERN_H_
#define SEQ_PATTERN_PATTERN_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "expr/expr.h"
#include "logical/logical_op.h"

namespace seq {

/// Composite-event pattern matching over a sequence, compiled entirely
/// into the paper's operator algebra. The paper's introduction names
/// "trigger mechanisms [GJS92]" (composite event specification) as a
/// target domain of sequence query processing; this module demonstrates
/// that claim: a pattern
///
///     A  then  B within g1  then  C within g2
///
/// compiles to selections, trailing-count aggregates and positional
/// joins — so every optimization in this library (span propagation,
/// caching, stream single-scan evaluation) applies to pattern queries for
/// free.
///
/// Matching semantics: step k matches at position i iff its predicate
/// holds at i and step k−1 matched at some j with i − gap_k <= j < i.
/// The compiled query yields, at each position where the *final* step
/// matches, the matching event's record.
///
///   auto q = Pattern::Start(Eq(Col("kind"), Lit("login_fail")))
///                .Then(Eq(Col("kind"), Lit("login_fail")), 10)
///                .Then(Eq(Col("kind"), Lit("transfer")), 100)
///                .Compile("events");
class Pattern {
 public:
  /// First step: events satisfying `predicate`.
  static Pattern Start(ExprPtr predicate);

  /// Adds a step: `predicate` must match within `max_gap` positions
  /// (strictly) after the previous step's match.
  Pattern Then(ExprPtr predicate, int64_t max_gap) const;

  size_t num_steps() const { return steps_.size(); }

  /// Compiles the pattern against the named event sequence into a query
  /// graph over the standard operators (the catalog provides the event
  /// schema).
  Result<LogicalOpPtr> Compile(const Catalog& catalog,
                               const std::string& sequence) const;

 private:
  struct Step {
    ExprPtr predicate;
    int64_t max_gap = 0;  // 0 for the first step
  };

  Pattern() = default;
  std::vector<Step> steps_;
};

}  // namespace seq

#endif  // SEQ_PATTERN_PATTERN_H_
