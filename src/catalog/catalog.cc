#include "catalog/catalog.h"

#include <algorithm>

#include "common/logging.h"

namespace seq {

Status Catalog::RegisterBase(std::string name, BaseSequencePtr store) {
  if (store == nullptr) {
    return Status::InvalidArgument("null store for sequence '" + name + "'");
  }
  if (entries_.count(name) > 0) {
    return Status::InvalidArgument("sequence '" + name +
                                   "' already registered");
  }
  CatalogEntry entry;
  entry.name = name;
  entry.kind = CatalogEntry::Kind::kBase;
  entry.schema = store->schema();
  // Warm the lazily computed column statistics so purely read-only use of
  // the catalog (concurrent queries) never mutates the store.
  store->column_stats();
  entry.store = std::move(store);
  entries_.emplace(std::move(name), std::move(entry));
  ++version_;
  return Status::OK();
}

Status Catalog::RegisterConstant(std::string name, SchemaPtr schema,
                                 Record value) {
  if (schema == nullptr) {
    return Status::InvalidArgument("null schema for constant '" + name + "'");
  }
  if (!RecordMatchesSchema(value, *schema)) {
    return Status::TypeError("constant record does not match schema " +
                             schema->ToString());
  }
  if (entries_.count(name) > 0) {
    return Status::InvalidArgument("sequence '" + name +
                                   "' already registered");
  }
  CatalogEntry entry;
  entry.name = name;
  entry.kind = CatalogEntry::Kind::kConstant;
  entry.schema = std::move(schema);
  entry.constant = std::move(value);
  entries_.emplace(std::move(name), std::move(entry));
  ++version_;
  return Status::OK();
}

Result<const CatalogEntry*> Catalog::Lookup(const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("no sequence named '" + name + "' in catalog");
  }
  return &it->second;
}

bool Catalog::Contains(const std::string& name) const {
  return entries_.count(name) > 0;
}

std::pair<std::string, std::string> Catalog::OrderedPair(
    const std::string& a, const std::string& b) {
  return (a <= b) ? std::make_pair(a, b) : std::make_pair(b, a);
}

void Catalog::SetNullCorrelation(const std::string& a, const std::string& b,
                                 double correlation) {
  SEQ_CHECK_MSG(correlation >= 0.0 && correlation <= 1.0,
                "correlation must be in [0,1]");
  correlations_[OrderedPair(a, b)] = correlation;
  ++version_;
}

double Catalog::NullCorrelation(const std::string& a,
                                const std::string& b) const {
  auto it = correlations_.find(OrderedPair(a, b));
  return it == correlations_.end() ? 0.0 : it->second;
}

double Catalog::JointDensity(double d1, double d2, double correlation) {
  double independent = d1 * d2;
  double aligned = std::min(d1, d2);
  return correlation * aligned + (1.0 - correlation) * independent;
}

std::vector<std::tuple<std::string, std::string, double>>
Catalog::ListCorrelations() const {
  std::vector<std::tuple<std::string, std::string, double>> out;
  out.reserve(correlations_.size());
  for (const auto& [pair, value] : correlations_) {
    out.emplace_back(pair.first, pair.second, value);
  }
  return out;
}

std::vector<std::string> Catalog::ListSequences() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;
}

}  // namespace seq
