#ifndef SEQ_CATALOG_CATALOG_H_
#define SEQ_CATALOG_CATALOG_H_

#include <cstdint>
#include <map>
#include <tuple>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "storage/base_sequence.h"
#include "types/record.h"
#include "types/schema.h"

namespace seq {

/// One named sequence known to the engine: either a materialized base
/// sequence or a constant sequence (every position maps to the same record,
/// density 1, unbounded span — paper §2).
struct CatalogEntry {
  enum class Kind { kBase, kConstant };

  std::string name;
  Kind kind = Kind::kBase;
  SchemaPtr schema;
  BaseSequencePtr store;  // kBase only
  Record constant;        // kConstant only

  Span span() const {
    return kind == Kind::kBase ? store->span() : Span::Unbounded();
  }
  double density() const {
    return kind == Kind::kBase ? store->density() : 1.0;
  }
};

/// The catalog of named sequences plus the cross-sequence meta-information
/// the optimizer consumes: pairwise null-position correlation (§3, §4
/// Step 2.a — "the correlation in the Null positions of the input
/// sequences").
class Catalog {
 public:
  Catalog() = default;

  Status RegisterBase(std::string name, BaseSequencePtr store);
  Status RegisterConstant(std::string name, SchemaPtr schema, Record value);

  Result<const CatalogEntry*> Lookup(const std::string& name) const;
  bool Contains(const std::string& name) const;

  /// Correlation of non-null positions between two base sequences, in
  /// [0, 1]: 0 means independent (joint density d1·d2), 1 means perfectly
  /// aligned (joint density min(d1, d2)). Symmetric; defaults to 0.
  void SetNullCorrelation(const std::string& a, const std::string& b,
                          double correlation);
  double NullCorrelation(const std::string& a, const std::string& b) const;

  /// Joint density of two sequences under the declared correlation.
  static double JointDensity(double d1, double d2, double correlation);

  std::vector<std::string> ListSequences() const;

  /// All declared correlations as (a, b, value) with a < b.
  std::vector<std::tuple<std::string, std::string, double>>
  ListCorrelations() const;

  /// Monotonic mutation counter: bumped by every successful RegisterBase /
  /// RegisterConstant / SetNullCorrelation. Plans optimized against one
  /// version are stale under any other, so the plan cache folds this into
  /// its key — a catalog mutation silently retires every cached plan.
  uint64_t version() const { return version_; }

 private:
  static std::pair<std::string, std::string> OrderedPair(
      const std::string& a, const std::string& b);

  std::map<std::string, CatalogEntry> entries_;
  std::map<std::pair<std::string, std::string>, double> correlations_;
  uint64_t version_ = 0;
};

}  // namespace seq

#endif  // SEQ_CATALOG_CATALOG_H_
