#ifndef SEQ_CATALOG_COST_PARAMS_H_
#define SEQ_CATALOG_COST_PARAMS_H_

#include <cstdint>

namespace seq {

/// Tunable constants of the cost model (paper §4.1). Per-sequence page and
/// probe prices live with each BaseSequenceStore (AccessCosts); these are
/// the global constants the formulas share.
struct CostParams {
  /// K in §4.1.3: cost of one application of the join predicates.
  double join_predicate_cost = 0.5;

  /// Cost of one selection-predicate application.
  double select_predicate_cost = 0.3;

  /// §4.1.2: cost of storing one record into an operator cache and of one
  /// associative cache access.
  double cache_store_cost = 0.1;
  double cache_access_cost = 0.05;

  /// Per-output-record computation cost (projection, finishing an
  /// aggregate or join output record).
  double compute_cost = 0.2;

  /// Cost of folding one input record into an aggregate state
  /// (WindowState::Add). Charged by the executor per step and by the
  /// planner per expected input record so measured simulated cost stays
  /// comparable to the estimates.
  double agg_step_cost = 0.05;

  /// Default predicate selectivities when column statistics cannot decide.
  double default_eq_selectivity = 0.1;
  double default_range_selectivity = 1.0 / 3.0;

  /// Cache-Strategy-A feasibility bound: scopes larger than this are not
  /// cached in full ("a scope of the last million records would probably
  /// not be cached!", §4.1.2).
  int64_t max_cached_scope = 1 << 16;

  /// Ablation switches for the §3.5 experiments: force the naive algorithm
  /// instead of Cache-Strategy-B / Cache-Strategy-A in stream plans.
  bool disable_incremental_value_offset = false;
  bool disable_window_cache = false;

  /// Join blocks wider than this are planned greedily in input order
  /// instead of by the exhaustive Selinger DP (§4.1's exponential
  /// enumeration). Lowering it is the E13 ablation.
  int max_dp_items = 16;

  /// Experiment switch for §3.3 (Fig. 4): force every stream-mode compose
  /// to one strategy instead of costing the three. Values match
  /// JoinStrategy (0 = stream-both, 1 = stream-left-probe-right,
  /// 2 = stream-right-probe-left); -1 costs normally.
  int force_join_strategy = -1;
};

}  // namespace seq

#endif  // SEQ_CATALOG_COST_PARAMS_H_
