#include "obs/metrics.h"

#include <sstream>
#include <thread>

#include "common/string_util.h"

namespace seq {

namespace {

// Stripe selection: hash the thread id once per thread. Different worker
// threads land on different slots with high probability; collisions only
// cost contention, never correctness.
size_t ThreadStripe() {
  static thread_local const size_t stripe =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) %
      MetricCounter::kStripes;
  return stripe;
}

}  // namespace

void MetricCounter::Add(int64_t delta) {
  slots_[ThreadStripe()].v.fetch_add(delta, std::memory_order_relaxed);
}

int64_t MetricCounter::Value() const {
  int64_t total = 0;
  for (const Slot& slot : slots_) {
    total += slot.v.load(std::memory_order_relaxed);
  }
  return total;
}

void MetricCounter::Reset() {
  for (Slot& slot : slots_) {
    slot.v.store(0, std::memory_order_relaxed);
  }
}

void MetricsRegistry::Add(const std::string& name, int64_t delta) {
  Counter(name).Add(delta);
}

MetricCounter& MetricsRegistry::Counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::make_unique<MetricCounter>()).first;
  }
  return *it->second;
}

void MetricsRegistry::Observe(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  MetricDist& dist = dists_[name];
  if (dist.count == 0) {
    dist.min = value;
    dist.max = value;
  } else {
    if (value < dist.min) dist.min = value;
    if (value > dist.max) dist.max = value;
  }
  dist.count += 1;
  dist.sum += value;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, std::make_unique<Histogram>()).first;
  }
  return *it->second;
}

int64_t MetricsRegistry::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it != counters_.end() ? it->second->Value() : 0;
}

MetricDist MetricsRegistry::GetDist(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = dists_.find(name);
  return it != dists_.end() ? it->second : MetricDist{};
}

HistogramSnapshot MetricsRegistry::GetHistogramSnapshot(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  return it != histograms_.end() ? it->second->Snapshot() : HistogramSnapshot{};
}

std::map<std::string, int64_t> MetricsRegistry::CounterSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, int64_t> out;
  for (const auto& [name, counter] : counters_) {
    out.emplace(name, counter->Value());
  }
  return out;
}

std::map<std::string, MetricDist> MetricsRegistry::DistSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dists_;
}

std::map<std::string, HistogramSnapshot> MetricsRegistry::HistogramSnapshots()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, HistogramSnapshot> out;
  for (const auto& [name, hist] : histograms_) {
    out.emplace(name, hist->Snapshot());
  }
  return out;
}

std::string MetricsRegistry::ToString() const {
  // std::map keeps each section sorted by name; the section order and
  // header lines are part of the documented format (see header).
  const auto counters = CounterSnapshot();
  const auto dists = DistSnapshot();
  const auto hists = HistogramSnapshots();
  std::ostringstream oss;
  oss << "# counters\n";
  for (const auto& [name, value] : counters) {
    oss << name << "=" << value << "\n";
  }
  oss << "# dists\n";
  for (const auto& [name, dist] : dists) {
    oss << name << " count=" << dist.count
        << " mean=" << FormatDouble(dist.Mean());
    if (!dist.empty()) {
      oss << " min=" << FormatDouble(dist.min)
          << " max=" << FormatDouble(dist.max);
    }
    oss << "\n";
  }
  oss << "# histograms\n";
  for (const auto& [name, snap] : hists) {
    oss << name << " count=" << snap.count
        << " mean=" << FormatDouble(snap.Mean())
        << " p50=" << FormatDouble(snap.Percentile(0.50))
        << " p90=" << FormatDouble(snap.Percentile(0.90))
        << " p99=" << FormatDouble(snap.Percentile(0.99)) << "\n";
  }
  return oss.str();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
  // Dists are zeroed in place like the other kinds, so a registered name
  // stays visible (as an empty dist) in snapshots after a reset.
  for (auto& [name, dist] : dists_) dist = MetricDist{};
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace seq
