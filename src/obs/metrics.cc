#include "obs/metrics.h"

#include <algorithm>
#include <sstream>

#include "common/string_util.h"

namespace seq {

void MetricsRegistry::Add(const std::string& name, int64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
}

void MetricsRegistry::Observe(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  MetricDist& d = dists_[name];
  if (d.count == 0) {
    d.min = value;
    d.max = value;
  } else {
    d.min = std::min(d.min, value);
    d.max = std::max(d.max, value);
  }
  ++d.count;
  d.sum += value;
}

int64_t MetricsRegistry::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

MetricDist MetricsRegistry::GetDist(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = dists_.find(name);
  return it == dists_.end() ? MetricDist{} : it->second;
}

std::map<std::string, int64_t> MetricsRegistry::CounterSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

std::map<std::string, MetricDist> MetricsRegistry::DistSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dists_;
}

std::string MetricsRegistry::ToString() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream oss;
  for (const auto& [name, value] : counters_) {
    oss << name << "=" << value << "\n";
  }
  for (const auto& [name, d] : dists_) {
    oss << name << " count=" << d.count << " mean=" << FormatDouble(d.Mean())
        << " min=" << FormatDouble(d.min) << " max=" << FormatDouble(d.max)
        << "\n";
  }
  return oss.str();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  dists_.clear();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace seq
