#ifndef SEQ_OBS_EXPORT_H_
#define SEQ_OBS_EXPORT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/query_registry.h"
#include "obs/slow_query_log.h"

namespace seq {

/// One coherent point-in-time capture of the always-on telemetry layer:
/// every exporter renders from this struct, so the Prometheus and JSON
/// views of a single capture always agree.
struct TelemetrySnapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, MetricDist> dists;
  std::map<std::string, HistogramSnapshot> histograms;
  std::vector<LiveQueryInfo> live;
  std::vector<CompletedQueryInfo> recent;
  std::vector<SlowQueryDigestStats> slow;
  double slow_threshold_ms = 0.0;
  int64_t slow_dropped_digests = 0;
  int64_t queries_started = 0;
  int64_t queries_completed = 0;
};

/// Captures the process-global metrics registry, query registry, and
/// slow-query log. Each source is snapshotted atomically with respect to
/// itself; the three sources are read in sequence, so cross-source
/// counts can skew by whatever completed in between.
TelemetrySnapshot CaptureTelemetry();

/// Renders the snapshot in the Prometheus text exposition format.
/// Metric names are sanitized to [a-z0-9_] with a `seq_` prefix
/// ("engine.runs" -> "seq_engine_runs"); histograms emit cumulative
/// `_bucket{le=...}` series plus `_sum`/`_count`; dists emit
/// `_count`/`_sum` always and `_min`/`_max` gauges only when they have
/// observations. Live/recent query detail is summarized as gauges
/// (seq_queries_live etc.) — per-query text does not belong in
/// Prometheus labels.
std::string RenderPrometheus(const TelemetrySnapshot& snap);

/// Renders the full snapshot as a single JSON object, including live and
/// recent query records and the slow-query digest table.
std::string RenderJson(const TelemetrySnapshot& snap);

}  // namespace seq

#endif  // SEQ_OBS_EXPORT_H_
