#ifndef SEQ_OBS_HISTOGRAM_H_
#define SEQ_OBS_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace seq {

/// A point-in-time copy of a Histogram's bucket counts, for percentile
/// estimation and export. Buckets are fixed quarter-octave (factor
/// 2^(1/4)) log-scale: bucket 0 holds values <= 1, bucket i holds values
/// in (2^((i-1)/4), 2^(i/4)], and the last bucket absorbs everything
/// above the largest boundary (its upper bound renders as +Inf).
struct HistogramSnapshot {
  std::vector<int64_t> counts;  ///< one entry per bucket, non-cumulative
  int64_t count = 0;            ///< total observations
  double sum = 0.0;             ///< sum of observed values

  bool empty() const { return count == 0; }
  double Mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }

  /// Estimated q-quantile (q in [0, 1]) by linear interpolation inside
  /// the bucket containing the target rank. With quarter-octave buckets
  /// the estimate is within ~19% of the exact value for any input
  /// distribution; tests/obs_test.cc pins that against exact
  /// percentiles. 0 when empty.
  double Percentile(double q) const;
};

/// A fixed-boundary log-scale latency histogram, safe to Record() into
/// from any number of threads concurrently with snapshot readers: buckets
/// are relaxed atomics, never a mutex, so morsel workers and concurrent
/// queries do not serialize on observation. This is the always-on
/// percentile layer of the metrics registry — counters say how often,
/// histograms say how slow (p50/p90/p99), distributions keep exact
/// min/mean/max.
///
/// Boundaries are value-agnostic powers of 2^(1/4) so one shape serves
/// microseconds, pages, or rows; `kNumBuckets` = 128 covers (0, 2^31.75]
/// before the overflow bucket.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 128;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Records one observation. Lock-free; relaxed ordering (telemetry
  /// readers tolerate momentarily torn count-vs-sum views).
  void Record(double value);

  /// Copies the current counters. Relaxed reads: concurrent Record()s may
  /// or may not be included, but every snapshot is a valid history.
  HistogramSnapshot Snapshot() const;

  int64_t count() const { return count_.load(std::memory_order_relaxed); }

  /// Upper bound of bucket `i` (2^(i/4)); the last bucket reports the
  /// largest finite boundary here but is rendered as +Inf by exporters.
  static double UpperBound(size_t i);

  /// Bucket index for `value` (exposed for tests).
  static size_t BucketIndex(double value);

  void Reset();

 private:
  std::array<std::atomic<int64_t>, kNumBuckets> buckets_{};
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

}  // namespace seq

#endif  // SEQ_OBS_HISTOGRAM_H_
