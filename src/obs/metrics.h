#ifndef SEQ_OBS_METRICS_H_
#define SEQ_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace seq {

/// A monotonically accumulating distribution: count / sum / min / max of
/// every observed value (e.g. per-query optimize time).
struct MetricDist {
  int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;

  double Mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
};

/// A small process-wide metrics registry: named counters and value
/// distributions, safe to update from concurrent queries. This is the
/// always-on layer of the observability stack — counters are cheap enough
/// to leave enabled in production, unlike per-operator profiling which is
/// opt-in per query.
class MetricsRegistry {
 public:
  /// Adds `delta` to the counter `name` (created at zero on first use).
  void Add(const std::string& name, int64_t delta = 1);

  /// Records one observation of `value` under `name`.
  void Observe(const std::string& name, double value);

  int64_t Get(const std::string& name) const;
  MetricDist GetDist(const std::string& name) const;

  std::map<std::string, int64_t> CounterSnapshot() const;
  std::map<std::string, MetricDist> DistSnapshot() const;

  /// `name=value` lines, sorted by name (counters then distributions).
  std::string ToString() const;

  void Reset();

  /// The process-global registry the engine reports into.
  static MetricsRegistry& Global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, int64_t> counters_;
  std::map<std::string, MetricDist> dists_;
};

}  // namespace seq

#endif  // SEQ_OBS_METRICS_H_
