#ifndef SEQ_OBS_METRICS_H_
#define SEQ_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "obs/histogram.h"

namespace seq {

/// A monotonically accumulating distribution: count / sum / min / max of
/// every observed value (e.g. per-query optimize time).
///
/// min and max are only meaningful when `count > 0`; an empty dist (the
/// zero-initialized default, and what GetDist returns for an unknown
/// name) must not render them as real observations of 0.0 — use the
/// Min()/Max() accessors or check empty() instead of reading the fields.
struct MetricDist {
  int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;

  bool empty() const { return count == 0; }
  double Mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
  /// Smallest / largest observed value; 0.0 on an empty dist (check
  /// empty() to distinguish "no observations" from "observed 0.0").
  double Min() const { return count > 0 ? min : 0.0; }
  double Max() const { return count > 0 ? max : 0.0; }
};

/// A striped atomic counter: increments land on one of kStripes
/// cache-line-padded slots selected by the calling thread, so concurrent
/// writers (morsel workers bumping the same hot counter) do not contend
/// on a single cache line — and never on the registry mutex. Value()
/// sums the stripes; reads are relaxed and may miss in-flight adds.
class MetricCounter {
 public:
  static constexpr size_t kStripes = 8;

  void Add(int64_t delta = 1);
  int64_t Value() const;
  void Reset();

 private:
  struct alignas(64) Slot {
    std::atomic<int64_t> v{0};
  };
  std::array<Slot, kStripes> slots_{};
};

/// A small process-wide metrics registry: named counters, value
/// distributions, and log-scale latency histograms, safe to update from
/// concurrent queries. This is the always-on layer of the observability
/// stack — cheap enough to leave enabled in production, unlike
/// per-operator profiling which is opt-in per query.
///
/// Locking: the registry mutex guards only the name->object maps.
/// Counters and histograms live behind stable pointers (objects are
/// heap-allocated and never destroyed before the registry), so hot paths
/// resolve the name once via Counter()/GetHistogram() and then update
/// lock-free forever after. Distributions stay mutex-guarded — they are
/// per-query cold paths with multi-field updates.
class MetricsRegistry {
 public:
  /// Adds `delta` to the counter `name` (created at zero on first use).
  /// Convenience over Counter(name).Add(delta): pays one map lookup under
  /// the mutex. Hot paths should cache the Counter reference.
  void Add(const std::string& name, int64_t delta = 1);

  /// The named counter, created on first use. The reference stays valid
  /// for the registry's lifetime (including across Reset, which zeroes
  /// counters in place), so callers may cache it and Add lock-free.
  MetricCounter& Counter(const std::string& name);

  /// Records one observation of `value` under `name`.
  void Observe(const std::string& name, double value);

  /// The named latency histogram, created on first use; same stable
  /// reference guarantee as Counter(). Record() on it is lock-free.
  Histogram& GetHistogram(const std::string& name);

  int64_t Get(const std::string& name) const;
  MetricDist GetDist(const std::string& name) const;
  HistogramSnapshot GetHistogramSnapshot(const std::string& name) const;

  std::map<std::string, int64_t> CounterSnapshot() const;
  std::map<std::string, MetricDist> DistSnapshot() const;
  std::map<std::string, HistogramSnapshot> HistogramSnapshots() const;

  /// Stable, documented snapshot rendering the tests and exporters rely
  /// on: three sections in fixed order, each introduced by a `# <kind>`
  /// header line and sorted by metric name —
  ///
  ///   # counters
  ///   <name>=<value>
  ///   # dists
  ///   <name> count=<n> mean=<m> min=<lo> max=<hi>   (min/max omitted when
  ///                                                  count == 0)
  ///   # histograms
  ///   <name> count=<n> mean=<m> p50=<a> p90=<b> p99=<c>
  ///
  /// Empty sections keep their header, so consumers can always split on
  /// the three markers.
  std::string ToString() const;

  /// Zeroes every metric in place (counter/histogram references handed
  /// out earlier stay valid).
  void Reset();

  /// The process-global registry the engine reports into.
  static MetricsRegistry& Global();

 private:
  mutable std::mutex mu_;
  // unique_ptr values so the objects' addresses survive map rehash /
  // rebalance — that is what makes the cached-reference contract safe.
  std::map<std::string, std::unique_ptr<MetricCounter>> counters_;
  std::map<std::string, MetricDist> dists_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace seq

#endif  // SEQ_OBS_METRICS_H_
