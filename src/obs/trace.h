#ifndef SEQ_OBS_TRACE_H_
#define SEQ_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace seq {

/// One argument attached to a trace event. Values are either numbers or
/// strings so the emitted JSON stays typed (Chrome's trace viewer renders
/// numeric args in its detail pane and summaries).
struct TraceArg {
  std::string key;
  std::string str_value;
  double num_value = 0.0;
  bool is_number = false;

  static TraceArg Num(std::string key, double v) {
    TraceArg a;
    a.key = std::move(key);
    a.num_value = v;
    a.is_number = true;
    return a;
  }
  static TraceArg Str(std::string key, std::string v) {
    TraceArg a;
    a.key = std::move(key);
    a.str_value = std::move(v);
    return a;
  }
};

/// One event in the Chrome trace-event format (the `traceEvents` array of
/// chrome://tracing / Perfetto's legacy JSON importer). Only the phases the
/// engine emits are modeled: complete spans ("X", with a duration) and
/// instants ("i").
struct TraceEvent {
  std::string name;
  std::string category;
  char phase = 'X';
  int64_t ts_us = 0;   ///< start, microseconds
  int64_t dur_us = 0;  ///< duration, microseconds (complete events)
  int64_t tid = 0;     ///< lane; used to group optimizer vs executor events
  std::vector<TraceArg> args;
};

/// Records trace events and serializes them as Chrome trace-event JSON:
///   {"traceEvents": [{"name": ..., "ph": "X", "ts": ..., "dur": ...}, ...]}
/// The recorder itself carries no clock; callers supply timestamps (the
/// profiling layer reconstructs them from per-operator inclusive times, so
/// recording cost is paid only when a trace is requested).
class TraceRecorder {
 public:
  void AddComplete(std::string name, std::string category, int64_t ts_us,
                   int64_t dur_us, int64_t tid = 0,
                   std::vector<TraceArg> args = {});
  void AddInstant(std::string name, std::string category, int64_t ts_us,
                  int64_t tid = 0, std::vector<TraceArg> args = {});

  const std::vector<TraceEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  void Clear() { events_.clear(); }

  /// The full trace as a Chrome trace-event JSON document.
  std::string ToJson() const;

 private:
  std::vector<TraceEvent> events_;
};

/// Escapes `s` for embedding in a JSON string literal (quotes, backslashes,
/// control characters).
std::string JsonEscape(const std::string& s);

}  // namespace seq

#endif  // SEQ_OBS_TRACE_H_
