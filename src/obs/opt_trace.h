#ifndef SEQ_OBS_OPT_TRACE_H_
#define SEQ_OBS_OPT_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace seq {

class TraceRecorder;

/// One optimizer decision point: a rewrite applied or rejected, a plan
/// candidate costed, or a final choice. `cost < 0` means "no cost attached"
/// (e.g. rewrite events).
struct OptTraceEntry {
  std::string stage;   ///< "rewrite", "rewrite-rejected", "candidate", "choice"
  std::string detail;  ///< human-readable description
  double cost = -1.0;  ///< estimated cost, when the entry is a candidate
  bool chosen = false; ///< true for the winning candidate of a decision
};

/// A record of what the optimizer did and why for one Optimize() call:
/// rewrites applied and rejected, plan candidates enumerated with their
/// estimated costs, which one won each decision, and the enumeration
/// counters. Collection is opt-in (OptimizerOptions::collect_trace); the
/// entry cap keeps pathological DP blocks from ballooning the trace.
struct OptTrace {
  static constexpr size_t kMaxEntries = 20000;

  std::vector<OptTraceEntry> entries;
  int64_t dropped_entries = 0;  ///< entries beyond the cap (count kept)

  // Enumeration counters (mirrors PlannerStats; copied so this struct has
  // no optimizer dependency).
  int64_t plans_considered = 0;
  int64_t plans_retained_max = 0;
  int64_t join_blocks = 0;
  int64_t largest_block = 0;
  int64_t nonunit_blocks = 0;

  int64_t optimize_us = 0;  ///< wall time of the whole Optimize() call

  void Add(std::string stage, std::string detail, double cost = -1.0,
           bool chosen = false);

  /// Entries of one stage, in order.
  std::vector<const OptTraceEntry*> Stage(const std::string& stage) const;

  /// Multi-line rendering for EXPLAIN ANALYZE output.
  std::string ToString() const;

  /// Appends the trace as instant events on the optimizer lane (tid 0),
  /// ending at `end_ts_us` so it aligns with the execution span that
  /// follows.
  void EmitTraceEvents(TraceRecorder* recorder, int64_t start_ts_us) const;
};

}  // namespace seq

#endif  // SEQ_OBS_OPT_TRACE_H_
