#ifndef SEQ_OBS_QUERY_REGISTRY_H_
#define SEQ_OBS_QUERY_REGISTRY_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace seq {

/// Lifecycle state of a live query, updated by the engine as the run
/// progresses. `kDegraded` means a cache-memory budget forced the
/// graceful cache-free re-plan (docs/robustness.md); the query is still
/// running. `kQueued` means the query is waiting in the process-wide
/// scheduler's admission queue (docs/execution.md) for a slot to run its
/// morsels on the shared worker pool. `kSuspended` means the query's
/// operator state is parked in a checkpoint file while it waits to be
/// readmitted (docs/robustness.md); the run is still live and resumes in
/// place once a slot frees up.
enum class QueryState {
  kOptimizing = 0,
  kExecuting = 1,
  kDegraded = 2,
  kQueued = 3,
  kSuspended = 4,
};

const char* QueryStateName(QueryState state);

/// Live-progress counters for one running query, updated cooperatively
/// from the executor's driving loops (serial and morsel workers) via
/// relaxed atomics — workers never take a lock to report progress, and
/// snapshot readers never block workers. Owned by the QueryRegistry
/// entry; the executor sees it as ExecOptions::telemetry.
struct QueryTelemetry {
  std::atomic<int64_t> rows{0};      ///< output rows produced so far
  std::atomic<int64_t> pages{0};     ///< pages charged so far (stream+probe)
  std::atomic<int> workers{0};       ///< worker threads currently executing
  std::atomic<int> morsels_done{0};  ///< completed work units (parallel runs)
  std::atomic<int> morsels_total{0};
  std::atomic<int> state{static_cast<int>(QueryState::kOptimizing)};
  /// Microseconds spent waiting in the scheduler's admission queue (0 for
  /// serial queries and uncontended admissions). Written once by the
  /// executor when admission completes.
  std::atomic<int64_t> queued_us{0};
  /// True when the run executed a parameterized-plan-cache hit (the
  /// optimizer was skipped). Set once by the engine before execution.
  std::atomic<bool> plan_cached{false};
  /// Cooperative suspend request (`.suspend <id>` / RequestSuspend): the
  /// executor polls this at chunk boundaries when the run is
  /// checkpoint-enabled, and ignores it otherwise.
  std::atomic<bool> suspend_requested{false};
};

/// Point-in-time view of one live query.
struct LiveQueryInfo {
  uint64_t id = 0;
  uint64_t session_id = 0;  ///< owning client session (0 = direct call)
  std::string text;    ///< normalized (unparsed) query text
  std::string digest;  ///< literal-parameterized shape key
  QueryState state = QueryState::kOptimizing;
  int64_t rows = 0;
  int64_t pages = 0;
  int workers = 0;
  int morsels_done = 0;
  int morsels_total = 0;
  int64_t elapsed_us = 0;
  int64_t queued_us = 0;     ///< time spent in the admission queue
  bool plan_cached = false;  ///< running on a plan-cache hit
};

/// One finished query in the registry's completion ring.
struct CompletedQueryInfo {
  uint64_t id = 0;
  uint64_t session_id = 0;  ///< owning client session (0 = direct call)
  std::string text;
  std::string digest;
  std::string status = "OK";  ///< StatusCodeName of the final status
  bool ok = true;
  bool degraded = false;     ///< finished on the cache-free fallback plan
  bool plan_cached = false;  ///< executed a parameterized-plan-cache hit
  int64_t wall_us = 0;       ///< includes any admission-queue wait
  int64_t queued_us = 0;     ///< portion of wall_us spent queued
  int64_t rows = 0;
  int64_t pages = 0;
};

/// The process-wide registry of queries: every Engine run registers
/// itself here, is visible while running (with live rows/pages/worker
/// counts), and lands in a fixed-size ring of recently completed queries.
/// This is the "what is running right now, and what just ran" layer of
/// the observability stack — always on, queried by the seqsh `.queries`
/// command and the telemetry exporters.
///
/// Locking: the registry mutex guards only the live map and the ring.
/// Per-query progress flows through QueryTelemetry's relaxed atomics, so
/// the mutex is taken twice per query (Start/Finish) plus once per
/// snapshot read — never inside executor loops.
class QueryRegistry {
 public:
  /// RAII registration of one query run. Move-only; if destroyed without
  /// an explicit Finish (an early error return in the engine), the query
  /// is completed as failed with status "Internal".
  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& other) noexcept { *this = std::move(other); }
    Ticket& operator=(Ticket&& other) noexcept;
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    ~Ticket();

    /// False when the registry was disabled at Start — all other calls
    /// are no-ops then and telemetry() is null.
    bool active() const { return entry_ != nullptr; }
    uint64_t id() const;
    QueryTelemetry* telemetry() const;
    void set_state(QueryState state);
    /// Marks the run as executing a plan-cache hit (sticky).
    void set_plan_cached();

    /// Completes the query: moves it from the live map into the ring and
    /// returns the completion record (rows/pages read from the telemetry
    /// atomics, wall time measured from Start). Idempotent; the inactive
    /// ticket returns a default record.
    CompletedQueryInfo Finish(bool ok, const std::string& status_name);

   private:
    friend class QueryRegistry;
    QueryRegistry* registry_ = nullptr;
    std::shared_ptr<struct QueryRegistryEntry> entry_;
  };

  /// Registers a query and returns its RAII ticket. Ids are
  /// monotonically increasing across the process. A nonzero `session_id`
  /// attributes the run to a client session (docs/server.md). When
  /// disabled, returns an inactive ticket and stores nothing.
  Ticket Start(std::string text, std::string digest, uint64_t session_id = 0);

  /// Live queries, in id (= start) order.
  std::vector<LiveQueryInfo> Live() const;

  /// Flags the live query `id` for cooperative suspension at its next
  /// chunk boundary. Returns false when no such query is live. Queries
  /// running without checkpointing enabled never observe the flag.
  bool RequestSuspend(uint64_t id);

  /// The completion ring, most recent first.
  std::vector<CompletedQueryInfo> Recent() const;

  int64_t started() const { return started_.load(std::memory_order_relaxed); }
  int64_t completed() const {
    return completed_.load(std::memory_order_relaxed);
  }
  size_t live_count() const;

  /// Process-wide kill switch (for baseline benchmarking and embedders
  /// that want zero telemetry): a disabled registry hands out inactive
  /// tickets, and Engine skips text normalization entirely.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Capacity of the completed-query ring (default 128).
  void set_ring_capacity(size_t n);

  /// Clears the ring and the started/completed totals (live queries are
  /// untouched — they finish into the cleared ring). Test hook.
  void Reset();

  /// The process-global registry the engine reports into.
  static QueryRegistry& Global();

 private:
  friend class Ticket;
  CompletedQueryInfo FinishEntry(
      const std::shared_ptr<struct QueryRegistryEntry>& entry, bool ok,
      const std::string& status_name);

  mutable std::mutex mu_;
  std::map<uint64_t, std::shared_ptr<struct QueryRegistryEntry>> live_;
  std::deque<CompletedQueryInfo> ring_;
  size_t ring_capacity_ = 128;
  std::atomic<uint64_t> next_id_{1};
  std::atomic<int64_t> started_{0};
  std::atomic<int64_t> completed_{0};
  std::atomic<bool> enabled_{true};
};

}  // namespace seq

#endif  // SEQ_OBS_QUERY_REGISTRY_H_
