#ifndef SEQ_OBS_PROFILE_H_
#define SEQ_OBS_PROFILE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "obs/opt_trace.h"
#include "storage/access_stats.h"

namespace seq {

class TraceRecorder;

/// Runtime profile of one physical operator: the optimizer's estimates for
/// the node next to what execution actually did. Actual counters are
/// *inclusive* of the subtree below the operator (the pull model means
/// children only run inside parent calls); Self*() subtracts the children.
struct OperatorProfile {
  // Identity (copied from the PhysNode so rendering needs no plan access).
  std::string label;  ///< e.g. "Select [stream] value > 10"

  // Optimizer estimates.
  double est_cost = 0.0;
  double est_rows = 0.0;
  int64_t span_len = 0;  ///< length of the node's required span

  // Measured, inclusive of children.
  int64_t calls = 0;         ///< Next()/NextAtOrAfter()/Probe() invocations
  int64_t rows_out = 0;      ///< records this operator produced
  int64_t wall_ns = 0;       ///< wall time inside the operator subtree
  double sim_cost = 0.0;     ///< simulated-cost delta charged in the subtree
  int64_t cache_hits = 0;    ///< operator-cache hits in the subtree
  int64_t cache_stores = 0;  ///< operator-cache stores in the subtree

  std::vector<std::unique_ptr<OperatorProfile>> children;

  OperatorProfile* AddChild();

  int64_t SelfWallNs() const;
  double SelfSimCost() const;

  /// Q-error of the row estimate: max(est/act, act/est) with both sides
  /// floored at one record, the standard symmetric misestimation factor.
  double QError() const;

  /// Preorder visit of this subtree (depth starts at `depth`).
  void Visit(const std::function<void(const OperatorProfile&, int)>& fn,
             int depth = 0) const;
};

/// The complete observability record of one profiled query run: the
/// operator tree with estimated-vs-actual annotations, roll-up access
/// stats, and the optimizer's decision trace. Attached to the
/// QueryResult by Run(query, RunOptions{.profile = true}) and rendered
/// by ExplainAnalyze.
struct QueryProfile {
  std::unique_ptr<OperatorProfile> root;  ///< the Start operator
  int64_t total_wall_ns = 0;              ///< end-to-end execution wall time
  AccessStats stats;                      ///< roll-up of all charges
  OptTrace optimizer;                     ///< what the optimizer did and why

  /// Free-form execution events worth surfacing to the reader — e.g. the
  /// graceful-degradation record appended when a cache-memory budget forced
  /// a re-plan with operator caches disabled. Rendered by ToString.
  std::vector<std::string> notes;

  /// Clears everything and installs a fresh (empty) root node.
  void Reset();

  /// Largest / mean per-node row Q-error over the operator tree — the
  /// cost-model drift summary. 1.0 means every estimate was exact.
  double MaxQError() const;
  double MeanQError() const;

  /// The EXPLAIN ANALYZE rendering: annotated plan tree, optimizer trace,
  /// drift summary, totals.
  std::string ToString() const;

  /// Emits the profile as Chrome trace events: the optimizer span (lane 0)
  /// followed by nested per-operator spans (lane 1). Durations are the
  /// measured inclusive wall times; start timestamps are reconstructed
  /// depth-first, which yields a correctly nested flame graph.
  void EmitTraceEvents(TraceRecorder* recorder) const;
};

}  // namespace seq

#endif  // SEQ_OBS_PROFILE_H_
