#include "obs/opt_trace.h"

#include <sstream>

#include "common/string_util.h"
#include "obs/trace.h"

namespace seq {

void OptTrace::Add(std::string stage, std::string detail, double cost,
                   bool chosen) {
  if (entries.size() >= kMaxEntries) {
    ++dropped_entries;
    return;
  }
  OptTraceEntry e;
  e.stage = std::move(stage);
  e.detail = std::move(detail);
  e.cost = cost;
  e.chosen = chosen;
  entries.push_back(std::move(e));
}

std::vector<const OptTraceEntry*> OptTrace::Stage(
    const std::string& stage) const {
  std::vector<const OptTraceEntry*> out;
  for (const OptTraceEntry& e : entries) {
    if (e.stage == stage) out.push_back(&e);
  }
  return out;
}

std::string OptTrace::ToString() const {
  std::ostringstream oss;
  oss << "optimize time: " << optimize_us << " us\n";
  oss << "enumeration: plans_considered=" << plans_considered
      << " plans_retained_max=" << plans_retained_max
      << " join_blocks=" << join_blocks
      << " largest_block=" << largest_block
      << " nonunit_blocks=" << nonunit_blocks << "\n";
  for (const OptTraceEntry& e : entries) {
    oss << "  [" << e.stage << "] " << e.detail;
    if (e.cost >= 0.0) oss << " cost=" << FormatDouble(e.cost);
    if (e.chosen) oss << "  <- chosen";
    oss << "\n";
  }
  if (dropped_entries > 0) {
    oss << "  ... (" << dropped_entries << " entries dropped)\n";
  }
  return oss.str();
}

void OptTrace::EmitTraceEvents(TraceRecorder* recorder,
                               int64_t start_ts_us) const {
  if (recorder == nullptr) return;
  recorder->AddComplete(
      "optimize", "optimizer", start_ts_us, optimize_us, /*tid=*/0,
      {TraceArg::Num("plans_considered",
                     static_cast<double>(plans_considered)),
       TraceArg::Num("plans_retained_max",
                     static_cast<double>(plans_retained_max)),
       TraceArg::Num("join_blocks", static_cast<double>(join_blocks))});
  // Instants are spread across the optimize span so the viewer shows the
  // decision sequence in order (exact sub-phase timing is not recorded).
  int64_t n = static_cast<int64_t>(entries.size());
  for (int64_t i = 0; i < n; ++i) {
    const OptTraceEntry& e = entries[static_cast<size_t>(i)];
    int64_t ts = start_ts_us + (n > 0 ? (optimize_us * i) / n : 0);
    std::vector<TraceArg> args = {TraceArg::Str("detail", e.detail)};
    if (e.cost >= 0.0) args.push_back(TraceArg::Num("cost", e.cost));
    if (e.chosen) args.push_back(TraceArg::Str("chosen", "true"));
    recorder->AddInstant(e.stage, "optimizer", ts, /*tid=*/0,
                         std::move(args));
  }
}

}  // namespace seq
