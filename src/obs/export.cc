#include "obs/export.h"

#include <cctype>
#include <sstream>

#include "common/string_util.h"
#include "obs/trace.h"

namespace seq {

namespace {

// Prometheus metric names must match [a-zA-Z_:][a-zA-Z0-9_:]*; our dotted
// lower-case names ("engine.run_us") map onto that by replacing every
// other character with '_' and prefixing the product namespace.
std::string PromName(const std::string& name) {
  std::string out = "seq_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (std::isalnum(u)) {
      out.push_back(static_cast<char>(std::tolower(u)));
    } else {
      out.push_back('_');
    }
  }
  return out;
}

void PromSimple(std::ostringstream& oss, const std::string& name,
                const char* type, const std::string& value) {
  oss << "# TYPE " << name << " " << type << "\n";
  oss << name << " " << value << "\n";
}

}  // namespace

TelemetrySnapshot CaptureTelemetry() {
  TelemetrySnapshot snap;
  MetricsRegistry& metrics = MetricsRegistry::Global();
  snap.counters = metrics.CounterSnapshot();
  snap.dists = metrics.DistSnapshot();
  snap.histograms = metrics.HistogramSnapshots();
  QueryRegistry& registry = QueryRegistry::Global();
  snap.live = registry.Live();
  snap.recent = registry.Recent();
  snap.queries_started = registry.started();
  snap.queries_completed = registry.completed();
  SlowQueryLog& slow = SlowQueryLog::Global();
  snap.slow = slow.Snapshot();
  snap.slow_threshold_ms = slow.threshold_ms();
  snap.slow_dropped_digests = slow.dropped_digests();
  return snap;
}

std::string RenderPrometheus(const TelemetrySnapshot& snap) {
  std::ostringstream oss;
  for (const auto& [name, value] : snap.counters) {
    PromSimple(oss, PromName(name), "counter", std::to_string(value));
  }
  for (const auto& [name, dist] : snap.dists) {
    // A dist is a Prometheus summary with no quantiles: _sum and _count
    // series. min/max ride along as gauges, and only when the dist has
    // observations — an empty dist's min/max fields are not data.
    const std::string base = PromName(name);
    oss << "# TYPE " << base << " summary\n";
    oss << base << "_sum " << FormatDouble(dist.sum) << "\n";
    oss << base << "_count " << dist.count << "\n";
    if (!dist.empty()) {
      PromSimple(oss, base + "_min", "gauge", FormatDouble(dist.min));
      PromSimple(oss, base + "_max", "gauge", FormatDouble(dist.max));
    }
  }
  for (const auto& [name, hist] : snap.histograms) {
    const std::string base = PromName(name);
    oss << "# TYPE " << base << " histogram\n";
    // Cumulative buckets; empty buckets are elided (the cumulative count
    // carries through), but +Inf is always present as Prometheus requires.
    int64_t cumulative = 0;
    for (size_t i = 0; i < hist.counts.size(); ++i) {
      if (hist.counts[i] == 0) continue;
      cumulative += hist.counts[i];
      oss << base << "_bucket{le=\"" << FormatDouble(Histogram::UpperBound(i))
          << "\"} " << cumulative << "\n";
    }
    oss << base << "_bucket{le=\"+Inf\"} " << cumulative << "\n";
    oss << base << "_sum " << FormatDouble(hist.sum) << "\n";
    oss << base << "_count " << cumulative << "\n";
  }
  PromSimple(oss, "seq_queries_live", "gauge",
             std::to_string(snap.live.size()));
  PromSimple(oss, "seq_queries_started", "counter",
             std::to_string(snap.queries_started));
  PromSimple(oss, "seq_queries_completed", "counter",
             std::to_string(snap.queries_completed));
  PromSimple(oss, "seq_slow_query_threshold_ms", "gauge",
             FormatDouble(snap.slow_threshold_ms));
  PromSimple(oss, "seq_slow_query_digests", "gauge",
             std::to_string(snap.slow.size()));
  PromSimple(oss, "seq_slow_query_dropped_digests", "counter",
             std::to_string(snap.slow_dropped_digests));
  return oss.str();
}

namespace {

void JsonDist(std::ostringstream& oss, const MetricDist& dist) {
  oss << "{\"count\":" << dist.count << ",\"sum\":" << FormatDouble(dist.sum)
      << ",\"mean\":" << FormatDouble(dist.Mean());
  if (!dist.empty()) {
    oss << ",\"min\":" << FormatDouble(dist.min)
        << ",\"max\":" << FormatDouble(dist.max);
  }
  oss << "}";
}

void JsonHistogram(std::ostringstream& oss, const HistogramSnapshot& hist) {
  oss << "{\"count\":" << hist.count << ",\"sum\":" << FormatDouble(hist.sum)
      << ",\"mean\":" << FormatDouble(hist.Mean())
      << ",\"p50\":" << FormatDouble(hist.Percentile(0.50))
      << ",\"p90\":" << FormatDouble(hist.Percentile(0.90))
      << ",\"p99\":" << FormatDouble(hist.Percentile(0.99)) << "}";
}

void JsonLiveQuery(std::ostringstream& oss, const LiveQueryInfo& q) {
  oss << "{\"id\":" << q.id << ",\"session\":" << q.session_id
      << ",\"text\":\"" << JsonEscape(q.text)
      << "\",\"digest\":\"" << JsonEscape(q.digest) << "\",\"state\":\""
      << QueryStateName(q.state) << "\",\"rows\":" << q.rows
      << ",\"pages\":" << q.pages << ",\"workers\":" << q.workers
      << ",\"morsels_done\":" << q.morsels_done
      << ",\"morsels_total\":" << q.morsels_total
      << ",\"elapsed_us\":" << q.elapsed_us
      << ",\"queued_us\":" << q.queued_us << "}";
}

void JsonCompletedQuery(std::ostringstream& oss, const CompletedQueryInfo& q) {
  oss << "{\"id\":" << q.id << ",\"session\":" << q.session_id
      << ",\"text\":\"" << JsonEscape(q.text)
      << "\",\"digest\":\"" << JsonEscape(q.digest) << "\",\"status\":\""
      << JsonEscape(q.status) << "\",\"ok\":" << (q.ok ? "true" : "false")
      << ",\"degraded\":" << (q.degraded ? "true" : "false")
      << ",\"wall_us\":" << q.wall_us << ",\"queued_us\":" << q.queued_us
      << ",\"rows\":" << q.rows << ",\"pages\":" << q.pages << "}";
}

void JsonSlowDigest(std::ostringstream& oss, const SlowQueryDigestStats& d) {
  oss << "{\"digest\":\"" << JsonEscape(d.digest)
      << "\",\"count\":" << d.count
      << ",\"total_us\":" << FormatDouble(d.total_us)
      << ",\"mean_us\":" << FormatDouble(d.MeanUs())
      << ",\"min_us\":" << FormatDouble(d.min_us)
      << ",\"max_us\":" << FormatDouble(d.max_us)
      << ",\"total_rows\":" << d.total_rows
      << ",\"total_pages\":" << d.total_pages << ",\"worst\":{\"id\":"
      << d.worst_query_id << ",\"us\":" << FormatDouble(d.worst_us)
      << ",\"text\":\"" << JsonEscape(d.worst_text) << "\"},\"last_status\":\""
      << JsonEscape(d.last_status) << "\"}";
}

}  // namespace

std::string RenderJson(const TelemetrySnapshot& snap) {
  std::ostringstream oss;
  oss << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    if (!first) oss << ",";
    first = false;
    oss << "\"" << JsonEscape(name) << "\":" << value;
  }
  oss << "},\"dists\":{";
  first = true;
  for (const auto& [name, dist] : snap.dists) {
    if (!first) oss << ",";
    first = false;
    oss << "\"" << JsonEscape(name) << "\":";
    JsonDist(oss, dist);
  }
  oss << "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : snap.histograms) {
    if (!first) oss << ",";
    first = false;
    oss << "\"" << JsonEscape(name) << "\":";
    JsonHistogram(oss, hist);
  }
  oss << "},\"queries\":{\"started\":" << snap.queries_started
      << ",\"completed\":" << snap.queries_completed << ",\"live\":[";
  first = true;
  for (const auto& q : snap.live) {
    if (!first) oss << ",";
    first = false;
    JsonLiveQuery(oss, q);
  }
  oss << "],\"recent\":[";
  first = true;
  for (const auto& q : snap.recent) {
    if (!first) oss << ",";
    first = false;
    JsonCompletedQuery(oss, q);
  }
  oss << "]},\"slow_query_log\":{\"threshold_ms\":"
      << FormatDouble(snap.slow_threshold_ms)
      << ",\"dropped_digests\":" << snap.slow_dropped_digests
      << ",\"digests\":[";
  first = true;
  for (const auto& d : snap.slow) {
    if (!first) oss << ",";
    first = false;
    JsonSlowDigest(oss, d);
  }
  oss << "]}}";
  return oss.str();
}

}  // namespace seq
