#include "obs/histogram.h"

#include <algorithm>
#include <cmath>

namespace seq {

size_t Histogram::BucketIndex(double value) {
  if (!(value > 1.0)) return 0;  // also catches NaN and negatives
  // Bucket i holds (2^((i-1)/4), 2^(i/4)]: the smallest i whose upper
  // bound is >= value.
  const double idx = std::ceil(4.0 * std::log2(value));
  if (idx >= static_cast<double>(kNumBuckets - 1)) return kNumBuckets - 1;
  return static_cast<size_t>(idx);
}

double Histogram::UpperBound(size_t i) {
  return std::exp2(static_cast<double>(i) / 4.0);
}

void Histogram::Record(double value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // fetch_add on atomic<double> is C++20 but not universally lowered well;
  // a CAS loop is portable and this is a per-query (not per-row) path.
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + value,
                                     std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.counts.resize(kNumBuckets);
  for (size_t i = 0; i < kNumBuckets; ++i) {
    snap.counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

double HistogramSnapshot::Percentile(double q) const {
  // Sum the snapshot's buckets rather than trusting `count`: the two are
  // written by separate relaxed atomics, so a concurrent Record can leave
  // them one observation apart.
  int64_t total = 0;
  for (int64_t c : counts) total += c;
  if (total <= 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Target rank in [1, total] (nearest-rank with interpolation below).
  const double rank = q * static_cast<double>(total - 1) + 1.0;
  int64_t seen = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double lo_rank = static_cast<double>(seen) + 1.0;
    seen += counts[i];
    if (static_cast<double>(seen) < rank) continue;
    // Interpolate inside bucket i between its bounds.
    const double lo = i == 0 ? 0.0 : Histogram::UpperBound(i - 1);
    const double hi = Histogram::UpperBound(i);
    const double span_ranks = static_cast<double>(counts[i]);
    const double frac =
        span_ranks <= 1.0 ? 1.0 : (rank - lo_rank + 1.0) / span_ranks;
    return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
  }
  return Histogram::UpperBound(counts.size() - 1);
}

}  // namespace seq
