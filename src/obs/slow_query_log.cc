#include "obs/slow_query_log.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <sstream>

#include "common/string_util.h"

namespace seq {

void SlowQueryLog::Record(const std::string& digest, const std::string& text,
                          uint64_t query_id, double wall_us, int64_t rows,
                          int64_t pages, const std::string& status_name,
                          double queue_us) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = digests_.find(digest);
  if (it == digests_.end()) {
    if (digests_.size() >= kMaxDigests) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    it = digests_.emplace(digest, SlowQueryDigestStats{}).first;
    it->second.digest = digest;
    it->second.min_us = wall_us;
  }
  SlowQueryDigestStats& d = it->second;
  d.count += 1;
  d.total_us += wall_us;
  d.min_us = std::min(d.min_us, wall_us);
  d.max_us = std::max(d.max_us, wall_us);
  d.total_rows += rows;
  d.total_pages += pages;
  d.total_queue_us += queue_us;
  d.last_status = status_name;
  if (wall_us >= d.worst_us || d.worst_text.empty()) {
    d.worst_us = wall_us;
    d.worst_queue_us = queue_us;
    d.worst_text = text;
    d.worst_query_id = query_id;
  }
}

std::vector<SlowQueryDigestStats> SlowQueryLog::Snapshot() const {
  std::vector<SlowQueryDigestStats> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(digests_.size());
    for (const auto& [digest, stats] : digests_) out.push_back(stats);
  }
  std::sort(out.begin(), out.end(),
            [](const SlowQueryDigestStats& a, const SlowQueryDigestStats& b) {
              if (a.total_us != b.total_us) return a.total_us > b.total_us;
              return a.digest < b.digest;
            });
  return out;
}

std::string SlowQueryLog::ToString(size_t limit) const {
  std::vector<SlowQueryDigestStats> snap = Snapshot();
  std::ostringstream oss;
  oss << "slow-query log: threshold " << FormatDouble(threshold_ms())
      << "ms, " << snap.size() << " digest(s)";
  const int64_t dropped = dropped_digests();
  if (dropped > 0) oss << ", " << dropped << " dropped";
  oss << "\n";
  const size_t shown = std::min(limit, snap.size());
  for (size_t i = 0; i < shown; ++i) {
    const SlowQueryDigestStats& d = snap[i];
    oss << "  [" << d.count << "x] total=" << FormatDouble(d.total_us / 1000.0)
        << "ms mean=" << FormatDouble(d.MeanUs() / 1000.0)
        << "ms max=" << FormatDouble(d.max_us / 1000.0)
        << "ms rows=" << d.total_rows << " pages=" << d.total_pages;
    if (d.total_queue_us > 0.0) {
      oss << " queued=" << FormatDouble(d.total_queue_us / 1000.0) << "ms";
    }
    oss << " last=" << d.last_status << "\n";
    oss << "      shape: " << d.digest << "\n";
    oss << "      worst: #" << d.worst_query_id << " "
        << FormatDouble(d.worst_us / 1000.0) << "ms";
    if (d.worst_queue_us > 0.0) {
      // Attribute the worst run's wall time: how much was the admission
      // queue vs actually executing.
      oss << " (queued " << FormatDouble(d.worst_queue_us / 1000.0)
          << "ms + exec "
          << FormatDouble((d.worst_us - d.worst_queue_us) / 1000.0) << "ms)";
    }
    oss << " " << d.worst_text << "\n";
  }
  if (snap.size() > shown) {
    oss << "  ... (" << snap.size() << " digests total)\n";
  }
  return oss.str();
}

void SlowQueryLog::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  digests_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

SlowQueryLog& SlowQueryLog::Global() {
  static SlowQueryLog* log = [] {
    auto* l = new SlowQueryLog();
    if (const char* env = std::getenv("SEQ_SLOW_QUERY_MS")) {
      char* end = nullptr;
      const double ms = std::strtod(env, &end);
      if (end != env) l->set_threshold_ms(ms);
    }
    return l;
  }();
  return *log;
}

}  // namespace seq
