#include "obs/trace.h"

#include <cstdio>
#include <sstream>

namespace seq {

void TraceRecorder::AddComplete(std::string name, std::string category,
                                int64_t ts_us, int64_t dur_us, int64_t tid,
                                std::vector<TraceArg> args) {
  TraceEvent e;
  e.name = std::move(name);
  e.category = std::move(category);
  e.phase = 'X';
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.tid = tid;
  e.args = std::move(args);
  events_.push_back(std::move(e));
}

void TraceRecorder::AddInstant(std::string name, std::string category,
                               int64_t ts_us, int64_t tid,
                               std::vector<TraceArg> args) {
  TraceEvent e;
  e.name = std::move(name);
  e.category = std::move(category);
  e.phase = 'i';
  e.ts_us = ts_us;
  e.tid = tid;
  e.args = std::move(args);
  events_.push_back(std::move(e));
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

/// Doubles in trace args are counters/costs; plain printf formatting keeps
/// them valid JSON (no inf/nan — callers only pass finite values).
void AppendNumber(std::ostringstream* oss, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  *oss << buf;
}

}  // namespace

std::string TraceRecorder::ToJson() const {
  std::ostringstream oss;
  oss << "{\"traceEvents\":[";
  for (size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& e = events_[i];
    if (i > 0) oss << ",";
    oss << "{\"name\":\"" << JsonEscape(e.name) << "\",\"cat\":\""
        << JsonEscape(e.category) << "\",\"ph\":\"" << e.phase
        << "\",\"ts\":" << e.ts_us;
    if (e.phase == 'X') oss << ",\"dur\":" << e.dur_us;
    if (e.phase == 'i') oss << ",\"s\":\"t\"";
    oss << ",\"pid\":1,\"tid\":" << e.tid;
    if (!e.args.empty()) {
      oss << ",\"args\":{";
      for (size_t a = 0; a < e.args.size(); ++a) {
        const TraceArg& arg = e.args[a];
        if (a > 0) oss << ",";
        oss << "\"" << JsonEscape(arg.key) << "\":";
        if (arg.is_number) {
          AppendNumber(&oss, arg.num_value);
        } else {
          oss << "\"" << JsonEscape(arg.str_value) << "\"";
        }
      }
      oss << "}";
    }
    oss << "}";
  }
  oss << "],\"displayTimeUnit\":\"ms\"}";
  return oss.str();
}

}  // namespace seq
