#include "obs/profile.h"

#include <algorithm>
#include <sstream>

#include "common/string_util.h"
#include "obs/trace.h"

namespace seq {

OperatorProfile* OperatorProfile::AddChild() {
  children.push_back(std::make_unique<OperatorProfile>());
  return children.back().get();
}

int64_t OperatorProfile::SelfWallNs() const {
  int64_t self = wall_ns;
  for (const auto& c : children) self -= c->wall_ns;
  return std::max<int64_t>(self, 0);
}

double OperatorProfile::SelfSimCost() const {
  double self = sim_cost;
  for (const auto& c : children) self -= c->sim_cost;
  return std::max(self, 0.0);
}

double OperatorProfile::QError() const {
  double est = std::max(est_rows, 1.0);
  double act = std::max(static_cast<double>(rows_out), 1.0);
  return std::max(est / act, act / est);
}

void OperatorProfile::Visit(
    const std::function<void(const OperatorProfile&, int)>& fn,
    int depth) const {
  fn(*this, depth);
  for (const auto& c : children) c->Visit(fn, depth + 1);
}

void QueryProfile::Reset() {
  root = std::make_unique<OperatorProfile>();
  total_wall_ns = 0;
  stats = AccessStats{};
  optimizer = OptTrace{};
  notes.clear();
}

double QueryProfile::MaxQError() const {
  double q = 1.0;
  if (root == nullptr) return q;
  root->Visit([&q](const OperatorProfile& op, int) {
    q = std::max(q, op.QError());
  });
  return q;
}

double QueryProfile::MeanQError() const {
  double sum = 0.0;
  int64_t n = 0;
  if (root == nullptr) return 1.0;
  root->Visit([&](const OperatorProfile& op, int) {
    sum += op.QError();
    ++n;
  });
  return n > 0 ? sum / static_cast<double>(n) : 1.0;
}

namespace {

std::string FormatWall(int64_t ns) {
  if (ns >= 1000000) return FormatDouble(static_cast<double>(ns) / 1e6) + "ms";
  if (ns >= 1000) return FormatDouble(static_cast<double>(ns) / 1e3) + "us";
  return std::to_string(ns) + "ns";
}

}  // namespace

std::string QueryProfile::ToString() const {
  std::ostringstream oss;
  oss << "=== plan (estimated vs actual) ===\n";
  if (root != nullptr) {
    root->Visit([&oss](const OperatorProfile& op, int depth) {
      oss << std::string(static_cast<size_t>(depth) * 2, ' ') << op.label
          << "  (est_rows=" << FormatDouble(op.est_rows)
          << " act_rows=" << op.rows_out
          << " est_cost=" << FormatDouble(op.est_cost)
          << " act_cost=" << FormatDouble(op.sim_cost)
          << " calls=" << op.calls << " wall=" << FormatWall(op.wall_ns);
      if (op.cache_hits > 0 || op.cache_stores > 0) {
        oss << " cache_hits=" << op.cache_hits
            << " cache_stores=" << op.cache_stores;
      }
      oss << " q_err=" << FormatDouble(op.QError()) << ")\n";
    });
  }
  oss << "=== optimizer trace ===\n" << optimizer.ToString();
  oss << "=== cost-model drift ===\n";
  oss << "per-node row q-error: max=" << FormatDouble(MaxQError())
      << " mean=" << FormatDouble(MeanQError()) << "\n";
  if (root != nullptr) {
    double est = std::max(root->est_cost, 1e-9);
    double act = std::max(root->sim_cost, 1e-9);
    oss << "root cost drift: est=" << FormatDouble(root->est_cost)
        << " measured=" << FormatDouble(root->sim_cost)
        << " ratio=" << FormatDouble(act / est) << "\n";
  }
  if (!notes.empty()) {
    oss << "=== notes ===\n";
    for (const std::string& note : notes) oss << note << "\n";
  }
  oss << "=== totals ===\n";
  oss << "wall: " << FormatWall(total_wall_ns) << "\n";
  oss << "access: " << stats.ToString() << "\n";
  return oss.str();
}

namespace {

/// Lays the operator tree out as nested complete events starting at
/// `ts_us`; children are placed sequentially inside the parent span.
void EmitOperator(const OperatorProfile& op, int64_t ts_us,
                  TraceRecorder* recorder) {
  int64_t dur_us = op.wall_ns / 1000;
  recorder->AddComplete(
      op.label, "operator", ts_us, dur_us, /*tid=*/1,
      {TraceArg::Num("est_rows", op.est_rows),
       TraceArg::Num("act_rows", static_cast<double>(op.rows_out)),
       TraceArg::Num("est_cost", op.est_cost),
       TraceArg::Num("act_cost", op.sim_cost),
       TraceArg::Num("calls", static_cast<double>(op.calls)),
       TraceArg::Num("q_err", op.QError())});
  int64_t child_ts = ts_us;
  for (const auto& c : op.children) {
    EmitOperator(*c, child_ts, recorder);
    child_ts += c->wall_ns / 1000;
  }
}

}  // namespace

void QueryProfile::EmitTraceEvents(TraceRecorder* recorder) const {
  if (recorder == nullptr) return;
  optimizer.EmitTraceEvents(recorder, /*start_ts_us=*/0);
  int64_t exec_start = optimizer.optimize_us;
  recorder->AddComplete(
      "execute", "executor", exec_start, total_wall_ns / 1000, /*tid=*/1,
      {TraceArg::Num("records_output",
                     static_cast<double>(stats.records_output)),
       TraceArg::Num("simulated_cost", stats.simulated_cost)});
  if (root != nullptr) EmitOperator(*root, exec_start, recorder);
}

}  // namespace seq
