#include "obs/query_registry.h"

namespace seq {

const char* QueryStateName(QueryState state) {
  switch (state) {
    case QueryState::kOptimizing:
      return "optimizing";
    case QueryState::kExecuting:
      return "executing";
    case QueryState::kDegraded:
      return "degraded";
    case QueryState::kQueued:
      return "queued";
    case QueryState::kSuspended:
      return "suspended";
  }
  return "unknown";
}

/// One live query: immutable identity set at Start, mutable progress in
/// the telemetry atomics. Held by shared_ptr so a Ticket can outlive a
/// registry Reset and snapshot readers need no lifetime coordination.
struct QueryRegistryEntry {
  uint64_t id = 0;
  uint64_t session_id = 0;
  std::string text;
  std::string digest;
  std::chrono::steady_clock::time_point start;
  QueryTelemetry telemetry;
  bool finished = false;  // guarded by the registry mutex
};

QueryRegistry::Ticket& QueryRegistry::Ticket::operator=(
    Ticket&& other) noexcept {
  if (this != &other) {
    if (entry_ != nullptr && registry_ != nullptr) {
      registry_->FinishEntry(entry_, false, "Internal");
    }
    registry_ = other.registry_;
    entry_ = std::move(other.entry_);
    other.registry_ = nullptr;
    other.entry_.reset();
  }
  return *this;
}

QueryRegistry::Ticket::~Ticket() {
  if (entry_ != nullptr && registry_ != nullptr) {
    registry_->FinishEntry(entry_, false, "Internal");
  }
}

uint64_t QueryRegistry::Ticket::id() const {
  return entry_ != nullptr ? entry_->id : 0;
}

QueryTelemetry* QueryRegistry::Ticket::telemetry() const {
  return entry_ != nullptr ? &entry_->telemetry : nullptr;
}

void QueryRegistry::Ticket::set_state(QueryState state) {
  if (entry_ != nullptr) {
    entry_->telemetry.state.store(static_cast<int>(state),
                                  std::memory_order_relaxed);
  }
}

void QueryRegistry::Ticket::set_plan_cached() {
  if (entry_ != nullptr) {
    entry_->telemetry.plan_cached.store(true, std::memory_order_relaxed);
  }
}

CompletedQueryInfo QueryRegistry::Ticket::Finish(
    bool ok, const std::string& status_name) {
  if (entry_ == nullptr || registry_ == nullptr) return CompletedQueryInfo{};
  CompletedQueryInfo info = registry_->FinishEntry(entry_, ok, status_name);
  entry_.reset();
  return info;
}

QueryRegistry::Ticket QueryRegistry::Start(std::string text,
                                           std::string digest,
                                           uint64_t session_id) {
  Ticket ticket;
  if (!enabled()) return ticket;
  auto entry = std::make_shared<QueryRegistryEntry>();
  entry->id = next_id_.fetch_add(1, std::memory_order_relaxed);
  entry->session_id = session_id;
  entry->text = std::move(text);
  entry->digest = std::move(digest);
  entry->start = std::chrono::steady_clock::now();
  started_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    live_.emplace(entry->id, entry);
  }
  ticket.registry_ = this;
  ticket.entry_ = std::move(entry);
  return ticket;
}

CompletedQueryInfo QueryRegistry::FinishEntry(
    const std::shared_ptr<QueryRegistryEntry>& entry, bool ok,
    const std::string& status_name) {
  CompletedQueryInfo info;
  info.id = entry->id;
  info.session_id = entry->session_id;
  info.text = entry->text;
  info.digest = entry->digest;
  info.ok = ok;
  info.status = status_name;
  info.degraded = entry->telemetry.state.load(std::memory_order_relaxed) ==
                  static_cast<int>(QueryState::kDegraded);
  info.plan_cached =
      entry->telemetry.plan_cached.load(std::memory_order_relaxed);
  info.wall_us = std::chrono::duration_cast<std::chrono::microseconds>(
                     std::chrono::steady_clock::now() - entry->start)
                     .count();
  info.queued_us = entry->telemetry.queued_us.load(std::memory_order_relaxed);
  info.rows = entry->telemetry.rows.load(std::memory_order_relaxed);
  info.pages = entry->telemetry.pages.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (entry->finished) return info;  // double Finish (moved-from ticket)
    entry->finished = true;
    live_.erase(entry->id);
    ring_.push_back(info);
    while (ring_.size() > ring_capacity_) ring_.pop_front();
  }
  completed_.fetch_add(1, std::memory_order_relaxed);
  return info;
}

std::vector<LiveQueryInfo> QueryRegistry::Live() const {
  const auto now = std::chrono::steady_clock::now();
  std::vector<LiveQueryInfo> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(live_.size());
  for (const auto& [id, entry] : live_) {
    LiveQueryInfo info;
    info.id = id;
    info.session_id = entry->session_id;
    info.text = entry->text;
    info.digest = entry->digest;
    info.state = static_cast<QueryState>(
        entry->telemetry.state.load(std::memory_order_relaxed));
    info.rows = entry->telemetry.rows.load(std::memory_order_relaxed);
    info.pages = entry->telemetry.pages.load(std::memory_order_relaxed);
    info.workers = entry->telemetry.workers.load(std::memory_order_relaxed);
    info.morsels_done =
        entry->telemetry.morsels_done.load(std::memory_order_relaxed);
    info.morsels_total =
        entry->telemetry.morsels_total.load(std::memory_order_relaxed);
    info.plan_cached =
        entry->telemetry.plan_cached.load(std::memory_order_relaxed);
    info.queued_us =
        entry->telemetry.queued_us.load(std::memory_order_relaxed);
    info.elapsed_us = std::chrono::duration_cast<std::chrono::microseconds>(
                          now - entry->start)
                          .count();
    out.push_back(std::move(info));
  }
  return out;
}

bool QueryRegistry::RequestSuspend(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = live_.find(id);
  if (it == live_.end()) return false;
  it->second->telemetry.suspend_requested.store(true,
                                                std::memory_order_release);
  return true;
}

std::vector<CompletedQueryInfo> QueryRegistry::Recent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<CompletedQueryInfo>(ring_.rbegin(), ring_.rend());
}

size_t QueryRegistry::live_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_.size();
}

void QueryRegistry::set_ring_capacity(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_capacity_ = n > 0 ? n : 1;
  while (ring_.size() > ring_capacity_) ring_.pop_front();
}

void QueryRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  started_.store(0, std::memory_order_relaxed);
  completed_.store(0, std::memory_order_relaxed);
}

QueryRegistry& QueryRegistry::Global() {
  static QueryRegistry* registry = new QueryRegistry();
  return *registry;
}

}  // namespace seq
