#ifndef SEQ_OBS_SLOW_QUERY_LOG_H_
#define SEQ_OBS_SLOW_QUERY_LOG_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

// NormalizeQueryText lives in common/query_digest.h so the slow-query log
// and the plan cache key on the identical shape implementation; included
// here so existing callers of the digest through this header keep working.
#include "common/query_digest.h"

namespace seq {

/// Accumulated statistics for one slow-query digest: the per-digest
/// latency distribution plus the worst-case exemplar (the original,
/// un-normalized text of the slowest run, so the literals that made it
/// slow are preserved).
struct SlowQueryDigestStats {
  std::string digest;
  int64_t count = 0;
  double total_us = 0.0;
  double min_us = 0.0;
  double max_us = 0.0;
  int64_t total_rows = 0;
  int64_t total_pages = 0;
  /// Scheduler admission-queue time (part of the wall times above, but
  /// attributed separately: a shape that is "slow" because it queued is a
  /// load problem, not a plan problem).
  double total_queue_us = 0.0;
  std::string worst_text;    ///< exemplar query text of the slowest run
  uint64_t worst_query_id = 0;
  double worst_us = 0.0;
  double worst_queue_us = 0.0;  ///< queue-time portion of the worst run
  std::string last_status = "OK";

  double MeanUs() const {
    return count > 0 ? total_us / static_cast<double>(count) : 0.0;
  }
};

/// The always-on slow-query digest log: every query whose wall time
/// crosses the threshold is folded into its digest's entry. Keyed on
/// normalized shape, not raw text, so a workload of repeated shapes with
/// re-bound literals shows up as one hot digest with a distribution —
/// the keying groundwork for the roadmap's normalized-plan cache.
///
/// The threshold is milliseconds; default comes from the
/// SEQ_SLOW_QUERY_MS environment variable (100 when unset). A threshold
/// of 0 logs every query; a negative threshold disables the log.
class SlowQueryLog {
 public:
  /// Digest-map capacity: beyond this many distinct shapes, new digests
  /// are counted as dropped instead of tracked (existing digests keep
  /// accumulating), so a digest explosion cannot grow memory unboundedly.
  static constexpr size_t kMaxDigests = 256;

  /// Records one over-threshold query. `text` is the original query text
  /// (kept only when it becomes the worst-case exemplar); `queue_us` is
  /// the portion of `wall_us` spent waiting in the scheduler's admission
  /// queue (0 for serial / uncontended queries).
  void Record(const std::string& digest, const std::string& text,
              uint64_t query_id, double wall_us, int64_t rows, int64_t pages,
              const std::string& status_name, double queue_us = 0.0);

  void set_threshold_ms(double ms) {
    threshold_us_.store(static_cast<int64_t>(ms * 1000.0),
                        std::memory_order_relaxed);
  }
  double threshold_ms() const {
    return static_cast<double>(
               threshold_us_.load(std::memory_order_relaxed)) /
           1000.0;
  }
  /// True when `wall_us` crosses the current threshold (false when the
  /// log is disabled via a negative threshold).
  bool ShouldLog(double wall_us) const {
    const int64_t t = threshold_us_.load(std::memory_order_relaxed);
    return t >= 0 && wall_us >= static_cast<double>(t);
  }

  /// All tracked digests, sorted by total time descending (the shapes
  /// costing the most overall come first).
  std::vector<SlowQueryDigestStats> Snapshot() const;

  int64_t dropped_digests() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Human-readable rendering for the seqsh `.slowlog` command.
  std::string ToString(size_t limit = 20) const;

  /// Clears entries and the dropped counter; the threshold is kept.
  void Reset();

  /// The process-global log the engine reports into; its initial
  /// threshold is read from SEQ_SLOW_QUERY_MS once at first use.
  static SlowQueryLog& Global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, SlowQueryDigestStats> digests_;
  std::atomic<int64_t> threshold_us_{100000};
  std::atomic<int64_t> dropped_{0};
};

}  // namespace seq

#endif  // SEQ_OBS_SLOW_QUERY_LOG_H_
