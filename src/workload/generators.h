#ifndef SEQ_WORKLOAD_GENERATORS_H_
#define SEQ_WORKLOAD_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "storage/base_sequence.h"

namespace seq {

/// Deterministic synthetic workloads shaped like the paper's examples:
/// daily stock-market sequences (Table 1) and the weather-monitoring event
/// sequences of Example 1.1. All generators are seeded and reproducible.

/// Options for a random-walk stock series with schema
/// <open:double, close:double, high:double, low:double, volume:int64>.
struct StockSeriesOptions {
  Span span = Span::Of(1, 1000);
  double density = 1.0;        ///< fraction of positions holding a record
  double start_price = 100.0;
  double volatility = 1.0;     ///< std-dev of the daily price step
  uint64_t seed = 42;
  int records_per_page = 64;
  AccessCosts costs;
};

Result<BaseSequencePtr> MakeStockSeries(const StockSeriesOptions& options);

/// Earthquake events with schema <strength:double, region:string>;
/// strengths uniform in [3, 9.5].
struct EventSeriesOptions {
  Span span = Span::Of(1, 10000);
  double density = 0.01;  ///< expected events per position
  uint64_t seed = 7;
  int num_regions = 8;
  int records_per_page = 64;
  AccessCosts costs;
};

Result<BaseSequencePtr> MakeEarthquakes(const EventSeriesOptions& options);

/// Volcano eruptions with schema <name:string, region:string>.
Result<BaseSequencePtr> MakeVolcanos(const EventSeriesOptions& options);

/// The three stock sequences of Table 1 — IBM span [200,500] density 0.95,
/// DEC [1,350] density 0.7, HP [1,750] density 1.0 — scaled by `scale`
/// (span bounds multiply), registered into `catalog` as "ibm", "dec", "hp".
Status RegisterTable1Stocks(Catalog* catalog, int64_t scale = 1,
                            uint64_t seed = 1994);

/// A generic single-column int64 sequence ("value") with the given density.
struct IntSeriesOptions {
  Span span = Span::Of(0, 999);
  double density = 1.0;
  int64_t min_value = 0;
  int64_t max_value = 1000;
  uint64_t seed = 13;
  std::string column = "value";
  int records_per_page = 64;
  AccessCosts costs;
};

Result<BaseSequencePtr> MakeIntSeries(const IntSeriesOptions& options);

}  // namespace seq

#endif  // SEQ_WORKLOAD_GENERATORS_H_
