#include "workload/csv.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace seq {
namespace {

std::vector<std::string> SplitLine(const std::string& line, char delimiter) {
  std::vector<std::string> out;
  std::string field;
  for (char c : line) {
    if (c == delimiter) {
      out.push_back(std::string(StripAsciiWhitespace(field)));
      field.clear();
    } else {
      field.push_back(c);
    }
  }
  out.push_back(std::string(StripAsciiWhitespace(field)));
  return out;
}

bool ParseInt(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool ParseBool(const std::string& s, bool* out) {
  if (s == "true") {
    *out = true;
    return true;
  }
  if (s == "false") {
    *out = false;
    return true;
  }
  return false;
}

/// The narrowest type every value of the column fits.
TypeId InferType(const std::vector<std::vector<std::string>>& rows,
                 size_t col) {
  bool all_int = true, all_double = true, all_bool = true;
  for (const auto& row : rows) {
    const std::string& s = row[col];
    int64_t i;
    double d;
    bool b;
    if (!ParseInt(s, &i)) all_int = false;
    if (!ParseDouble(s, &d)) all_double = false;
    if (!ParseBool(s, &b)) all_bool = false;
  }
  if (all_int) return TypeId::kInt64;
  if (all_double) return TypeId::kDouble;
  if (all_bool) return TypeId::kBool;
  return TypeId::kString;
}

}  // namespace

Result<BaseSequencePtr> ParseCsvSequence(const std::string& content,
                                         const CsvOptions& options) {
  std::istringstream in(content);
  std::string line;
  std::vector<std::string> names;
  std::vector<std::vector<std::string>> rows;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (StripAsciiWhitespace(line).empty()) continue;
    std::vector<std::string> fields = SplitLine(line, options.delimiter);
    if (names.empty()) {
      if (options.header) {
        names = std::move(fields);
        continue;
      }
      names.reserve(fields.size());
      for (size_t i = 0; i < fields.size(); ++i) {
        names.push_back("c" + std::to_string(i));
      }
    }
    if (fields.size() != names.size()) {
      return Status::InvalidArgument(
          "CSV line " + std::to_string(line_no) + " has " +
          std::to_string(fields.size()) + " fields, expected " +
          std::to_string(names.size()));
    }
    rows.push_back(std::move(fields));
  }
  if (names.empty()) {
    return Status::InvalidArgument("empty CSV input");
  }

  // Locate the position column.
  size_t pos_col = 0;
  if (!options.position_column.empty()) {
    auto it = std::find(names.begin(), names.end(), options.position_column);
    if (it == names.end()) {
      return Status::NotFound("no CSV column named '" +
                              options.position_column + "'");
    }
    pos_col = static_cast<size_t>(it - names.begin());
  }

  // Infer record field types (position column excluded).
  std::vector<Field> schema_fields;
  std::vector<size_t> record_cols;
  for (size_t c = 0; c < names.size(); ++c) {
    if (c == pos_col) continue;
    schema_fields.push_back(Field{names[c], InferType(rows, c)});
    record_cols.push_back(c);
  }
  if (schema_fields.empty()) {
    return Status::InvalidArgument("CSV has only the position column");
  }
  SchemaPtr schema = Schema::Make(std::move(schema_fields));

  // Parse positions, sort rows by position.
  std::vector<std::pair<int64_t, size_t>> order;
  order.reserve(rows.size());
  for (size_t r = 0; r < rows.size(); ++r) {
    int64_t pos;
    if (!ParseInt(rows[r][pos_col], &pos)) {
      return Status::InvalidArgument("position value '" + rows[r][pos_col] +
                                     "' is not an integer");
    }
    order.emplace_back(pos, r);
  }
  std::sort(order.begin(), order.end());

  auto store = std::make_shared<BaseSequenceStore>(
      schema, options.records_per_page, options.costs);
  for (const auto& [pos, r] : order) {
    Record rec;
    rec.reserve(record_cols.size());
    for (size_t k = 0; k < record_cols.size(); ++k) {
      const std::string& s = rows[r][record_cols[k]];
      switch (schema->field(k).type) {
        case TypeId::kInt64: {
          int64_t v = 0;
          ParseInt(s, &v);
          rec.push_back(Value::Int64(v));
          break;
        }
        case TypeId::kDouble: {
          double v = 0;
          ParseDouble(s, &v);
          rec.push_back(Value::Double(v));
          break;
        }
        case TypeId::kBool: {
          bool v = false;
          ParseBool(s, &v);
          rec.push_back(Value::Bool(v));
          break;
        }
        case TypeId::kString:
          rec.push_back(Value::String(s));
          break;
      }
    }
    SEQ_RETURN_IF_ERROR(store->Append(pos, std::move(rec)));
  }
  return store;
}

Result<BaseSequencePtr> LoadCsvSequence(const std::string& path,
                                        const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseCsvSequence(buffer.str(), options);
}

std::string SequenceToCsv(const BaseSequenceStore& store, char delimiter) {
  std::ostringstream out;
  out << "pos";
  for (const Field& f : store.schema()->fields()) {
    out << delimiter << f.name;
  }
  out << "\n";
  for (const PosRecord& pr : store.records()) {
    out << pr.pos;
    for (const Value& v : pr.rec) {
      out << delimiter;
      if (v.type() == TypeId::kString) {
        out << v.str();  // no quoting: simple values only
      } else {
        out << v.ToString();
      }
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace seq
