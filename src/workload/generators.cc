#include "workload/generators.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace seq {
namespace {

/// Positions in `span` selected i.i.d. with probability `density`.
std::vector<Position> SamplePositions(Span span, double density, Rng* rng) {
  std::vector<Position> out;
  if (span.IsEmpty() || density <= 0.0) return out;
  if (density >= 1.0) {
    out.reserve(static_cast<size_t>(span.Length()));
    for (Position p = span.start; p <= span.end; ++p) out.push_back(p);
    return out;
  }
  // Geometric gaps give the right density in one pass.
  Position p = span.start - 1;
  while (true) {
    p += rng->GeometricGap(density);
    if (p > span.end) break;
    out.push_back(p);
  }
  return out;
}

}  // namespace

Result<BaseSequencePtr> MakeStockSeries(const StockSeriesOptions& options) {
  SchemaPtr schema = Schema::Make({
      Field{"open", TypeId::kDouble},
      Field{"close", TypeId::kDouble},
      Field{"high", TypeId::kDouble},
      Field{"low", TypeId::kDouble},
      Field{"volume", TypeId::kInt64},
  });
  Rng rng(options.seed);
  auto store = std::make_shared<BaseSequenceStore>(
      schema, options.records_per_page, options.costs);
  SEQ_RETURN_IF_ERROR(store->DeclareSpan(options.span));
  double price = options.start_price;
  for (Position p : SamplePositions(options.span, options.density, &rng)) {
    double open = price;
    double step = rng.Normal(0.0, options.volatility);
    double close = std::max(1.0, open + step);
    double high = std::max(open, close) + std::abs(rng.Normal(0.0, 0.3));
    double low =
        std::max(0.5, std::min(open, close) - std::abs(rng.Normal(0.0, 0.3)));
    int64_t volume = rng.UniformInt(1000, 100000);
    SEQ_RETURN_IF_ERROR(store->Append(
        p, Record{Value::Double(open), Value::Double(close),
                  Value::Double(high), Value::Double(low),
                  Value::Int64(volume)}));
    price = close;
  }
  return store;
}

Result<BaseSequencePtr> MakeEarthquakes(const EventSeriesOptions& options) {
  SchemaPtr schema = Schema::Make({
      Field{"strength", TypeId::kDouble},
      Field{"region", TypeId::kString},
  });
  Rng rng(options.seed);
  auto store = std::make_shared<BaseSequenceStore>(
      schema, options.records_per_page, options.costs);
  SEQ_RETURN_IF_ERROR(store->DeclareSpan(options.span));
  for (Position p : SamplePositions(options.span, options.density, &rng)) {
    double strength = rng.UniformDouble(3.0, 9.5);
    std::string region =
        "region" + std::to_string(rng.UniformInt(0, options.num_regions - 1));
    SEQ_RETURN_IF_ERROR(store->Append(
        p, Record{Value::Double(strength), Value::String(region)}));
  }
  return store;
}

Result<BaseSequencePtr> MakeVolcanos(const EventSeriesOptions& options) {
  SchemaPtr schema = Schema::Make({
      Field{"name", TypeId::kString},
      Field{"region", TypeId::kString},
  });
  Rng rng(options.seed);
  auto store = std::make_shared<BaseSequenceStore>(
      schema, options.records_per_page, options.costs);
  SEQ_RETURN_IF_ERROR(store->DeclareSpan(options.span));
  int64_t counter = 0;
  for (Position p : SamplePositions(options.span, options.density, &rng)) {
    std::string name = "volcano" + std::to_string(counter++);
    std::string region =
        "region" + std::to_string(rng.UniformInt(0, options.num_regions - 1));
    SEQ_RETURN_IF_ERROR(
        store->Append(p, Record{Value::String(name), Value::String(region)}));
  }
  return store;
}

Status RegisterTable1Stocks(Catalog* catalog, int64_t scale, uint64_t seed) {
  struct Spec {
    const char* name;
    Span span;
    double density;
    double start_price;
  };
  const Spec specs[] = {
      {"ibm", Span::Of(200 * scale, 500 * scale), 0.95, 105.0},
      {"dec", Span::Of(1 * scale, 350 * scale), 0.7, 95.0},
      {"hp", Span::Of(1 * scale, 750 * scale), 1.0, 100.0},
  };
  uint64_t s = seed;
  for (const Spec& spec : specs) {
    StockSeriesOptions options;
    options.span = spec.span;
    options.density = spec.density;
    options.start_price = spec.start_price;
    options.seed = s++;
    SEQ_ASSIGN_OR_RETURN(BaseSequencePtr store, MakeStockSeries(options));
    SEQ_RETURN_IF_ERROR(catalog->RegisterBase(spec.name, std::move(store)));
  }
  return Status::OK();
}

Result<BaseSequencePtr> MakeIntSeries(const IntSeriesOptions& options) {
  SchemaPtr schema = Schema::Make({Field{options.column, TypeId::kInt64}});
  Rng rng(options.seed);
  auto store = std::make_shared<BaseSequenceStore>(
      schema, options.records_per_page, options.costs);
  SEQ_RETURN_IF_ERROR(store->DeclareSpan(options.span));
  for (Position p : SamplePositions(options.span, options.density, &rng)) {
    SEQ_RETURN_IF_ERROR(store->Append(
        p, Record{Value::Int64(
               rng.UniformInt(options.min_value, options.max_value))}));
  }
  return store;
}

}  // namespace seq
