#ifndef SEQ_WORKLOAD_CSV_H_
#define SEQ_WORKLOAD_CSV_H_

#include <string>

#include "common/result.h"
#include "storage/base_sequence.h"

namespace seq {

/// Options for reading a sequence from CSV text.
struct CsvOptions {
  char delimiter = ',';
  bool header = true;
  /// Column holding the position; empty selects the first column. Must
  /// parse as integers; rows are sorted by it (duplicates rejected).
  std::string position_column;
  int records_per_page = 64;
  AccessCosts costs;
};

/// Parses CSV text into a base sequence. Column types are inferred per
/// column over all rows: int64 if every value parses as an integer, else
/// double if numeric, else bool if all true/false, else string. The
/// position column is removed from the record schema.
Result<BaseSequencePtr> ParseCsvSequence(const std::string& content,
                                         const CsvOptions& options = {});

/// Reads `path` and parses it.
Result<BaseSequencePtr> LoadCsvSequence(const std::string& path,
                                        const CsvOptions& options = {});

/// Renders a sequence as CSV (header + "pos,<fields...>" rows).
std::string SequenceToCsv(const BaseSequenceStore& store,
                          char delimiter = ',');

}  // namespace seq

#endif  // SEQ_WORKLOAD_CSV_H_
