#ifndef SEQ_LOGICAL_BUILDER_H_
#define SEQ_LOGICAL_BUILDER_H_

#include <string>
#include <utility>
#include <vector>

#include "expr/expr.h"
#include "logical/logical_op.h"

namespace seq {

/// Fluent construction of sequence query graphs. Builders are cheap value
/// types wrapping a LogicalOpPtr; every call returns a new builder so
/// sub-expressions can be reused freely.
///
///   auto q = SeqRef("quakes")
///                .Select(Gt(Col("strength"), Lit(7.0)))
///                .Prev()
///                .ComposeWith(SeqRef("volcanos"))
///                .Build();
class QueryBuilder {
 public:
  explicit QueryBuilder(LogicalOpPtr op) : op_(std::move(op)) {}

  QueryBuilder Select(ExprPtr predicate) const {
    return QueryBuilder(LogicalOp::Select(op_, std::move(predicate)));
  }
  QueryBuilder Project(std::vector<std::string> columns,
                       std::vector<std::string> renames = {}) const {
    return QueryBuilder(
        LogicalOp::Project(op_, std::move(columns), std::move(renames)));
  }
  QueryBuilder Offset(int64_t l) const {
    return QueryBuilder(LogicalOp::PositionalOffset(op_, l));
  }
  QueryBuilder ValueOffset(int64_t l) const {
    return QueryBuilder(LogicalOp::ValueOffset(op_, l));
  }
  /// Most recent earlier record (§2.1 Previous).
  QueryBuilder Prev() const { return ValueOffset(-1); }
  /// Nearest later record (§2.1 Next).
  QueryBuilder Next() const { return ValueOffset(1); }

  QueryBuilder Agg(AggFunc func, std::string column, int64_t window,
                   std::string output_name = "") const {
    return QueryBuilder(LogicalOp::WindowAgg(op_, func, std::move(column),
                                             window, std::move(output_name)));
  }
  QueryBuilder RunningAgg(AggFunc func, std::string column,
                          std::string output_name = "") const {
    return QueryBuilder(LogicalOp::RunningAgg(op_, func, std::move(column),
                                              std::move(output_name)));
  }
  QueryBuilder OverallAgg(AggFunc func, std::string column,
                          std::string output_name = "") const {
    return QueryBuilder(LogicalOp::OverallAgg(op_, func, std::move(column),
                                              std::move(output_name)));
  }

  QueryBuilder ComposeWith(const QueryBuilder& right,
                           ExprPtr predicate = nullptr) const {
    return QueryBuilder(
        LogicalOp::Compose(op_, right.op_, std::move(predicate)));
  }

  QueryBuilder Collapse(int64_t factor, AggFunc func, std::string column,
                        std::string output_name = "") const {
    return QueryBuilder(LogicalOp::Collapse(op_, factor, func,
                                            std::move(column),
                                            std::move(output_name)));
  }

  QueryBuilder Expand(int64_t factor) const {
    return QueryBuilder(LogicalOp::Expand(op_, factor));
  }

  const LogicalOpPtr& Build() const { return op_; }

 private:
  LogicalOpPtr op_;
};

/// Entry points.
inline QueryBuilder SeqRef(std::string name) {
  return QueryBuilder(LogicalOp::BaseRef(std::move(name)));
}
inline QueryBuilder ConstRef(std::string name) {
  return QueryBuilder(LogicalOp::ConstantRef(std::move(name)));
}

}  // namespace seq

#endif  // SEQ_LOGICAL_BUILDER_H_
