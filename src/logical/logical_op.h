#ifndef SEQ_LOGICAL_LOGICAL_OP_H_
#define SEQ_LOGICAL_LOGICAL_OP_H_

#include <memory>
#include <string>
#include <vector>

#include "expr/expr.h"
#include "logical/scope.h"
#include "storage/base_sequence.h"
#include "types/record.h"
#include "types/schema.h"
#include "types/span.h"

namespace seq {

/// The sequence operators of the paper's model (§2.1) plus the Collapse
/// ordering-domain extension (§5.1).
enum class OpKind : uint8_t {
  kBaseRef,           // leaf: named base sequence
  kConstantRef,       // leaf: named constant sequence
  kSelect,            // σ per position
  kProject,           // π per position
  kPositionalOffset,  // out(i) = in(i + l)
  kValueOffset,       // out(i) = l-th nearest non-empty record (Previous/Next)
  kWindowAgg,         // aggregate over agg_pos(i); trailing / running / all
  kCompose,           // positional join, optional extra predicate
  kCollapse,          // §5.1: collapse to a coarser ordering domain
  kExpand,            // §5.1: expand to a finer ordering domain
};

const char* OpKindName(OpKind kind);

/// Aggregate functions of the model ("Avg, Count, Min, Max and Sum", §2.1).
enum class AggFunc : uint8_t { kSum, kAvg, kCount, kMin, kMax };

const char* AggFuncName(AggFunc func);

/// The agg_pos(i) families supported: the trailing window
/// {p | i-W+1 <= p <= i}, the running prefix {p | p <= i}, and the paper's
/// "agg_pos always true" special case selecting all positions.
enum class WindowKind : uint8_t { kTrailing, kRunning, kAll };

/// Meta-information attached to every node by the optimizer's annotation
/// pass (paper §4, Step 2): output schema, span, density, and provenance
/// used for correlation/selectivity lookups.
struct SeqMeta {
  bool annotated = false;
  SchemaPtr schema;
  Span span = Span::Empty();
  double density = 0.0;

  /// Base sequence names feeding this node (for null-correlation lookup).
  std::vector<std::string> source_names;

  /// When the node's columns still mirror a base sequence's columns
  /// one-to-one (leaf, or select/offset chains above one), the store whose
  /// column statistics can estimate predicate selectivities; else null.
  const BaseSequenceStore* stats_store = nullptr;

  /// The span requested from this node by its consumer (top-down pass,
  /// Step 2.b); evaluation only needs output positions inside it.
  Span required = Span::Unbounded();
};

class LogicalOp;
using LogicalOpPtr = std::shared_ptr<LogicalOp>;

/// A node of the sequence query graph (§2.2). The graph is a tree: each
/// node owns its inputs. Nodes are mutable — the optimizer annotates and
/// restructures a private clone of the user's graph.
class LogicalOp {
 public:
  /// Factories ---------------------------------------------------------------
  static LogicalOpPtr BaseRef(std::string name);
  static LogicalOpPtr ConstantRef(std::string name);
  static LogicalOpPtr Select(LogicalOpPtr input, ExprPtr predicate);
  /// Projection with optional renames (empty string keeps the name).
  static LogicalOpPtr Project(LogicalOpPtr input,
                              std::vector<std::string> columns,
                              std::vector<std::string> renames = {});
  static LogicalOpPtr PositionalOffset(LogicalOpPtr input, int64_t offset);
  /// offset < 0: |offset|-th most recent earlier record (Previous = -1);
  /// offset > 0: offset-th next later record (Next = +1).
  static LogicalOpPtr ValueOffset(LogicalOpPtr input, int64_t offset);
  static LogicalOpPtr WindowAgg(LogicalOpPtr input, AggFunc func,
                                std::string column, int64_t window,
                                std::string output_name = "");
  static LogicalOpPtr RunningAgg(LogicalOpPtr input, AggFunc func,
                                 std::string column,
                                 std::string output_name = "");
  static LogicalOpPtr OverallAgg(LogicalOpPtr input, AggFunc func,
                                 std::string column,
                                 std::string output_name = "");
  static LogicalOpPtr Compose(LogicalOpPtr left, LogicalOpPtr right,
                              ExprPtr predicate = nullptr);
  /// Collapse positions to buckets of `factor` consecutive positions,
  /// aggregating `column` with `func` inside each bucket (§5.1: e.g. a
  /// daily sequence viewed weekly with factor 7). Output position i holds
  /// the aggregate of input positions [i*factor, (i+1)*factor).
  static LogicalOpPtr Collapse(LogicalOpPtr input, int64_t factor,
                               AggFunc func, std::string column,
                               std::string output_name = "");
  /// Expand positions to a finer ordering domain (§5.1: e.g. a weekly
  /// sequence viewed daily): output position i holds the input record at
  /// position floor(i / factor).
  static LogicalOpPtr Expand(LogicalOpPtr input, int64_t factor);

  /// Structure ---------------------------------------------------------------
  OpKind kind() const { return kind_; }
  size_t arity() const { return inputs_.size(); }
  const LogicalOpPtr& input(size_t i = 0) const { return inputs_[i]; }
  LogicalOpPtr& mutable_input(size_t i = 0) { return inputs_[i]; }
  const std::vector<LogicalOpPtr>& inputs() const { return inputs_; }

  /// Parameters --------------------------------------------------------------
  const std::string& seq_name() const { return seq_name_; }
  const ExprPtr& predicate() const { return predicate_; }
  void set_predicate(ExprPtr p) { predicate_ = std::move(p); }
  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<std::string>& renames() const { return renames_; }
  int64_t offset() const { return offset_; }
  AggFunc agg_func() const { return agg_func_; }
  WindowKind window_kind() const { return window_kind_; }
  int64_t window() const { return window_; }
  const std::string& agg_column() const { return agg_column_; }
  const std::string& output_name() const { return output_name_; }
  int64_t collapse_factor() const { return offset_; }
  int64_t expand_factor() const { return offset_; }

  /// Scope of this operator over input `k` (§2.3).
  ScopeSpec ScopeOverInput(size_t k = 0) const;

  /// True for operators of non-unit scope — the block boundaries of §3.1
  /// ("aggregates and previous/next ... form special blocks").
  bool IsNonUnitScope() const;

  /// Scope of the whole (complex) operator rooted here over each of its
  /// base/constant leaves, composed per Prop 2.1, in left-to-right leaf
  /// order. Parallel to CollectLeaves().
  std::vector<ScopeSpec> QueryScopeOverLeaves() const;
  void CollectLeaves(std::vector<const LogicalOp*>* out) const;

  /// Meta --------------------------------------------------------------------
  const SeqMeta& meta() const { return meta_; }
  SeqMeta& mutable_meta() { return meta_; }

  /// Deep copy (meta included).
  LogicalOpPtr Clone() const;

  /// One-line description of this node.
  std::string Describe() const;
  /// Indented tree rendering, with meta when annotated.
  std::string ToTreeString(int indent = 0) const;

 private:
  LogicalOp() = default;

  OpKind kind_ = OpKind::kBaseRef;
  std::vector<LogicalOpPtr> inputs_;
  std::string seq_name_;
  ExprPtr predicate_;
  std::vector<std::string> columns_;
  std::vector<std::string> renames_;
  int64_t offset_ = 0;  // positional/value offset; collapse factor
  AggFunc agg_func_ = AggFunc::kSum;
  WindowKind window_kind_ = WindowKind::kTrailing;
  int64_t window_ = 1;
  std::string agg_column_;
  std::string output_name_;
  SeqMeta meta_;
};

}  // namespace seq

#endif  // SEQ_LOGICAL_LOGICAL_OP_H_
