#include "logical/logical_op.h"

#include <sstream>

#include "common/logging.h"
#include "common/string_util.h"

namespace seq {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kBaseRef:
      return "BaseRef";
    case OpKind::kConstantRef:
      return "ConstantRef";
    case OpKind::kSelect:
      return "Select";
    case OpKind::kProject:
      return "Project";
    case OpKind::kPositionalOffset:
      return "PositionalOffset";
    case OpKind::kValueOffset:
      return "ValueOffset";
    case OpKind::kWindowAgg:
      return "WindowAgg";
    case OpKind::kCompose:
      return "Compose";
    case OpKind::kCollapse:
      return "Collapse";
    case OpKind::kExpand:
      return "Expand";
  }
  return "?";
}

const char* AggFuncName(AggFunc func) {
  switch (func) {
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kAvg:
      return "avg";
    case AggFunc::kCount:
      return "count";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
  }
  return "?";
}

LogicalOpPtr LogicalOp::BaseRef(std::string name) {
  auto op = std::shared_ptr<LogicalOp>(new LogicalOp());
  op->kind_ = OpKind::kBaseRef;
  op->seq_name_ = std::move(name);
  return op;
}

LogicalOpPtr LogicalOp::ConstantRef(std::string name) {
  auto op = std::shared_ptr<LogicalOp>(new LogicalOp());
  op->kind_ = OpKind::kConstantRef;
  op->seq_name_ = std::move(name);
  return op;
}

LogicalOpPtr LogicalOp::Select(LogicalOpPtr input, ExprPtr predicate) {
  SEQ_CHECK(input != nullptr && predicate != nullptr);
  auto op = std::shared_ptr<LogicalOp>(new LogicalOp());
  op->kind_ = OpKind::kSelect;
  op->inputs_.push_back(std::move(input));
  op->predicate_ = std::move(predicate);
  return op;
}

LogicalOpPtr LogicalOp::Project(LogicalOpPtr input,
                                std::vector<std::string> columns,
                                std::vector<std::string> renames) {
  SEQ_CHECK(input != nullptr);
  SEQ_CHECK(!columns.empty());
  auto op = std::shared_ptr<LogicalOp>(new LogicalOp());
  op->kind_ = OpKind::kProject;
  op->inputs_.push_back(std::move(input));
  op->columns_ = std::move(columns);
  // Canonical form: no renames at all is stored as an empty vector, never
  // as a vector of empty strings. Plan signatures (and therefore checkpoint
  // resume validation and plan-cache keys) compare the list verbatim, so
  // the builder path and the parsed path must agree byte for byte.
  bool any_rename = false;
  for (const std::string& r : renames) {
    if (!r.empty()) {
      any_rename = true;
      break;
    }
  }
  if (any_rename) op->renames_ = std::move(renames);
  return op;
}

LogicalOpPtr LogicalOp::PositionalOffset(LogicalOpPtr input, int64_t offset) {
  SEQ_CHECK(input != nullptr);
  auto op = std::shared_ptr<LogicalOp>(new LogicalOp());
  op->kind_ = OpKind::kPositionalOffset;
  op->inputs_.push_back(std::move(input));
  op->offset_ = offset;
  return op;
}

LogicalOpPtr LogicalOp::ValueOffset(LogicalOpPtr input, int64_t offset) {
  SEQ_CHECK(input != nullptr);
  SEQ_CHECK_MSG(offset != 0, "value offset must be non-zero");
  auto op = std::shared_ptr<LogicalOp>(new LogicalOp());
  op->kind_ = OpKind::kValueOffset;
  op->inputs_.push_back(std::move(input));
  op->offset_ = offset;
  return op;
}

LogicalOpPtr LogicalOp::WindowAgg(LogicalOpPtr input, AggFunc func,
                                  std::string column, int64_t window,
                                  std::string output_name) {
  SEQ_CHECK(input != nullptr);
  SEQ_CHECK_MSG(window >= 1, "window must be >= 1");
  auto op = std::shared_ptr<LogicalOp>(new LogicalOp());
  op->kind_ = OpKind::kWindowAgg;
  op->inputs_.push_back(std::move(input));
  op->agg_func_ = func;
  op->window_kind_ = WindowKind::kTrailing;
  op->window_ = window;
  op->agg_column_ = std::move(column);
  op->output_name_ = std::move(output_name);
  return op;
}

LogicalOpPtr LogicalOp::RunningAgg(LogicalOpPtr input, AggFunc func,
                                   std::string column,
                                   std::string output_name) {
  auto op = WindowAgg(std::move(input), func, std::move(column), 1,
                      std::move(output_name));
  op->window_kind_ = WindowKind::kRunning;
  return op;
}

LogicalOpPtr LogicalOp::OverallAgg(LogicalOpPtr input, AggFunc func,
                                   std::string column,
                                   std::string output_name) {
  auto op = WindowAgg(std::move(input), func, std::move(column), 1,
                      std::move(output_name));
  op->window_kind_ = WindowKind::kAll;
  return op;
}

LogicalOpPtr LogicalOp::Compose(LogicalOpPtr left, LogicalOpPtr right,
                                ExprPtr predicate) {
  SEQ_CHECK(left != nullptr && right != nullptr);
  auto op = std::shared_ptr<LogicalOp>(new LogicalOp());
  op->kind_ = OpKind::kCompose;
  op->inputs_.push_back(std::move(left));
  op->inputs_.push_back(std::move(right));
  op->predicate_ = std::move(predicate);
  return op;
}

LogicalOpPtr LogicalOp::Collapse(LogicalOpPtr input, int64_t factor,
                                 AggFunc func, std::string column,
                                 std::string output_name) {
  SEQ_CHECK(input != nullptr);
  SEQ_CHECK_MSG(factor >= 1, "collapse factor must be >= 1");
  auto op = std::shared_ptr<LogicalOp>(new LogicalOp());
  op->kind_ = OpKind::kCollapse;
  op->inputs_.push_back(std::move(input));
  op->offset_ = factor;
  op->agg_func_ = func;
  op->agg_column_ = std::move(column);
  op->output_name_ = std::move(output_name);
  return op;
}

LogicalOpPtr LogicalOp::Expand(LogicalOpPtr input, int64_t factor) {
  SEQ_CHECK(input != nullptr);
  SEQ_CHECK_MSG(factor >= 1, "expand factor must be >= 1");
  auto op = std::shared_ptr<LogicalOp>(new LogicalOp());
  op->kind_ = OpKind::kExpand;
  op->inputs_.push_back(std::move(input));
  op->offset_ = factor;
  return op;
}

ScopeSpec LogicalOp::ScopeOverInput(size_t k) const {
  SEQ_CHECK(k < inputs_.size());
  switch (kind_) {
    case OpKind::kBaseRef:
    case OpKind::kConstantRef:
      SEQ_CHECK(false);
      return ScopeSpec::Unit();
    case OpKind::kSelect:
    case OpKind::kProject:
    case OpKind::kCompose:
      return ScopeSpec::Unit();
    case OpKind::kPositionalOffset: {
      // Scope {i + l}: size one but not sequential for l != 0 (§2.3).
      ScopeSpec s = ScopeSpec::FixedWindow(offset_, offset_);
      return s;
    }
    case OpKind::kValueOffset:
      return offset_ < 0 ? ScopeSpec::VariablePast()
                         : ScopeSpec::VariableFuture();
    case OpKind::kWindowAgg:
      switch (window_kind_) {
        case WindowKind::kTrailing:
          return ScopeSpec::FixedWindow(-(window_ - 1), 0);
        case WindowKind::kRunning:
          return ScopeSpec::VariablePast();
        case WindowKind::kAll:
          return ScopeSpec::AllPositions();
      }
      SEQ_CHECK(false);
      return ScopeSpec::Unit();
    case OpKind::kCollapse: {
      // Output position i covers input positions [i*f, (i+1)*f); the scope
      // is fixed-size but non-relative (offsets depend on i).
      ScopeSpec s;
      s.size_kind = ScopeSpec::SizeKind::kFixed;
      s.min_offset = 0;
      s.max_offset = offset_ - 1;
      s.sequential = false;
      s.relative = false;
      return s;
    }
    case OpKind::kExpand: {
      // Output position i reads input position floor(i/f): unit size but
      // non-relative.
      ScopeSpec s;
      s.size_kind = ScopeSpec::SizeKind::kUnit;
      s.sequential = false;
      s.relative = false;
      return s;
    }
  }
  SEQ_CHECK(false);
  return ScopeSpec::Unit();
}

bool LogicalOp::IsNonUnitScope() const {
  switch (kind_) {
    case OpKind::kValueOffset:
    case OpKind::kWindowAgg:
    case OpKind::kCollapse:
    case OpKind::kExpand:
      return true;
    case OpKind::kPositionalOffset:
      // Size one, but not sequential; it still breaks stream evaluation
      // unless broadened, yet the paper treats it as pushable (§3.1), so
      // it is NOT a block boundary.
      return false;
    default:
      return false;
  }
}

void LogicalOp::CollectLeaves(std::vector<const LogicalOp*>* out) const {
  if (inputs_.empty()) {
    out->push_back(this);
    return;
  }
  for (const LogicalOpPtr& in : inputs_) in->CollectLeaves(out);
}

namespace {

void ScopesOverLeavesImpl(const LogicalOp& op, const ScopeSpec& outer,
                          std::vector<ScopeSpec>* out) {
  if (op.arity() == 0) {
    out->push_back(outer);
    return;
  }
  for (size_t k = 0; k < op.arity(); ++k) {
    ScopeSpec composed = ScopeSpec::Compose(outer, op.ScopeOverInput(k));
    ScopesOverLeavesImpl(*op.input(k), composed, out);
  }
}

}  // namespace

std::vector<ScopeSpec> LogicalOp::QueryScopeOverLeaves() const {
  std::vector<ScopeSpec> out;
  ScopesOverLeavesImpl(*this, ScopeSpec::Unit(), &out);
  return out;
}

LogicalOpPtr LogicalOp::Clone() const {
  auto op = std::shared_ptr<LogicalOp>(new LogicalOp());
  op->kind_ = kind_;
  op->seq_name_ = seq_name_;
  op->predicate_ = predicate_;  // expressions are immutable, share them
  op->columns_ = columns_;
  op->renames_ = renames_;
  op->offset_ = offset_;
  op->agg_func_ = agg_func_;
  op->window_kind_ = window_kind_;
  op->window_ = window_;
  op->agg_column_ = agg_column_;
  op->output_name_ = output_name_;
  op->meta_ = meta_;
  op->inputs_.reserve(inputs_.size());
  for (const LogicalOpPtr& in : inputs_) op->inputs_.push_back(in->Clone());
  return op;
}

std::string LogicalOp::Describe() const {
  std::ostringstream oss;
  oss << OpKindName(kind_);
  switch (kind_) {
    case OpKind::kBaseRef:
    case OpKind::kConstantRef:
      oss << "(" << seq_name_ << ")";
      break;
    case OpKind::kSelect:
      oss << "(" << predicate_->ToString() << ")";
      break;
    case OpKind::kProject: {
      std::vector<std::string> parts;
      for (size_t i = 0; i < columns_.size(); ++i) {
        std::string p = columns_[i];
        if (i < renames_.size() && !renames_[i].empty() &&
            renames_[i] != columns_[i]) {
          p += " as " + renames_[i];
        }
        parts.push_back(p);
      }
      oss << "(" << Join(parts, ", ") << ")";
      break;
    }
    case OpKind::kPositionalOffset:
    case OpKind::kValueOffset:
      oss << "(" << offset_ << ")";
      break;
    case OpKind::kWindowAgg:
      oss << "(" << AggFuncName(agg_func_) << " " << agg_column_;
      switch (window_kind_) {
        case WindowKind::kTrailing:
          oss << " over " << window_;
          break;
        case WindowKind::kRunning:
          oss << " running";
          break;
        case WindowKind::kAll:
          oss << " over all";
          break;
      }
      oss << ")";
      break;
    case OpKind::kCompose:
      if (predicate_ != nullptr) {
        oss << "(" << predicate_->ToString() << ")";
      }
      break;
    case OpKind::kCollapse:
      oss << "(" << AggFuncName(agg_func_) << " " << agg_column_ << " by "
          << offset_ << ")";
      break;
    case OpKind::kExpand:
      oss << "(by " << offset_ << ")";
      break;
  }
  return oss.str();
}

std::string LogicalOp::ToTreeString(int indent) const {
  std::ostringstream oss;
  oss << std::string(static_cast<size_t>(indent) * 2, ' ') << Describe();
  if (meta_.annotated) {
    oss << "  {span=" << meta_.span.ToString()
        << " density=" << FormatDouble(meta_.density);
    if (meta_.required != Span::Unbounded()) {
      oss << " required=" << meta_.required.ToString();
    }
    oss << "}";
  }
  oss << "\n";
  for (const LogicalOpPtr& in : inputs_) {
    oss << in->ToTreeString(indent + 1);
  }
  return oss.str();
}

}  // namespace seq
