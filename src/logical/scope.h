#ifndef SEQ_LOGICAL_SCOPE_H_
#define SEQ_LOGICAL_SCOPE_H_

#include <cstdint>
#include <string>

namespace seq {

/// Description of an operator's scope over one input sequence (paper §2.3):
/// which input positions, relative to output position i, the operator
/// function may need to inspect.
///
/// The three properties the paper identifies drive the optimizer:
///  * size        — unit / fixed-k / variable ("a Selection has a fixed
///                   scope of size one, a Previous operator has variable
///                   scope size");
///  * sequentiality — Scope(i) ⊆ Scope(i-1) ∪ {i} (enables single-scan
///                   stream evaluation with a scope-sized cache, Thm 3.1);
///  * relativity  — positions are {K1+i, ..., Kn+i} for constants Kj
///                   (enables positional-offset pushdown, §3.1).
///
/// For bounded scopes, [min_offset, max_offset] is the smallest window of
/// offsets (relative to i) containing the scope. Variable scopes may be
/// unbounded below (Previous) or above (Next); the bounded side still
/// carries a meaningful offset.
struct ScopeSpec {
  enum class SizeKind : uint8_t { kUnit, kFixed, kVariable };

  SizeKind size_kind = SizeKind::kUnit;
  int64_t min_offset = 0;
  int64_t max_offset = 0;
  bool bounded_below = true;  ///< false: scope may reach arbitrarily far back
  bool bounded_above = true;  ///< false: scope may reach arbitrarily ahead
  bool sequential = true;
  bool relative = true;

  /// {i}: selections, projections.
  static ScopeSpec Unit() { return ScopeSpec{}; }

  /// {i+lo, ..., i+hi}: offsets and trailing windows. Sequentiality is
  /// computed from the window: a window is sequential iff advancing i by
  /// one only adds position i itself (i.e. hi == 0).
  static ScopeSpec FixedWindow(int64_t lo, int64_t hi) {
    ScopeSpec s;
    s.size_kind = (lo == 0 && hi == 0) ? SizeKind::kUnit : SizeKind::kFixed;
    s.min_offset = lo;
    s.max_offset = hi;
    s.sequential = (hi == 0);
    s.relative = true;
    return s;
  }

  /// All positions < i (value offsets with negative l; running aggregates).
  static ScopeSpec VariablePast() {
    ScopeSpec s;
    s.size_kind = SizeKind::kVariable;
    s.min_offset = 0;  // unbounded below; max side is "before i"
    s.max_offset = -1;
    s.bounded_below = false;
    s.sequential = true;
    s.relative = false;
    return s;
  }

  /// All positions > i (value offsets with positive l).
  static ScopeSpec VariableFuture() {
    ScopeSpec s;
    s.size_kind = SizeKind::kVariable;
    s.min_offset = 1;
    s.max_offset = 0;  // unbounded above
    s.bounded_above = false;
    s.sequential = false;
    s.relative = false;
    return s;
  }

  /// Every position (whole-sequence aggregates).
  static ScopeSpec AllPositions() {
    ScopeSpec s;
    s.size_kind = SizeKind::kVariable;
    s.bounded_below = false;
    s.bounded_above = false;
    s.sequential = false;
    s.relative = false;
    return s;
  }

  bool IsUnit() const { return size_kind == SizeKind::kUnit; }
  bool IsFixedSize() const {
    return size_kind == SizeKind::kUnit || size_kind == SizeKind::kFixed;
  }

  /// Number of positions for unit/fixed scopes.
  int64_t FixedSize() const { return max_offset - min_offset + 1; }

  /// Scope of the composition B∘A over A's input (paper §2.3: the scope of
  /// a complex operator): offset windows add (Minkowski sum); fixed∘fixed
  /// stays fixed, sequential∘sequential stays sequential, relative∘relative
  /// stays relative (Proposition 2.1). `outer` is B's scope over A's
  /// output, `inner` is A's scope over its own input.
  static ScopeSpec Compose(const ScopeSpec& outer, const ScopeSpec& inner);

  /// The smallest sequential fixed-size scope containing this one (the
  /// "effective scope" of §3.4 that enables stream-access evaluation), or
  /// an AllPositions spec when the scope is unbounded below. Broadening a
  /// look-ahead window keeps the window but shifts the evaluation point —
  /// the returned spec has max_offset clamped to 0 and min_offset widened
  /// accordingly (buffer of size FixedSize()).
  ScopeSpec EffectiveSequential() const;

  std::string ToString() const;

  bool operator==(const ScopeSpec& other) const = default;
};

}  // namespace seq

#endif  // SEQ_LOGICAL_SCOPE_H_
