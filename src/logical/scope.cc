#include "logical/scope.h"

#include <algorithm>
#include <sstream>

namespace seq {

ScopeSpec ScopeSpec::Compose(const ScopeSpec& outer, const ScopeSpec& inner) {
  ScopeSpec out;
  // Size (Prop 2.1.a): fixed ∘ fixed stays fixed; anything touching a
  // variable scope becomes variable.
  if (outer.IsFixedSize() && inner.IsFixedSize()) {
    out.min_offset = outer.min_offset + inner.min_offset;
    out.max_offset = outer.max_offset + inner.max_offset;
    out.size_kind = (out.min_offset == 0 && out.max_offset == 0)
                        ? SizeKind::kUnit
                        : SizeKind::kFixed;
    out.bounded_below = true;
    out.bounded_above = true;
  } else {
    out.size_kind = SizeKind::kVariable;
    out.bounded_below = outer.bounded_below && inner.bounded_below;
    out.bounded_above = outer.bounded_above && inner.bounded_above;
    out.min_offset = out.bounded_below
                         ? outer.min_offset + inner.min_offset
                         : 0;
    out.max_offset = out.bounded_above
                         ? outer.max_offset + inner.max_offset
                         : 0;
  }
  // Sequentiality (Prop 2.1.b) and relativity (Prop 2.1.c) are each closed
  // under composition; a composition with a non-sequential (non-relative)
  // component is conservatively marked non-sequential (non-relative).
  out.sequential = outer.sequential && inner.sequential;
  out.relative = outer.relative && inner.relative;
  return out;
}

ScopeSpec ScopeSpec::EffectiveSequential() const {
  if (!bounded_below) return AllPositions();
  ScopeSpec out = *this;
  if (!bounded_above) {
    // Cannot be made fixed-size; keep variable but report sequential
    // infeasible via AllPositions.
    return AllPositions();
  }
  // Include position i itself and everything back to min_offset; clamp the
  // look-ahead side to 0 by widening the look-back side (the evaluator
  // delays emission by max_offset positions instead of looking ahead).
  int64_t lo = std::min<int64_t>(min_offset, 0);
  int64_t hi = std::max<int64_t>(max_offset, 0);
  out.min_offset = lo - hi;  // window size preserved after shifting by -hi
  out.max_offset = 0;
  out.size_kind = (out.min_offset == 0) ? SizeKind::kUnit : SizeKind::kFixed;
  out.sequential = true;
  out.relative = true;
  out.bounded_below = out.bounded_above = true;
  return out;
}

std::string ScopeSpec::ToString() const {
  std::ostringstream oss;
  switch (size_kind) {
    case SizeKind::kUnit:
      oss << "unit";
      break;
    case SizeKind::kFixed:
      oss << "fixed[" << min_offset << "," << max_offset << "]";
      break;
    case SizeKind::kVariable:
      oss << "variable[";
      if (bounded_below) {
        oss << min_offset;
      } else {
        oss << "-inf";
      }
      oss << ",";
      if (bounded_above) {
        oss << max_offset;
      } else {
        oss << "+inf";
      }
      oss << "]";
      break;
  }
  oss << (sequential ? " seq" : " non-seq")
      << (relative ? " rel" : " non-rel");
  return oss.str();
}

}  // namespace seq
