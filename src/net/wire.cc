#include "net/wire.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "exec/scheduler.h"

namespace seq {

WireRunOptions CaptureWireRunOptions(const RunOptions& opts,
                                     bool collect_stats) {
  WireRunOptions w;
  w.use_batch = opts.exec.use_batch;
  w.batch_capacity = opts.exec.batch_capacity;
  w.max_rows = opts.exec.guards.max_rows;
  w.max_pages = opts.exec.guards.max_pages;
  w.max_wall_ms = opts.exec.guards.max_wall_ms;
  w.max_cache_bytes = opts.exec.guards.max_cache_bytes;
  w.parallelism = opts.exec.parallelism;
  w.priority = static_cast<uint8_t>(opts.exec.priority);
  w.admission_timeout_ms = opts.exec.admission_timeout_ms;
  w.use_plan_cache = opts.exec.use_plan_cache;
  w.checkpoint_enabled = opts.exec.checkpoint.enabled;
  w.checkpoint_chunk = opts.exec.checkpoint.chunk;
  w.checkpoint_every = opts.exec.checkpoint.suspend_every_chunks;
  w.checkpoint_path = opts.exec.checkpoint.path;
  w.collect_stats = collect_stats;
  return w;
}

void ApplyWireRunOptions(const WireRunOptions& wire, ExecOptions* exec) {
  exec->use_batch = wire.use_batch;
  if (wire.batch_capacity > 0) {
    exec->batch_capacity = static_cast<size_t>(wire.batch_capacity);
  }
  exec->guards.max_rows = wire.max_rows;
  exec->guards.max_pages = wire.max_pages;
  exec->guards.max_wall_ms = wire.max_wall_ms;
  exec->guards.max_cache_bytes = wire.max_cache_bytes;
  // Clamp instead of trusting the peer: a negative or absurd share cap
  // must not reach the scheduler.
  exec->parallelism = wire.parallelism < 1 ? 1 : wire.parallelism;
  exec->priority = wire.priority <= static_cast<uint8_t>(QueryPriority::kHigh)
                       ? static_cast<QueryPriority>(wire.priority)
                       : QueryPriority::kNormal;
  exec->admission_timeout_ms = wire.admission_timeout_ms;
  exec->use_plan_cache = wire.use_plan_cache;
  exec->checkpoint.enabled = wire.checkpoint_enabled;
  exec->checkpoint.chunk = wire.checkpoint_chunk < 0 ? 0 : wire.checkpoint_chunk;
  exec->checkpoint.suspend_every_chunks =
      wire.checkpoint_every < 0 ? 0 : wire.checkpoint_every;
  exec->checkpoint.path = wire.checkpoint_path;
}

// --------------------------------------------------------------------------
// WireWriter
// --------------------------------------------------------------------------

void WireWriter::F64(double v) {
  // Bit-pattern transport: the client reassembles the exact double, so
  // remote rows stay byte-identical to local execution.
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void WireWriter::Str(const std::string& s) {
  U32(static_cast<uint32_t>(s.size()));
  buf_.append(s);
}

void WireWriter::Value(const seq::Value& v) {
  U8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case TypeId::kInt64:
      I64(v.int64());
      break;
    case TypeId::kDouble:
      F64(v.dbl());
      break;
    case TypeId::kBool:
      U8(v.boolean() ? 1 : 0);
      break;
    case TypeId::kString:
      Str(v.str());
      break;
  }
}

void WireWriter::Stats(const AccessStats& stats) {
  I64(stats.stream_records);
  I64(stats.stream_pages);
  I64(stats.probes);
  I64(stats.probe_pages);
  I64(stats.cache_stores);
  I64(stats.cache_hits);
  I64(stats.predicate_evals);
  I64(stats.agg_steps);
  I64(stats.records_output);
  F64(stats.simulated_cost);
}

// --------------------------------------------------------------------------
// WireCursor
// --------------------------------------------------------------------------

Status WireCursor::Need(size_t n) {
  if (size_ - off_ < n) {
    return Status::DataLoss("truncated frame body: need " + std::to_string(n) +
                            " more bytes, have " +
                            std::to_string(size_ - off_));
  }
  return Status::OK();
}

Status WireCursor::U8(uint8_t* v) {
  SEQ_RETURN_IF_ERROR(Need(1));
  *v = static_cast<uint8_t>(data_[off_++]);
  return Status::OK();
}

Status WireCursor::U16(uint16_t* v) {
  SEQ_RETURN_IF_ERROR(Need(2));
  uint16_t out = 0;
  for (size_t i = 0; i < 2; ++i) {
    out |= static_cast<uint16_t>(static_cast<unsigned char>(data_[off_ + i]))
           << (8 * i);
  }
  off_ += 2;
  *v = out;
  return Status::OK();
}

Status WireCursor::U32(uint32_t* v) {
  SEQ_RETURN_IF_ERROR(Need(4));
  uint32_t out = 0;
  for (size_t i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(static_cast<unsigned char>(data_[off_ + i]))
           << (8 * i);
  }
  off_ += 4;
  *v = out;
  return Status::OK();
}

Status WireCursor::U64(uint64_t* v) {
  SEQ_RETURN_IF_ERROR(Need(8));
  uint64_t out = 0;
  for (size_t i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(static_cast<unsigned char>(data_[off_ + i]))
           << (8 * i);
  }
  off_ += 8;
  *v = out;
  return Status::OK();
}

Status WireCursor::I64(int64_t* v) {
  uint64_t u = 0;
  SEQ_RETURN_IF_ERROR(U64(&u));
  *v = static_cast<int64_t>(u);
  return Status::OK();
}

Status WireCursor::F64(double* v) {
  uint64_t bits = 0;
  SEQ_RETURN_IF_ERROR(U64(&bits));
  std::memcpy(v, &bits, sizeof(*v));
  return Status::OK();
}

Status WireCursor::Str(std::string* s) {
  uint32_t len = 0;
  SEQ_RETURN_IF_ERROR(U32(&len));
  if (len > kMaxFrameBytes) {
    return Status::InvalidArgument("string length " + std::to_string(len) +
                                   " exceeds the frame limit");
  }
  SEQ_RETURN_IF_ERROR(Need(len));
  s->assign(data_ + off_, len);
  off_ += len;
  return Status::OK();
}

Status WireCursor::Value(seq::Value* v) {
  uint8_t tag = 0;
  SEQ_RETURN_IF_ERROR(U8(&tag));
  switch (static_cast<TypeId>(tag)) {
    case TypeId::kInt64: {
      int64_t i = 0;
      SEQ_RETURN_IF_ERROR(I64(&i));
      *v = seq::Value::Int64(i);
      return Status::OK();
    }
    case TypeId::kDouble: {
      double d = 0;
      SEQ_RETURN_IF_ERROR(F64(&d));
      *v = seq::Value::Double(d);
      return Status::OK();
    }
    case TypeId::kBool: {
      uint8_t b = 0;
      SEQ_RETURN_IF_ERROR(U8(&b));
      *v = seq::Value::Bool(b != 0);
      return Status::OK();
    }
    case TypeId::kString: {
      std::string s;
      SEQ_RETURN_IF_ERROR(Str(&s));
      *v = seq::Value::String(std::move(s));
      return Status::OK();
    }
  }
  return Status::InvalidArgument("unknown value type tag " +
                                 std::to_string(tag));
}

Status WireCursor::Stats(AccessStats* stats) {
  SEQ_RETURN_IF_ERROR(I64(&stats->stream_records));
  SEQ_RETURN_IF_ERROR(I64(&stats->stream_pages));
  SEQ_RETURN_IF_ERROR(I64(&stats->probes));
  SEQ_RETURN_IF_ERROR(I64(&stats->probe_pages));
  SEQ_RETURN_IF_ERROR(I64(&stats->cache_stores));
  SEQ_RETURN_IF_ERROR(I64(&stats->cache_hits));
  SEQ_RETURN_IF_ERROR(I64(&stats->predicate_evals));
  SEQ_RETURN_IF_ERROR(I64(&stats->agg_steps));
  SEQ_RETURN_IF_ERROR(I64(&stats->records_output));
  SEQ_RETURN_IF_ERROR(F64(&stats->simulated_cost));
  return Status::OK();
}

// --------------------------------------------------------------------------
// Blob helpers
// --------------------------------------------------------------------------

void EncodeRunOptions(const WireRunOptions& o, WireWriter* w) {
  w->U8(o.use_batch ? 1 : 0);
  w->U64(o.batch_capacity);
  w->I64(o.max_rows);
  w->I64(o.max_pages);
  w->I64(o.max_wall_ms);
  w->I64(o.max_cache_bytes);
  w->I64(o.parallelism);
  w->U8(o.priority);
  w->I64(o.admission_timeout_ms);
  w->U8(o.use_plan_cache ? 1 : 0);
  w->U8(o.checkpoint_enabled ? 1 : 0);
  w->I64(o.checkpoint_chunk);
  w->I64(o.checkpoint_every);
  w->Str(o.checkpoint_path);
  w->U8(o.collect_stats ? 1 : 0);
}

Status DecodeRunOptions(WireCursor* c, WireRunOptions* o) {
  uint8_t b = 0;
  SEQ_RETURN_IF_ERROR(c->U8(&b));
  o->use_batch = b != 0;
  SEQ_RETURN_IF_ERROR(c->U64(&o->batch_capacity));
  SEQ_RETURN_IF_ERROR(c->I64(&o->max_rows));
  SEQ_RETURN_IF_ERROR(c->I64(&o->max_pages));
  SEQ_RETURN_IF_ERROR(c->I64(&o->max_wall_ms));
  SEQ_RETURN_IF_ERROR(c->I64(&o->max_cache_bytes));
  int64_t parallelism = 0;
  SEQ_RETURN_IF_ERROR(c->I64(&parallelism));
  o->parallelism = static_cast<int32_t>(parallelism);
  SEQ_RETURN_IF_ERROR(c->U8(&o->priority));
  SEQ_RETURN_IF_ERROR(c->I64(&o->admission_timeout_ms));
  SEQ_RETURN_IF_ERROR(c->U8(&b));
  o->use_plan_cache = b != 0;
  SEQ_RETURN_IF_ERROR(c->U8(&b));
  o->checkpoint_enabled = b != 0;
  SEQ_RETURN_IF_ERROR(c->I64(&o->checkpoint_chunk));
  SEQ_RETURN_IF_ERROR(c->I64(&o->checkpoint_every));
  SEQ_RETURN_IF_ERROR(c->Str(&o->checkpoint_path));
  SEQ_RETURN_IF_ERROR(c->U8(&b));
  o->collect_stats = b != 0;
  return Status::OK();
}

void EncodeSchema(const Schema& schema, WireWriter* w) {
  w->U32(static_cast<uint32_t>(schema.num_fields()));
  for (const Field& f : schema.fields()) {
    w->Str(f.name);
    w->U8(static_cast<uint8_t>(f.type));
  }
}

Result<SchemaPtr> DecodeSchema(WireCursor* c) {
  uint32_t n = 0;
  SEQ_RETURN_IF_ERROR(c->U32(&n));
  if (n > kMaxFrameBytes / 5) {
    return Status::InvalidArgument("schema field count " + std::to_string(n) +
                                   " exceeds the frame limit");
  }
  std::vector<Field> fields;
  fields.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Field f;
    SEQ_RETURN_IF_ERROR(c->Str(&f.name));
    uint8_t type = 0;
    SEQ_RETURN_IF_ERROR(c->U8(&type));
    if (type > static_cast<uint8_t>(TypeId::kString)) {
      return Status::InvalidArgument("unknown field type tag " +
                                     std::to_string(type));
    }
    f.type = static_cast<TypeId>(type);
    fields.push_back(std::move(f));
  }
  return Schema::Make(std::move(fields));
}

void EncodeRow(Position pos, const Record& rec, WireWriter* w) {
  w->I64(pos);
  w->U32(static_cast<uint32_t>(rec.size()));
  for (const seq::Value& v : rec) w->Value(v);
}

Status DecodeRow(WireCursor* c, PosRecord* row) {
  SEQ_RETURN_IF_ERROR(c->I64(&row->pos));
  uint32_t n = 0;
  SEQ_RETURN_IF_ERROR(c->U32(&n));
  if (n > kMaxFrameBytes / 2) {
    return Status::InvalidArgument("row field count " + std::to_string(n) +
                                   " exceeds the frame limit");
  }
  row->rec.clear();
  row->rec.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    seq::Value v;
    SEQ_RETURN_IF_ERROR(c->Value(&v));
    row->rec.push_back(std::move(v));
  }
  return Status::OK();
}

std::string EncodeDone(const Status& status, uint64_t value, bool is_rows,
                       const AccessStats* stats) {
  WireWriter w;
  w.U8(static_cast<uint8_t>(status.code()));
  w.Str(status.ok() ? std::string() : status.message());
  w.U64(value);
  w.U8(is_rows ? 1 : 0);
  w.U8(stats != nullptr ? 1 : 0);
  if (stats != nullptr) w.Stats(*stats);
  return w.Take();
}

Status DecodeDone(WireCursor* c, DoneReply* done) {
  SEQ_RETURN_IF_ERROR(c->U8(&done->code));
  SEQ_RETURN_IF_ERROR(c->Str(&done->message));
  SEQ_RETURN_IF_ERROR(c->U64(&done->value));
  uint8_t b = 0;
  SEQ_RETURN_IF_ERROR(c->U8(&b));
  done->is_rows = b != 0;
  SEQ_RETURN_IF_ERROR(c->U8(&b));
  done->has_stats = b != 0;
  if (done->has_stats) SEQ_RETURN_IF_ERROR(c->Stats(&done->stats));
  return Status::OK();
}

Status DoneToStatus(const DoneReply& done) {
  if (done.code == 0) return Status::OK();
  if (done.code > static_cast<uint8_t>(StatusCode::kFailedPrecondition)) {
    return Status::Internal("server sent unknown status code " +
                            std::to_string(done.code) + ": " + done.message);
  }
  return Status(static_cast<StatusCode>(done.code), done.message);
}

// --------------------------------------------------------------------------
// Framed socket I/O
// --------------------------------------------------------------------------

namespace {

Status WriteAll(int fd, const char* data, size_t size) {
  size_t off = 0;
  while (off < size) {
    const ssize_t n = ::send(fd, data + off, size - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(std::string("socket write failed: ") +
                                 std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Reads exactly `size` bytes. `*got` reports how many arrived before an
/// EOF, so the caller can tell "closed between frames" from "truncated
/// mid-frame".
Status ReadAll(int fd, char* data, size_t size, size_t* got) {
  *got = 0;
  while (*got < size) {
    const ssize_t n = ::recv(fd, data + *got, size - *got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(std::string("socket read failed: ") +
                                 std::strerror(errno));
    }
    if (n == 0) {
      return Status::DataLoss("connection closed mid-read");
    }
    *got += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

std::string BuildFrame(uint64_t request_id, Opcode opcode, std::string body) {
  WireWriter header;
  header.U64(request_id);
  header.U8(static_cast<uint8_t>(opcode));
  return header.Take() + body;
}

Status WriteFrame(int fd, const std::string& payload) {
  WireWriter prefix;
  prefix.U32(static_cast<uint32_t>(payload.size()));
  SEQ_RETURN_IF_ERROR(WriteAll(fd, prefix.buffer().data(), 4));
  return WriteAll(fd, payload.data(), payload.size());
}

Status ReadFrame(int fd, Frame* frame, bool* clean_eof) {
  *clean_eof = false;
  char prefix[4];
  size_t got = 0;
  Status r = ReadAll(fd, prefix, 4, &got);
  if (!r.ok()) {
    if (got == 0 && r.code() == StatusCode::kDataLoss) {
      // EOF on a frame boundary: the peer hung up cleanly.
      *clean_eof = true;
      return Status::NotFound("connection closed");
    }
    if (r.code() == StatusCode::kDataLoss) {
      return Status::DataLoss("truncated length prefix (" +
                              std::to_string(got) + " of 4 bytes)");
    }
    return r;
  }
  uint32_t length = 0;
  for (size_t i = 0; i < 4; ++i) {
    length |= static_cast<uint32_t>(static_cast<unsigned char>(prefix[i]))
              << (8 * i);
  }
  if (length > kMaxFrameBytes) {
    return Status::InvalidArgument(
        "declared frame length " + std::to_string(length) +
        " exceeds the limit (" + std::to_string(kMaxFrameBytes) +
        "); closing desynchronized stream");
  }
  if (length < 9) {
    return Status::InvalidArgument("frame too short for request id + opcode (" +
                                   std::to_string(length) + " bytes)");
  }
  std::string payload(length, '\0');
  SEQ_RETURN_IF_ERROR(ReadAll(fd, payload.data(), length, &got));
  WireCursor cursor(payload);
  SEQ_RETURN_IF_ERROR(cursor.U64(&frame->request_id));
  SEQ_RETURN_IF_ERROR(cursor.U8(&frame->opcode));
  frame->body.assign(payload, 9, payload.size() - 9);
  return Status::OK();
}

}  // namespace seq
