#ifndef SEQ_NET_WIRE_H_
#define SEQ_NET_WIRE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/engine.h"
#include "storage/access_stats.h"
#include "types/record.h"
#include "types/schema.h"
#include "types/span.h"
#include "types/value.h"

namespace seq {

// ---------------------------------------------------------------------------
// The seqserved wire protocol (docs/server.md).
//
// Every frame is a 4-byte little-endian payload length followed by the
// payload: u64 request id, u8 opcode, opcode-specific body. Request ids
// are chosen by the client and echoed on every reply; each request is
// terminated by exactly one DONE frame (row-batch / schema / text frames
// may precede it). All integers are little-endian; strings are u32 length
// + bytes. The protocol version is exchanged in HELLO and must match
// exactly — there is no cross-version negotiation.
// ---------------------------------------------------------------------------

inline constexpr uint32_t kWireProtocolVersion = 1;

/// Upper bound on a declared payload length. A length above this is a
/// protocol error and closes the connection — it is far more likely a
/// desynchronized or malicious stream than a real frame, and accepting it
/// would let one client commit the server to an arbitrary allocation.
inline constexpr uint32_t kMaxFrameBytes = 16u * 1024 * 1024;

/// Row-batch flush thresholds for streaming result delivery.
inline constexpr size_t kRowBatchRows = 256;
inline constexpr size_t kRowBatchBytes = 64 * 1024;

enum class Opcode : uint8_t {
  // Requests.
  kHello = 1,
  kQuery = 2,
  kPrepare = 3,
  kExecutePrepared = 4,
  kCloseStatement = 5,
  kSuspend = 6,
  kResume = 7,
  kTelemetry = 8,
  kCommand = 9,
  kGoodbye = 10,
  // Replies.
  kReplyHello = 64,
  kReplyText = 65,
  kReplySchema = 66,
  kReplyRows = 67,
  kReplyDone = 68,
};

/// The remote-safe execution options carried on every query-bearing
/// request: the subset of ExecOptions a client may set per session
/// (budgets, driving mode, parallelism share, priority, checkpointing).
/// Pointer-valued knobs (sinks, fault injectors, telemetry, cancel flags)
/// never cross the wire — the server owns those.
struct WireRunOptions {
  bool use_batch = true;
  uint64_t batch_capacity = 0;  ///< 0 = server default
  int64_t max_rows = 0;
  int64_t max_pages = 0;
  int64_t max_wall_ms = 0;
  int64_t max_cache_bytes = 0;
  int32_t parallelism = 1;
  uint8_t priority = 1;  ///< QueryPriority enum value
  int64_t admission_timeout_ms = 0;
  bool use_plan_cache = true;
  bool checkpoint_enabled = false;
  int64_t checkpoint_chunk = 0;
  int64_t checkpoint_every = 0;
  std::string checkpoint_path;
  bool collect_stats = false;
};

/// Captures the wire-transportable subset of `opts` (and the session's
/// stats toggle); ApplyWireRunOptions rebuilds ExecOptions server-side.
WireRunOptions CaptureWireRunOptions(const RunOptions& opts,
                                     bool collect_stats);
void ApplyWireRunOptions(const WireRunOptions& wire, ExecOptions* exec);

// ---------------------------------------------------------------------------
// Payload encoding. A WireWriter accumulates one frame's payload; a
// WireCursor decodes one with bounds-checked reads — every malformed or
// truncated body surfaces as a Status, never as out-of-bounds access.
// ---------------------------------------------------------------------------

class WireWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U16(uint16_t v) { AppendLe(v); }
  void U32(uint32_t v) { AppendLe(v); }
  void U64(uint64_t v) { AppendLe(v); }
  void I64(int64_t v) { AppendLe(static_cast<uint64_t>(v)); }
  void F64(double v);
  void Str(const std::string& s);
  void Value(const class Value& v);
  void Stats(const AccessStats& stats);

  const std::string& buffer() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  template <typename T>
  void AppendLe(T v) {
    for (size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }
  std::string buf_;
};

class WireCursor {
 public:
  explicit WireCursor(const std::string& payload)
      : data_(payload.data()), size_(payload.size()) {}
  WireCursor(const char* data, size_t size) : data_(data), size_(size) {}

  Status U8(uint8_t* v);
  Status U16(uint16_t* v);
  Status U32(uint32_t* v);
  Status U64(uint64_t* v);
  Status I64(int64_t* v);
  Status F64(double* v);
  Status Str(std::string* s);
  Status Value(class Value* v);
  Status Stats(AccessStats* stats);

  size_t remaining() const { return size_ - off_; }
  bool Exhausted() const { return off_ == size_; }

 private:
  Status Need(size_t n);
  const char* data_;
  size_t size_;
  size_t off_ = 0;
};

/// Options blob used inside request bodies.
void EncodeRunOptions(const WireRunOptions& o, WireWriter* w);
Status DecodeRunOptions(WireCursor* c, WireRunOptions* o);

/// Schema frame body.
void EncodeSchema(const Schema& schema, WireWriter* w);
Result<SchemaPtr> DecodeSchema(WireCursor* c);

/// One row inside a ROWS frame: i64 position, u32 field count, values.
void EncodeRow(Position pos, const Record& rec, WireWriter* w);
Status DecodeRow(WireCursor* c, PosRecord* row);

/// The DONE frame body terminating every request: u8 status code, str
/// message, u64 value (statement id for PREPARE, row count for
/// row-bearing requests, else 0), u8 is_rows, u8 has_stats [+ stats].
struct DoneReply {
  uint8_t code = 0;
  std::string message;
  uint64_t value = 0;
  bool is_rows = false;
  bool has_stats = false;
  AccessStats stats;
};

std::string EncodeDone(const Status& status, uint64_t value, bool is_rows,
                       const AccessStats* stats);
Status DecodeDone(WireCursor* c, DoneReply* done);

/// Reconstructs the request's Status from a decoded DONE body.
Status DoneToStatus(const DoneReply& done);

// ---------------------------------------------------------------------------
// Framed socket I/O. Both sides block; short reads/writes are retried
// until complete. Writes use MSG_NOSIGNAL so a dead peer surfaces as a
// Status, not SIGPIPE.
// ---------------------------------------------------------------------------

struct Frame {
  uint64_t request_id = 0;
  uint8_t opcode = 0;
  std::string body;  ///< payload after the request id + opcode header
};

/// Writes one frame. `payload` must already start with the request id and
/// opcode (BuildFrame composes it).
Status WriteFrame(int fd, const std::string& payload);

/// Composes a frame payload: request id + opcode + body.
std::string BuildFrame(uint64_t request_id, Opcode opcode, std::string body);

/// Reads one frame. Distinguishes the three failure shapes the server
/// cares about: clean EOF between frames (`*clean_eof` set, NotFound
/// status), a truncated prefix or body (DataLoss), and an oversized
/// declared length (InvalidArgument — the connection must close, the
/// stream cannot be resynchronized).
Status ReadFrame(int fd, Frame* frame, bool* clean_eof);

}  // namespace seq

#endif  // SEQ_NET_WIRE_H_
