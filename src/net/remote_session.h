#ifndef SEQ_NET_REMOTE_SESSION_H_
#define SEQ_NET_REMOTE_SESSION_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/session.h"
#include "net/wire.h"

namespace seq {

/// A Session speaking the wire protocol to a seqserved instance — the
/// engine behind seqsh --connect. Every Session call becomes one request
/// frame and blocks until its DONE reply; row batches stream into
/// `options().sink` when set, otherwise they accumulate in the reply, so
/// a remote query behaves exactly like LocalSession from the caller's
/// side. id() reports the server-assigned session id (what `.queries`
/// shows as s<id>).
///
/// Thread contract: requests are serialized on an internal mutex; Close()
/// may be called from any thread and unblocks an in-flight request by
/// shutting the socket down (the server sees the disconnect and cancels
/// the query).
class RemoteSession : public Session {
 public:
  /// Dials `host:port` (IPv4 dotted quad or "localhost") and performs the
  /// HELLO exchange; fails on unreachable server or version mismatch.
  static Result<std::unique_ptr<RemoteSession>> Connect(
      const std::string& host, int port);

  ~RemoteSession() override;

  Result<ExecuteReply> Execute(const std::string& source) override;
  Result<uint64_t> Prepare(const std::string& source) override;
  Result<ExecuteReply> ExecutePrepared(uint64_t statement_id) override;
  Status CloseStatement(uint64_t statement_id) override;
  Status Suspend(uint64_t query_id) override;
  Result<ExecuteReply> Resume(const std::string& checkpoint_path) override;
  Result<std::string> Telemetry(const std::string& kind) override;
  Result<std::string> Command(const std::vector<std::string>& args) override;
  void Close() override;

 private:
  RemoteSession() = default;

  /// Sends one request and consumes reply frames until DONE. `value`
  /// receives the DONE value field (statement id / row count).
  Result<ExecuteReply> RoundTrip(Opcode opcode, std::string body,
                                 uint64_t* value = nullptr);
  /// The session options + stats toggle blob prefixed to query-bearing
  /// requests.
  std::string OptionsBlob() const;

  int fd_ = -1;
  uint64_t next_request_ = 1;
  std::mutex mu_;
  std::atomic<bool> closed_{false};
};

}  // namespace seq

#endif  // SEQ_NET_REMOTE_SESSION_H_
