#include "net/remote_session.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

namespace seq {

namespace {

void AppendRange(const std::optional<Span>& range, WireWriter* w) {
  w->U8(range.has_value() ? 1 : 0);
  if (range.has_value()) {
    w->I64(range->start);
    w->I64(range->end);
  }
}

}  // namespace

Result<std::unique_ptr<RemoteSession>> RemoteSession::Connect(
    const std::string& host, int port) {
  const std::string dial = (host.empty() || host == "localhost")
                               ? std::string("127.0.0.1")
                               : host;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, dial.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("cannot parse host address '" + dial +
                                   "' (IPv4 dotted quad expected)");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Unavailable(std::string("socket: ") + std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Unavailable("connect " + dial + ":" + std::to_string(port) +
                               ": " + err);
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  auto session = std::unique_ptr<RemoteSession>(new RemoteSession());
  session->fd_ = fd;
  WireWriter hello;
  hello.U32(kWireProtocolVersion);
  hello.Str("seqsh");
  Result<ExecuteReply> reply =
      session->RoundTrip(Opcode::kHello, hello.Take());
  if (!reply.ok()) return reply.status();
  return session;
}

RemoteSession::~RemoteSession() {
  Close();
  if (fd_ >= 0) ::close(fd_);
}

void RemoteSession::Close() {
  if (closed_.exchange(true, std::memory_order_acq_rel)) return;
  // Best-effort GOODBYE when no request is in flight; if one is, the
  // shutdown below unblocks it and the server treats the drop as a
  // disconnect, cancelling the query server-side.
  if (mu_.try_lock()) {
    WriteFrame(fd_, BuildFrame(next_request_++, Opcode::kGoodbye, ""));
    mu_.unlock();
  }
  ::shutdown(fd_, SHUT_RDWR);
}

std::string RemoteSession::OptionsBlob() const {
  WireWriter w;
  EncodeRunOptions(CaptureWireRunOptions(options_, collect_stats_), &w);
  return w.Take();
}

Result<ExecuteReply> RemoteSession::RoundTrip(Opcode opcode, std::string body,
                                              uint64_t* value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_.load(std::memory_order_acquire)) {
    return Status::Cancelled("session " + std::to_string(id_) + " is closed");
  }
  const uint64_t rid = next_request_++;
  Status sent = WriteFrame(fd_, BuildFrame(rid, opcode, std::move(body)));
  if (!sent.ok()) {
    closed_.store(true, std::memory_order_release);
    return sent;
  }
  ExecuteReply reply;
  for (;;) {
    Frame frame;
    bool clean_eof = false;
    Status s = ReadFrame(fd_, &frame, &clean_eof);
    if (!s.ok()) {
      closed_.store(true, std::memory_order_release);
      return Status::Unavailable("server connection lost: " + s.message());
    }
    if (frame.request_id != rid) continue;  // stale reply; skip
    WireCursor c(frame.body);
    switch (static_cast<Opcode>(frame.opcode)) {
      case Opcode::kReplyHello: {
        uint32_t version = 0;
        uint64_t session_id = 0;
        std::string banner;
        SEQ_RETURN_IF_ERROR(c.U32(&version));
        SEQ_RETURN_IF_ERROR(c.U64(&session_id));
        SEQ_RETURN_IF_ERROR(c.Str(&banner));
        // Adopt the server's id so `.queries` attribution (s<id>) matches
        // what this client prints.
        id_ = session_id;
        break;
      }
      case Opcode::kReplyText: {
        std::string text;
        SEQ_RETURN_IF_ERROR(c.Str(&text));
        reply.text += text;
        break;
      }
      case Opcode::kReplySchema: {
        SEQ_ASSIGN_OR_RETURN(reply.schema, DecodeSchema(&c));
        break;
      }
      case Opcode::kReplyRows: {
        uint32_t n = 0;
        SEQ_RETURN_IF_ERROR(c.U32(&n));
        for (uint32_t i = 0; i < n; ++i) {
          PosRecord row;
          SEQ_RETURN_IF_ERROR(DecodeRow(&c, &row));
          if (options_.sink) {
            options_.sink(row.pos, row.rec);
          } else {
            reply.rows.push_back(std::move(row));
          }
        }
        break;
      }
      case Opcode::kReplyDone: {
        DoneReply done;
        SEQ_RETURN_IF_ERROR(DecodeDone(&c, &done));
        SEQ_RETURN_IF_ERROR(DoneToStatus(done));
        if (value != nullptr) *value = done.value;
        reply.is_rows = done.is_rows;
        reply.has_stats = done.has_stats;
        reply.stats = done.stats;
        return reply;
      }
      default:
        return Status::Internal("unexpected reply opcode " +
                                std::to_string(frame.opcode));
    }
  }
}

Result<ExecuteReply> RemoteSession::Execute(const std::string& source) {
  WireWriter w;
  std::string body = OptionsBlob();
  AppendRange(range_, &w);
  w.Str(source);
  return RoundTrip(Opcode::kQuery, body + w.Take());
}

Result<uint64_t> RemoteSession::Prepare(const std::string& source) {
  WireWriter w;
  std::string body = OptionsBlob();
  AppendRange(range_, &w);
  w.Str(source);
  uint64_t statement_id = 0;
  Result<ExecuteReply> reply =
      RoundTrip(Opcode::kPrepare, body + w.Take(), &statement_id);
  if (!reply.ok()) return reply.status();
  return statement_id;
}

Result<ExecuteReply> RemoteSession::ExecutePrepared(uint64_t statement_id) {
  WireWriter w;
  w.U64(statement_id);
  return RoundTrip(Opcode::kExecutePrepared, OptionsBlob() + w.Take());
}

Status RemoteSession::CloseStatement(uint64_t statement_id) {
  WireWriter w;
  w.U64(statement_id);
  return RoundTrip(Opcode::kCloseStatement, w.Take()).status();
}

Status RemoteSession::Suspend(uint64_t query_id) {
  WireWriter w;
  w.U64(query_id);
  return RoundTrip(Opcode::kSuspend, w.Take()).status();
}

Result<ExecuteReply> RemoteSession::Resume(const std::string& checkpoint_path) {
  WireWriter w;
  w.Str(checkpoint_path);
  return RoundTrip(Opcode::kResume, OptionsBlob() + w.Take());
}

Result<std::string> RemoteSession::Telemetry(const std::string& kind) {
  WireWriter w;
  w.Str(kind);
  Result<ExecuteReply> reply = RoundTrip(Opcode::kTelemetry, w.Take());
  if (!reply.ok()) return reply.status();
  return reply->text;
}

Result<std::string> RemoteSession::Command(
    const std::vector<std::string>& args) {
  WireWriter w;
  w.U32(static_cast<uint32_t>(args.size()));
  for (const std::string& arg : args) w.Str(arg);
  Result<ExecuteReply> reply = RoundTrip(Opcode::kCommand, w.Take());
  if (!reply.ok()) return reply.status();
  return reply->text;
}

}  // namespace seq
