// seqserved: the network front-end of the sequence engine (docs/server.md).
//
//   seqserved [--host H] [--port N] [--init script.seq]
//
// Binds H:N (default 127.0.0.1, $SEQ_PORT or 7654; --port 0 picks an
// ephemeral port), optionally seeds the shared engine from an init script
// (seqsh syntax: `.command` lines and Sequin statements), then serves the
// wire protocol until SIGINT/SIGTERM. View definitions in the init script
// are promoted to engine views so every client session sees them.

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>

#include "common/string_util.h"
#include "core/session.h"
#include "net/server.h"

namespace {

std::atomic<bool> g_stop{false};

void OnSignal(int) { g_stop.store(true, std::memory_order_release); }

std::vector<std::string> SplitArgs(const std::string& line) {
  std::vector<std::string> args;
  std::istringstream iss(line);
  std::string arg;
  while (iss >> arg) args.push_back(std::move(arg));
  return args;
}

int RunInitScript(const std::string& path, seq::Engine* engine,
                  std::shared_mutex* gate) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "seqserved: cannot open init script " << path << "\n";
    return 1;
  }
  seq::LocalSession session(engine, gate);
  std::string line;
  std::string pending;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string text{seq::StripAsciiWhitespace(line)};
    if (text.empty() || text[0] == '#') continue;
    if (text[0] == '.' && pending.empty()) {
      std::vector<std::string> args = SplitArgs(text.substr(1));
      seq::Result<std::string> out = session.Command(args);
      if (!out.ok()) {
        std::cerr << "seqserved: " << path << ":" << lineno << ": "
                  << out.status().ToString() << "\n";
        return 1;
      }
      std::cout << *out;
      continue;
    }
    pending += text;
    pending += "\n";
    if (text.back() != ';') continue;
    seq::Result<seq::ExecuteReply> reply = session.Execute(pending);
    pending.clear();
    if (!reply.ok()) {
      std::cerr << "seqserved: " << path << ":" << lineno << ": "
                << reply.status().ToString() << "\n";
      return 1;
    }
    if (!reply->text.empty()) std::cout << reply->text;
  }
  // Promote the script's view definitions to engine views: init state
  // must outlive the init session and be visible to every client.
  for (const auto& [name, graph] : session.views()) {
    seq::Status s = engine->DefineView(name, graph);
    if (!s.ok()) {
      std::cerr << "seqserved: promoting view " << name << ": "
                << s.ToString() << "\n";
      return 1;
    }
  }
  return 0;
}

int DefaultPort() {
  const char* env = std::getenv("SEQ_PORT");
  if (env != nullptr && *env != '\0') {
    const int port = std::atoi(env);
    if (port >= 0 && port <= 65535) return port;
  }
  return 7654;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = DefaultPort();
  std::string init;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (arg == "--init" && i + 1 < argc) {
      init = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: seqserved [--host H] [--port N] [--init script]\n"
                   "  --host H   bind address (default 127.0.0.1)\n"
                   "  --port N   TCP port (default $SEQ_PORT or 7654; 0 = "
                   "ephemeral)\n"
                   "  --init F   seed the engine from a seqsh-style script\n";
      return 0;
    } else {
      std::cerr << "seqserved: unknown argument " << arg
                << " (try --help)\n";
      return 1;
    }
  }

  seq::Engine engine;
  std::shared_mutex gate;
  if (!init.empty()) {
    const int rc = RunInitScript(init, &engine, &gate);
    if (rc != 0) return rc;
  }

  seq::SeqServer server(&engine, &gate);
  seq::Result<int> bound = server.Start(host, port);
  if (!bound.ok()) {
    std::cerr << "seqserved: " << bound.status().ToString() << "\n";
    return 1;
  }
  std::cout << "seqserved listening on " << host << ":" << *bound
            << std::endl;

  struct sigaction sa {};
  sa.sa_handler = OnSignal;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
  while (!g_stop.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  server.Stop();
  std::cout << "seqserved: shut down\n";
  return 0;
}
