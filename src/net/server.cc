#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>

#include "core/session.h"
#include "net/wire.h"
#include "obs/metrics.h"

namespace seq {

namespace {

/// Sole writer for one connection: frames out, net.bytes_out accounting,
/// and sticky failure — after one failed write nothing else is attempted,
/// the connection tears down.
class ReplyWriter {
 public:
  explicit ReplyWriter(int fd) : fd_(fd) {}

  bool Send(uint64_t request_id, Opcode opcode, std::string body) {
    if (failed_) return false;
    const std::string payload =
        BuildFrame(request_id, opcode, std::move(body));
    if (!WriteFrame(fd_, payload).ok()) {
      failed_ = true;
      return false;
    }
    MetricsRegistry::Global().Counter("net.bytes_out").Add(
        static_cast<int64_t>(4 + payload.size()));
    return true;
  }

  bool SendDone(uint64_t request_id, const Status& status, uint64_t value = 0,
                bool is_rows = false, const AccessStats* stats = nullptr) {
    return Send(request_id, Opcode::kReplyDone,
                EncodeDone(status, value, is_rows, stats));
  }

  bool SendText(uint64_t request_id, const std::string& text) {
    WireWriter w;
    w.Str(text);
    return Send(request_id, Opcode::kReplyText, w.Take());
  }

  bool failed() const { return failed_; }

 private:
  int fd_;
  bool failed_ = false;
};

/// Accumulates streamed rows into ROWS frames, flushing on the batch
/// thresholds so a large result leaves the server incrementally instead
/// of materializing. Installed as the session's RowSink for QUERY and
/// EXECUTE-PREPARED (except checkpoint-enabled runs, where sink execution
/// is invalid and the server falls back to materialized delivery).
class RowStreamer {
 public:
  RowStreamer(ReplyWriter* out, uint64_t request_id)
      : out_(out), request_id_(request_id) {}

  void Add(Position pos, const Record& rec) {
    if (out_->failed()) return;
    EncodeRow(pos, rec, &body_);
    ++rows_;
    ++total_;
    if (rows_ >= kRowBatchRows || body_.buffer().size() >= kRowBatchBytes) {
      Flush();
    }
  }

  void Flush() {
    if (rows_ == 0 || out_->failed()) return;
    WireWriter framed;
    framed.U32(static_cast<uint32_t>(rows_));
    if (out_->Send(request_id_, Opcode::kReplyRows,
                   framed.Take() + body_.Take())) {
      MetricsRegistry::Global().Counter("net.rows_streamed").Add(
          static_cast<int64_t>(rows_));
    }
    rows_ = 0;
    body_ = WireWriter();
  }

  uint64_t total() const { return total_; }

 private:
  ReplyWriter* out_;
  uint64_t request_id_;
  WireWriter body_;
  size_t rows_ = 0;
  uint64_t total_ = 0;
};

/// Materialized-row delivery (RESUME, checkpoint-enabled runs): same
/// frames as RowStreamer, fed from the reply vector.
void SendRows(ReplyWriter* out, uint64_t request_id,
              const std::vector<PosRecord>& rows) {
  RowStreamer streamer(out, request_id);
  for (const PosRecord& row : rows) streamer.Add(row.pos, row.rec);
  streamer.Flush();
}

/// Decodes an options blob + range prefix and installs both as the
/// session's defaults for this and subsequent requests.
Status ApplySessionOptions(WireCursor* c, LocalSession* session) {
  WireRunOptions wire;
  SEQ_RETURN_IF_ERROR(DecodeRunOptions(c, &wire));
  ApplyWireRunOptions(wire, &session->options().exec);
  session->set_collect_stats(wire.collect_stats);
  return Status::OK();
}

Status ApplyRange(WireCursor* c, LocalSession* session) {
  uint8_t has_range = 0;
  SEQ_RETURN_IF_ERROR(c->U8(&has_range));
  if (has_range != 0) {
    int64_t start = 0;
    int64_t end = 0;
    SEQ_RETURN_IF_ERROR(c->I64(&start));
    SEQ_RETURN_IF_ERROR(c->I64(&end));
    session->range() = Span::Of(start, end);
  } else {
    session->range().reset();
  }
  return Status::OK();
}

/// Sends the reply tail shared by every row-bearing request: TEXT (view
/// definitions, EXPLAIN output), ROWS already streamed or sent here,
/// SCHEMA, then DONE with the row count and optional stats blob.
void FinishRowReply(ReplyWriter* out, uint64_t request_id,
                    const ExecuteReply& reply, uint64_t streamed_rows,
                    bool streamed) {
  if (!reply.text.empty()) out->SendText(request_id, reply.text);
  uint64_t row_count = 0;
  if (reply.is_rows) {
    if (streamed) {
      row_count = streamed_rows;
    } else {
      SendRows(out, request_id, reply.rows);
      row_count = reply.rows.size();
    }
    if (reply.schema != nullptr) {
      WireWriter w;
      EncodeSchema(*reply.schema, &w);
      out->Send(request_id, Opcode::kReplySchema, w.Take());
    }
  }
  out->SendDone(request_id, Status::OK(), row_count, reply.is_rows,
                reply.has_stats ? &reply.stats : nullptr);
}

/// Frames read off the socket by the connection's reader thread, consumed
/// in order by the worker. `eof` marks a disconnect (clean or mid-frame);
/// `error` a recoverable-socket / unrecoverable-framing protocol error
/// that the worker reports before closing.
struct Inbox {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Frame> frames;
  bool eof = false;
  bool has_error = false;
  Status error;
};

}  // namespace

struct SeqServer::Conn {
  int fd = -1;
  std::thread worker;
  std::atomic<bool> finished{false};
};

SeqServer::SeqServer()
    : owned_(std::make_unique<Engine>()),
      own_gate_(std::make_unique<std::shared_mutex>()),
      engine_(owned_.get()),
      gate_(own_gate_.get()) {}

SeqServer::SeqServer(Engine* engine, std::shared_mutex* gate)
    : engine_(engine), gate_(gate) {}

SeqServer::~SeqServer() { Stop(); }

Result<int> SeqServer::Start(const std::string& host, int port) {
  if (listen_fd_ >= 0) return Status::FailedPrecondition("already started");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Unavailable(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  const std::string bind_host = host.empty() ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, bind_host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("cannot parse host address '" + bind_host +
                                   "' (IPv4 dotted quad expected)");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Unavailable("bind " + bind_host + ":" +
                               std::to_string(port) + ": " + err);
  }
  if (::listen(fd, 64) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Unavailable("listen: " + err);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::Unavailable("getsockname: " + err);
  }
  listen_fd_ = fd;
  port_ = ntohs(addr.sin_port);
  stopping_.store(false, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return port_;
}

void SeqServer::Stop() {
  if (listen_fd_ < 0) return;
  stopping_.store(true, std::memory_order_release);
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  listen_fd_ = -1;
  std::vector<std::unique_ptr<Conn>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conns_);
  }
  for (auto& conn : conns) {
    // Unblocks the connection's reader; its session closes, cancelling
    // any in-flight query cooperatively.
    ::shutdown(conn->fd, SHUT_RDWR);
    if (conn->worker.joinable()) conn->worker.join();
    ::close(conn->fd);
  }
}

void SeqServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listen socket closed by Stop()
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    Conn* raw = conn.get();
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      // Reap connections that already tore themselves down, so a
      // long-lived server does not accumulate dead entries.
      for (auto it = conns_.begin(); it != conns_.end();) {
        if ((*it)->finished.load(std::memory_order_acquire)) {
          if ((*it)->worker.joinable()) (*it)->worker.join();
          ::close((*it)->fd);
          it = conns_.erase(it);
        } else {
          ++it;
        }
      }
      conns_.push_back(std::move(conn));
    }
    raw->worker = std::thread([this, raw] { RunConnection(raw); });
  }
}

namespace {

/// Dispatches one request frame. Returns false when the connection must
/// close (GOODBYE, HELLO mismatch, write failure, protocol misuse).
bool HandleFrame(LocalSession* session, ReplyWriter* out, const Frame& frame,
                 bool* hello_done) {
  MetricsRegistry& metrics = MetricsRegistry::Global();
  const uint64_t rid = frame.request_id;
  const Opcode op = static_cast<Opcode>(frame.opcode);
  WireCursor c(frame.body);

  if (!*hello_done && op != Opcode::kHello) {
    metrics.Counter("net.protocol_errors").Add();
    out->SendDone(rid, Status::FailedPrecondition(
                           "first request must be HELLO"));
    return false;
  }

  switch (op) {
    case Opcode::kHello: {
      uint32_t version = 0;
      std::string client;
      Status s = c.U32(&version);
      if (s.ok()) s = c.Str(&client);
      if (!s.ok()) {
        metrics.Counter("net.protocol_errors").Add();
        out->SendDone(rid, s);
        return false;
      }
      if (version != kWireProtocolVersion) {
        out->SendDone(
            rid, Status::InvalidArgument(
                     "protocol version mismatch: client v" +
                     std::to_string(version) + ", server v" +
                     std::to_string(kWireProtocolVersion)));
        return false;
      }
      WireWriter w;
      w.U32(kWireProtocolVersion);
      w.U64(session->id());
      w.Str("seqserved");
      out->Send(rid, Opcode::kReplyHello, w.Take());
      out->SendDone(rid, Status::OK());
      *hello_done = true;
      return !out->failed();
    }

    case Opcode::kQuery:
    case Opcode::kExecutePrepared: {
      Status s = ApplySessionOptions(&c, session);
      std::string source;
      uint64_t statement_id = 0;
      if (s.ok() && op == Opcode::kQuery) s = ApplyRange(&c, session);
      if (s.ok()) {
        s = op == Opcode::kQuery ? c.Str(&source) : c.U64(&statement_id);
      }
      if (!s.ok()) {
        metrics.Counter("net.protocol_errors").Add();
        out->SendDone(rid, s);
        return !out->failed();
      }
      // Stream through the sink unless the run checkpoints (sink +
      // checkpoint execution is invalid — Engine materializes there).
      const bool stream = !session->options().exec.checkpoint.enabled;
      RowStreamer streamer(out, rid);
      if (stream) {
        session->options().sink = [&streamer](Position pos,
                                              const Record& rec) {
          streamer.Add(pos, rec);
        };
      }
      Result<ExecuteReply> result =
          op == Opcode::kQuery ? session->Execute(source)
                               : session->ExecutePrepared(statement_id);
      session->options().sink = RowSink{};
      if (!result.ok()) {
        streamer.Flush();
        out->SendDone(rid, result.status());
        return !out->failed();
      }
      streamer.Flush();
      FinishRowReply(out, rid, *result, streamer.total(), stream);
      return !out->failed();
    }

    case Opcode::kPrepare: {
      Status s = ApplySessionOptions(&c, session);
      std::string source;
      if (s.ok()) s = ApplyRange(&c, session);
      if (s.ok()) s = c.Str(&source);
      if (!s.ok()) {
        metrics.Counter("net.protocol_errors").Add();
        out->SendDone(rid, s);
        return !out->failed();
      }
      Result<uint64_t> id = session->Prepare(source);
      if (!id.ok()) {
        out->SendDone(rid, id.status());
      } else {
        out->SendDone(rid, Status::OK(), *id);
      }
      return !out->failed();
    }

    case Opcode::kCloseStatement:
    case Opcode::kSuspend: {
      uint64_t id = 0;
      Status s = c.U64(&id);
      if (!s.ok()) {
        metrics.Counter("net.protocol_errors").Add();
        out->SendDone(rid, s);
        return !out->failed();
      }
      out->SendDone(rid, op == Opcode::kCloseStatement
                             ? session->CloseStatement(id)
                             : session->Suspend(id));
      return !out->failed();
    }

    case Opcode::kResume: {
      Status s = ApplySessionOptions(&c, session);
      std::string path;
      if (s.ok()) s = c.Str(&path);
      if (!s.ok()) {
        metrics.Counter("net.protocol_errors").Add();
        out->SendDone(rid, s);
        return !out->failed();
      }
      Result<ExecuteReply> result = session->Resume(path);
      if (!result.ok()) {
        out->SendDone(rid, result.status());
        return !out->failed();
      }
      FinishRowReply(out, rid, *result, 0, /*streamed=*/false);
      return !out->failed();
    }

    case Opcode::kTelemetry: {
      std::string kind;
      Status s = c.Str(&kind);
      if (!s.ok()) {
        metrics.Counter("net.protocol_errors").Add();
        out->SendDone(rid, s);
        return !out->failed();
      }
      Result<std::string> text = session->Telemetry(kind);
      if (!text.ok()) {
        out->SendDone(rid, text.status());
      } else {
        out->SendText(rid, *text);
        out->SendDone(rid, Status::OK());
      }
      return !out->failed();
    }

    case Opcode::kCommand: {
      uint32_t argc = 0;
      Status s = c.U32(&argc);
      if (s.ok() && argc > 1024) {
        s = Status::InvalidArgument("command argument count " +
                                    std::to_string(argc) + " is implausible");
      }
      std::vector<std::string> args;
      for (uint32_t i = 0; s.ok() && i < argc; ++i) {
        std::string arg;
        s = c.Str(&arg);
        if (s.ok()) args.push_back(std::move(arg));
      }
      if (!s.ok()) {
        metrics.Counter("net.protocol_errors").Add();
        out->SendDone(rid, s);
        return !out->failed();
      }
      Result<std::string> text = session->Command(args);
      if (!text.ok()) {
        out->SendDone(rid, text.status());
      } else {
        out->SendText(rid, *text);
        out->SendDone(rid, Status::OK());
      }
      return !out->failed();
    }

    case Opcode::kGoodbye:
      out->SendDone(rid, Status::OK());
      return false;

    default:
      metrics.Counter("net.protocol_errors").Add();
      out->SendDone(rid, Status::InvalidArgument(
                             "unknown opcode " +
                             std::to_string(frame.opcode)));
      return !out->failed();
  }
}

}  // namespace

void SeqServer::RunConnection(Conn* conn) {
  MetricsRegistry& metrics = MetricsRegistry::Global();
  metrics.Counter("net.connections").Add();

  LocalSession session(engine_, gate_);
  Inbox inbox;

  // Reader: frames in, strictly ordered into the inbox. On disconnect it
  // closes the session first — that flips the cooperative-cancel flag
  // wired into every run's guards, so an in-flight query aborts and its
  // admission slot releases while the worker is still inside Execute().
  std::thread reader([conn, &session, &inbox, &metrics] {
    for (;;) {
      Frame frame;
      bool clean_eof = false;
      Status s = ReadFrame(conn->fd, &frame, &clean_eof);
      if (s.ok()) {
        metrics.Counter("net.frames_in").Add();
        metrics.Counter("net.bytes_in").Add(
            static_cast<int64_t>(13 + frame.body.size()));
        std::lock_guard<std::mutex> lock(inbox.mu);
        inbox.frames.push_back(std::move(frame));
        inbox.cv.notify_one();
        continue;
      }
      const bool disconnect = clean_eof ||
                              s.code() == StatusCode::kDataLoss ||
                              s.code() == StatusCode::kUnavailable;
      if (s.code() == StatusCode::kDataLoss) {
        metrics.Counter("net.protocol_errors").Add();
      }
      if (disconnect) session.Close();
      std::lock_guard<std::mutex> lock(inbox.mu);
      if (disconnect) {
        inbox.eof = true;
      } else {
        inbox.has_error = true;
        inbox.error = s;
      }
      inbox.cv.notify_one();
      return;
    }
  });

  ReplyWriter out(conn->fd);
  bool hello_done = false;
  for (;;) {
    Frame frame;
    bool have_frame = false;
    bool protocol_error = false;
    Status error;
    {
      std::unique_lock<std::mutex> lock(inbox.mu);
      inbox.cv.wait(lock, [&inbox] {
        return !inbox.frames.empty() || inbox.eof || inbox.has_error;
      });
      if (!inbox.frames.empty()) {
        frame = std::move(inbox.frames.front());
        inbox.frames.pop_front();
        have_frame = true;
      } else if (inbox.has_error) {
        protocol_error = true;
        error = inbox.error;
      }
    }
    if (!have_frame) {
      if (protocol_error) {
        // Unrecoverable framing (oversized/short declared length): report
        // once with request id 0, count it, close.
        metrics.Counter("net.protocol_errors").Add();
        out.SendDone(0, error);
      }
      break;
    }
    const auto start = std::chrono::steady_clock::now();
    const bool keep = HandleFrame(&session, &out, frame, &hello_done);
    metrics.Counter("net.requests").Add();
    metrics.GetHistogram("net.request_us")
        .Record(static_cast<double>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start)
                .count()));
    if (!keep || out.failed()) break;
  }

  // Teardown: close the session (idempotent), unblock the reader, join.
  // The fd itself is closed by the acceptor's reap or by Stop(), after
  // the worker is joined — never here, to keep fd reuse race-free.
  session.Close();
  ::shutdown(conn->fd, SHUT_RDWR);
  if (reader.joinable()) reader.join();
  metrics.Counter("net.disconnects").Add();
  conn->finished.store(true, std::memory_order_release);
}

}  // namespace seq
