#ifndef SEQ_NET_SERVER_H_
#define SEQ_NET_SERVER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "core/engine.h"

namespace seq {

/// The seqserved socket front-end (docs/server.md). Accepts TCP
/// connections on one listening socket and speaks the length-prefixed
/// wire protocol of net/wire.h; every connection gets one LocalSession
/// against the shared engine, so remote clients see exactly the local
/// Session semantics — per-session prepared statements, session views,
/// registry attribution, and disconnect-cancels-in-flight.
///
/// Threading: one accept thread, and per connection a reader thread
/// (frames in) plus a worker thread (execute in order, sole writer).
/// The reader closing the session on EOF is what turns a client
/// disconnect into a cooperative cancel of the in-flight query.
class SeqServer {
 public:
  /// Owns a private engine (tests, simple deployments).
  SeqServer();
  /// Serves an existing engine; `engine` and `gate` must outlive the
  /// server. Queries take `gate` shared, catalog mutations exclusive.
  SeqServer(Engine* engine, std::shared_mutex* gate);
  ~SeqServer();

  SeqServer(const SeqServer&) = delete;
  SeqServer& operator=(const SeqServer&) = delete;

  /// Binds `host:port` (port 0 = ephemeral) and starts accepting.
  /// Returns the bound port.
  Result<int> Start(const std::string& host, int port);

  /// Stops accepting, closes every connection (cancelling in-flight
  /// queries) and joins all threads. Idempotent.
  void Stop();

  Engine& engine() { return *engine_; }
  std::shared_mutex& gate() { return *gate_; }
  int port() const { return port_; }

 private:
  struct Conn;

  void AcceptLoop();
  void RunConnection(Conn* conn);

  std::unique_ptr<Engine> owned_;
  std::unique_ptr<std::shared_mutex> own_gate_;
  Engine* engine_;
  std::shared_mutex* gate_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::mutex conns_mu_;
  std::vector<std::unique_ptr<Conn>> conns_;
};

}  // namespace seq

#endif  // SEQ_NET_SERVER_H_
