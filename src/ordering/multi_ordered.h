#ifndef SEQ_ORDERING_MULTI_ORDERED_H_
#define SEQ_ORDERING_MULTI_ORDERED_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "storage/base_sequence.h"

namespace seq {

/// §5.1 "Multiple Orderings": "in bitemporal databases a set of records is
/// typically associated with transaction time as well as valid time
/// orderings. In general, it is useful to be able to associate multiple
/// orderings with the same set of records."
///
/// A MultiOrderedSet stores one record set with N named orderings; each
/// record carries one position per ordering (unique within that ordering).
/// AsSequence() materializes the set as a base sequence under any one
/// ordering, with the other orderings' positions exposed as int64 columns
/// — so the full query machinery (and its optimizations) applies to every
/// ordering of the same data.
class MultiOrderedSet {
 public:
  /// `ordering_names` (e.g. {"valid_time", "transaction_time"}) must be
  /// non-empty, unique, and distinct from the record schema's field names.
  static Result<MultiOrderedSet> Create(
      SchemaPtr schema, std::vector<std::string> ordering_names);

  /// Adds a record at the given positions (one per ordering, in the order
  /// the orderings were declared). Positions must be unique per ordering.
  Status Add(std::vector<Position> positions, Record rec);

  const SchemaPtr& schema() const { return schema_; }
  const std::vector<std::string>& ordering_names() const {
    return ordering_names_;
  }
  size_t size() const { return rows_.size(); }

  /// The record set as a base sequence ordered by `ordering`. The output
  /// schema prepends the *other* orderings' positions as int64 fields
  /// (named after their orderings), then the record fields.
  Result<BaseSequencePtr> AsSequence(const std::string& ordering,
                                     int records_per_page = 64,
                                     AccessCosts costs = AccessCosts{}) const;

 private:
  struct Row {
    std::vector<Position> positions;
    Record rec;
  };

  MultiOrderedSet(SchemaPtr schema, std::vector<std::string> ordering_names)
      : schema_(std::move(schema)),
        ordering_names_(std::move(ordering_names)) {}

  SchemaPtr schema_;
  std::vector<std::string> ordering_names_;
  std::vector<Row> rows_;
};

}  // namespace seq

#endif  // SEQ_ORDERING_MULTI_ORDERED_H_
