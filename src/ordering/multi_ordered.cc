#include "ordering/multi_ordered.h"

#include <algorithm>
#include <set>

namespace seq {

Result<MultiOrderedSet> MultiOrderedSet::Create(
    SchemaPtr schema, std::vector<std::string> ordering_names) {
  if (schema == nullptr) {
    return Status::InvalidArgument("null schema");
  }
  if (ordering_names.empty()) {
    return Status::InvalidArgument("need at least one ordering");
  }
  std::set<std::string> seen;
  for (const std::string& name : ordering_names) {
    if (!seen.insert(name).second) {
      return Status::InvalidArgument("duplicate ordering '" + name + "'");
    }
    if (schema->FindField(name).has_value()) {
      return Status::InvalidArgument("ordering '" + name +
                                     "' collides with a record field");
    }
  }
  return MultiOrderedSet(std::move(schema), std::move(ordering_names));
}

Status MultiOrderedSet::Add(std::vector<Position> positions, Record rec) {
  if (positions.size() != ordering_names_.size()) {
    return Status::InvalidArgument(
        "expected " + std::to_string(ordering_names_.size()) +
        " positions, got " + std::to_string(positions.size()));
  }
  if (!RecordMatchesSchema(rec, *schema_)) {
    return Status::TypeError("record does not match schema " +
                             schema_->ToString());
  }
  for (size_t k = 0; k < positions.size(); ++k) {
    for (const Row& row : rows_) {
      if (row.positions[k] == positions[k]) {
        return Status::InvalidArgument(
            "duplicate position " + std::to_string(positions[k]) +
            " in ordering '" + ordering_names_[k] + "'");
      }
    }
  }
  rows_.push_back(Row{std::move(positions), std::move(rec)});
  return Status::OK();
}

Result<BaseSequencePtr> MultiOrderedSet::AsSequence(
    const std::string& ordering, int records_per_page,
    AccessCosts costs) const {
  auto it = std::find(ordering_names_.begin(), ordering_names_.end(),
                      ordering);
  if (it == ordering_names_.end()) {
    return Status::NotFound("no ordering named '" + ordering + "'");
  }
  size_t key = static_cast<size_t>(it - ordering_names_.begin());

  std::vector<Field> fields;
  std::vector<size_t> other_orderings;
  for (size_t k = 0; k < ordering_names_.size(); ++k) {
    if (k == key) continue;
    fields.push_back(Field{ordering_names_[k], TypeId::kInt64});
    other_orderings.push_back(k);
  }
  for (const Field& f : schema_->fields()) fields.push_back(f);
  SchemaPtr out_schema = Schema::Make(std::move(fields));

  std::vector<const Row*> sorted;
  sorted.reserve(rows_.size());
  for (const Row& row : rows_) sorted.push_back(&row);
  std::sort(sorted.begin(), sorted.end(),
            [key](const Row* a, const Row* b) {
              return a->positions[key] < b->positions[key];
            });

  auto store = std::make_shared<BaseSequenceStore>(out_schema,
                                                   records_per_page, costs);
  for (const Row* row : sorted) {
    Record rec;
    rec.reserve(out_schema->num_fields());
    for (size_t k : other_orderings) {
      rec.push_back(Value::Int64(row->positions[k]));
    }
    rec.insert(rec.end(), row->rec.begin(), row->rec.end());
    SEQ_RETURN_IF_ERROR(store->Append(row->positions[key], std::move(rec)));
  }
  return store;
}

}  // namespace seq
