#ifndef SEQ_INTERVAL_INTERVAL_OPS_H_
#define SEQ_INTERVAL_INTERVAL_OPS_H_

#include <cstdint>

#include "expr/expr.h"
#include "interval/interval_set.h"

namespace seq {

/// Counters for the interval joins (comparable to AccessStats).
struct IntervalStats {
  int64_t pairs_examined = 0;
  int64_t predicate_evals = 0;
  int64_t records_output = 0;
};

/// The temporal joins the paper's §5.1 extension calls for ("the new
/// operators include overlap-join, contain-join and precede-join [LM93]").
/// All are start-sorted sweeps; `predicate` (optional) sees the left
/// record as side 0 and the right as side 1.

/// Pairs whose intervals intersect; the output interval is the
/// intersection, the output record the concatenation.
Result<IntervalSet> OverlapJoin(const IntervalSet& left,
                                const IntervalSet& right,
                                const ExprPtr& predicate = nullptr,
                                IntervalStats* stats = nullptr);

/// Pairs where the left interval contains the right one
/// (l.start <= r.start && r.end <= l.end); output interval = the
/// contained (right) interval.
Result<IntervalSet> ContainJoin(const IntervalSet& left,
                                const IntervalSet& right,
                                const ExprPtr& predicate = nullptr,
                                IntervalStats* stats = nullptr);

/// Pairs where the left interval ends before the right starts, within
/// `max_gap` positions (l.end < r.start <= l.end + max_gap + 1); output
/// interval spans [l.start, r.end].
Result<IntervalSet> PrecedeJoin(const IntervalSet& left,
                                const IntervalSet& right, int64_t max_gap,
                                const ExprPtr& predicate = nullptr,
                                IntervalStats* stats = nullptr);

}  // namespace seq

#endif  // SEQ_INTERVAL_INTERVAL_OPS_H_
