#include "interval/interval_ops.h"

#include <algorithm>
#include <optional>

#include "expr/compiled_expr.h"

namespace seq {
namespace {

Record Concat(const Record& a, const Record& b) {
  Record out = a;
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

struct JoinContext {
  SchemaPtr out_schema;
  std::optional<CompiledExpr> predicate;
  IntervalStats* stats;
  IntervalStats local;

  IntervalStats* Stats() { return stats != nullptr ? stats : &local; }
};

Result<JoinContext> MakeContext(const IntervalSet& left,
                                const IntervalSet& right,
                                const ExprPtr& predicate,
                                IntervalStats* stats) {
  JoinContext ctx;
  ctx.out_schema = Schema::Concat(*left.schema(), *right.schema());
  ctx.stats = stats;
  if (predicate != nullptr) {
    SEQ_ASSIGN_OR_RETURN(
        CompiledExpr compiled,
        CompiledExpr::CompilePredicate(predicate, *left.schema(),
                                       right.schema().get()));
    ctx.predicate = std::move(compiled);
  }
  return ctx;
}

/// True if the (already position-matched) pair passes the predicate.
bool Passes(JoinContext* ctx, const IntervalRecord& l,
            const IntervalRecord& r) {
  if (!ctx->predicate.has_value()) return true;
  ++ctx->Stats()->predicate_evals;
  return ctx->predicate->EvalBool(l.rec, &r.rec, l.start);
}

}  // namespace

Result<IntervalSet> OverlapJoin(const IntervalSet& left,
                                const IntervalSet& right,
                                const ExprPtr& predicate,
                                IntervalStats* stats) {
  SEQ_ASSIGN_OR_RETURN(JoinContext ctx,
                       MakeContext(left, right, predicate, stats));
  IntervalSet out(ctx.out_schema);
  const auto& rs = right.records();
  for (const IntervalRecord& l : left.records()) {
    // Right intervals with r.start <= l.end may overlap; records are
    // start-sorted so the scan stops at the first r.start beyond l.end.
    for (const IntervalRecord& r : rs) {
      if (r.start > l.end) break;
      ++ctx.Stats()->pairs_examined;
      if (r.end < l.start) continue;  // ends before l begins
      if (!Passes(&ctx, l, r)) continue;
      SEQ_RETURN_IF_ERROR(out.Add(std::max(l.start, r.start),
                                  std::min(l.end, r.end),
                                  Concat(l.rec, r.rec)));
      ++ctx.Stats()->records_output;
    }
  }
  return out;
}

Result<IntervalSet> ContainJoin(const IntervalSet& left,
                                const IntervalSet& right,
                                const ExprPtr& predicate,
                                IntervalStats* stats) {
  SEQ_ASSIGN_OR_RETURN(JoinContext ctx,
                       MakeContext(left, right, predicate, stats));
  IntervalSet out(ctx.out_schema);
  for (const IntervalRecord& l : left.records()) {
    for (const IntervalRecord& r : right.records()) {
      if (r.start > l.end) break;
      ++ctx.Stats()->pairs_examined;
      if (r.start < l.start || r.end > l.end) continue;
      if (!Passes(&ctx, l, r)) continue;
      SEQ_RETURN_IF_ERROR(out.Add(r.start, r.end, Concat(l.rec, r.rec)));
      ++ctx.Stats()->records_output;
    }
  }
  return out;
}

Result<IntervalSet> PrecedeJoin(const IntervalSet& left,
                                const IntervalSet& right, int64_t max_gap,
                                const ExprPtr& predicate,
                                IntervalStats* stats) {
  if (max_gap < 0) {
    return Status::InvalidArgument("max_gap must be >= 0");
  }
  SEQ_ASSIGN_OR_RETURN(JoinContext ctx,
                       MakeContext(left, right, predicate, stats));
  IntervalSet out(ctx.out_schema);
  for (const IntervalRecord& l : left.records()) {
    for (const IntervalRecord& r : right.records()) {
      if (r.start > l.end + max_gap + 1) break;
      ++ctx.Stats()->pairs_examined;
      if (r.start <= l.end) continue;  // not strictly after
      if (!Passes(&ctx, l, r)) continue;
      SEQ_RETURN_IF_ERROR(out.Add(l.start, r.end, Concat(l.rec, r.rec)));
      ++ctx.Stats()->records_output;
    }
  }
  return out;
}

}  // namespace seq
