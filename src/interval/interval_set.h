#ifndef SEQ_INTERVAL_INTERVAL_SET_H_
#define SEQ_INTERVAL_INTERVAL_SET_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "storage/base_sequence.h"
#include "types/record.h"
#include "types/schema.h"

namespace seq {

/// §5.1 "General Sequences": "a record could be associated with an
/// interval of positions, and at any one position, more than one record
/// might overlap". An IntervalRecord is a record valid over the closed
/// position interval [start, end].
struct IntervalRecord {
  Position start;
  Position end;
  Record rec;
};

/// A collection of interval records over one schema, kept sorted by
/// (start, end). This is the temporal-database view of sequence data the
/// paper's extension section describes; the interval operators
/// (interval_ops.h) provide the overlap/contain/precede joins of [LM93].
class IntervalSet {
 public:
  explicit IntervalSet(SchemaPtr schema);

  /// Adds a record valid on [start, end] (start <= end); insertion order
  /// is free, storage stays sorted.
  Status Add(Position start, Position end, Record rec);

  const SchemaPtr& schema() const { return schema_; }
  const std::vector<IntervalRecord>& records() const { return records_; }
  size_t size() const { return records_.size(); }

  /// Positions covered by at least one interval (convex hull).
  Span Hull() const;

  /// Every point record of `store` as a unit interval [pos, pos].
  static Result<IntervalSet> FromSequence(const BaseSequenceStore& store);

  /// Merges intervals of this set that are within `max_gap` positions of
  /// each other into one interval carrying the earliest record
  /// (sessionization; gap 0 merges only touching/overlapping intervals).
  IntervalSet Coalesce(int64_t max_gap = 0) const;

  /// Projects back into the point-sequence model: at each position covered
  /// by >= 1 interval, the record of the latest-starting covering interval
  /// (ties: the longest). The inverse bridge into the query engine.
  Result<BaseSequencePtr> ToSequence(int records_per_page = 64) const;

  std::string ToString(size_t limit = 20) const;

 private:
  SchemaPtr schema_;
  std::vector<IntervalRecord> records_;
};

}  // namespace seq

#endif  // SEQ_INTERVAL_INTERVAL_SET_H_
