#include "interval/interval_set.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/logging.h"

namespace seq {

IntervalSet::IntervalSet(SchemaPtr schema) : schema_(std::move(schema)) {
  SEQ_CHECK(schema_ != nullptr);
}

Status IntervalSet::Add(Position start, Position end, Record rec) {
  if (start > end) {
    return Status::InvalidArgument("interval start " + std::to_string(start) +
                                   " exceeds end " + std::to_string(end));
  }
  if (!RecordMatchesSchema(rec, *schema_)) {
    return Status::TypeError("interval record does not match schema " +
                             schema_->ToString());
  }
  IntervalRecord ir{start, end, std::move(rec)};
  auto it = std::upper_bound(records_.begin(), records_.end(), ir,
                             [](const IntervalRecord& a,
                                const IntervalRecord& b) {
                               return a.start < b.start ||
                                      (a.start == b.start && a.end < b.end);
                             });
  records_.insert(it, std::move(ir));
  return Status::OK();
}

Span IntervalSet::Hull() const {
  if (records_.empty()) return Span::Empty();
  Position lo = records_.front().start;
  Position hi = records_.front().end;
  for (const IntervalRecord& ir : records_) {
    hi = std::max(hi, ir.end);
  }
  return Span::Of(lo, hi);
}

Result<IntervalSet> IntervalSet::FromSequence(
    const BaseSequenceStore& store) {
  IntervalSet out(store.schema());
  for (const PosRecord& pr : store.records()) {
    SEQ_RETURN_IF_ERROR(out.Add(pr.pos, pr.pos, pr.rec));
  }
  return out;
}

IntervalSet IntervalSet::Coalesce(int64_t max_gap) const {
  IntervalSet out(schema_);
  if (records_.empty()) return out;
  IntervalRecord current = records_.front();
  for (size_t i = 1; i < records_.size(); ++i) {
    const IntervalRecord& next = records_[i];
    if (next.start <= current.end + max_gap + 1) {
      current.end = std::max(current.end, next.end);
    } else {
      out.records_.push_back(current);
      current = next;
    }
  }
  out.records_.push_back(std::move(current));
  return out;
}

Result<BaseSequencePtr> IntervalSet::ToSequence(int records_per_page) const {
  auto store =
      std::make_shared<BaseSequenceStore>(schema_, records_per_page);
  if (records_.empty()) return store;
  // Sweep: at each covered position pick the latest-starting (then
  // longest) covering interval.
  Span hull = Hull();
  size_t next_idx = 0;
  std::vector<const IntervalRecord*> active;
  for (Position p = hull.start; p <= hull.end; ++p) {
    while (next_idx < records_.size() && records_[next_idx].start <= p) {
      active.push_back(&records_[next_idx]);
      ++next_idx;
    }
    active.erase(std::remove_if(active.begin(), active.end(),
                                [&](const IntervalRecord* ir) {
                                  return ir->end < p;
                                }),
                 active.end());
    if (active.empty()) continue;
    const IntervalRecord* best = active.front();
    for (const IntervalRecord* ir : active) {
      if (ir->start > best->start ||
          (ir->start == best->start && ir->end > best->end)) {
        best = ir;
      }
    }
    SEQ_RETURN_IF_ERROR(store->Append(p, best->rec));
  }
  return store;
}

std::string IntervalSet::ToString(size_t limit) const {
  std::ostringstream oss;
  size_t shown = std::min(limit, records_.size());
  for (size_t i = 0; i < shown; ++i) {
    const IntervalRecord& ir = records_[i];
    oss << "[" << ir.start << "," << ir.end << "] "
        << RecordToString(ir.rec, *schema_) << "\n";
  }
  if (records_.size() > shown) {
    oss << "... (" << records_.size() << " intervals total)\n";
  }
  return oss.str();
}

}  // namespace seq
