#ifndef SEQ_PARSER_LEXER_H_
#define SEQ_PARSER_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace seq {

/// Token kinds of the Sequin mini-language.
enum class TokKind : uint8_t {
  kIdent,
  kInt,
  kDouble,
  kString,
  kSymbol,  // one of ( ) , ; = . < <= > >= == != + - * /
  kEnd,
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;     // identifier name, symbol spelling, string body
  int64_t int_value = 0;
  double double_value = 0.0;
  size_t line = 1;      // 1-based, for error messages
  size_t column = 1;

  bool Is(TokKind k) const { return kind == k; }
  bool IsSymbol(const char* s) const {
    return kind == TokKind::kSymbol && text == s;
  }
  bool IsIdent(const char* s) const {
    return kind == TokKind::kIdent && text == s;
  }
};

/// Tokenizes Sequin source. `#` starts a comment to end of line.
/// A single `=` is the statement assignment; `==` is equality.
Result<std::vector<Token>> Tokenize(const std::string& source);

}  // namespace seq

#endif  // SEQ_PARSER_LEXER_H_
