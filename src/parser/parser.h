#ifndef SEQ_PARSER_PARSER_H_
#define SEQ_PARSER_PARSER_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "logical/logical_op.h"

namespace seq {

/// How the program asked for its result to be presented: run it, explain
/// the plan, or run instrumented and report estimated vs actual.
enum class ExplainMode { kNone, kExplain, kExplainAnalyze };

/// A parsed Sequin program: named sequence definitions in order, the last
/// one being the program's result.
struct ParsedProgram {
  std::map<std::string, LogicalOpPtr> definitions;
  std::vector<std::string> order;
  LogicalOpPtr main;  // graph of the last statement
  ExplainMode explain = ExplainMode::kNone;
};

/// Parses the Sequin declarative mini-language (the paper defers query
/// language design to future work; this is a thin front end so examples
/// and tools can state queries as text):
///
///   big    = select(quakes, strength > 7.0);
///   recent = prev(big);
///   answer = project(compose(volcanos, recent), name);
///
/// Programs may start with `explain` or `explain analyze`, which set
/// ParsedProgram::explain and apply to the program's result. (A leading
/// `explain = ...;` statement still parses as a definition — the prefix is
/// only taken when not followed by '='.)
///
/// Statements:   NAME '=' seq-expr ';'
/// Sequence expressions:
///   NAME                                  earlier definition, else a base
///                                         sequence resolved at optimize
///   const(NAME)                           constant sequence reference
///   select(s, pred)
///   project(s, col [as name] {, ...})
///   offset(s, INT)                        positional offset
///   voffset(s, INT) | prev(s) | next(s)   value offsets
///   sum|avg|min|max|count(s, col, over INT | running | all [, as name])
///   compose(s1, s2 [, pred])
///   collapse(s, INT, sum|avg|min|max|count, col)
/// Predicates: comparisons (< <= > >= == !=) over columns, literals,
/// + - * /, and/or/not, pos(), abs(x); `left.col` / `right.col` pick the
/// compose input explicitly (bare names are side 0).
Result<ParsedProgram> ParseSequin(const std::string& source);

/// Convenience: the graph of the last statement.
Result<LogicalOpPtr> ParseSequinQuery(const std::string& source);

}  // namespace seq

#endif  // SEQ_PARSER_PARSER_H_
