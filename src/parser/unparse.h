#ifndef SEQ_PARSER_UNPARSE_H_
#define SEQ_PARSER_UNPARSE_H_

#include <string>

#include "common/result.h"
#include "expr/expr.h"
#include "logical/logical_op.h"

namespace seq {

/// Renders an expression in Sequin's predicate syntax (side-1 column
/// references become `right.name`).
std::string UnparseExpr(const Expr& expr);

/// Renders a query graph as a single Sequin statement `name = ...;`.
/// Parsing the output reproduces a structurally equal graph — the
/// round-trip property the parser tests rely on.
Result<std::string> UnparseQuery(const LogicalOp& graph,
                                 const std::string& name = "q");

}  // namespace seq

#endif  // SEQ_PARSER_UNPARSE_H_
