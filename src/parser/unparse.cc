#include "parser/unparse.h"

#include <sstream>

#include "common/logging.h"

namespace seq {
namespace {

void UnparseExprImpl(const Expr& expr, std::ostringstream* out) {
  switch (expr.kind()) {
    case ExprKind::kColumn:
      if (expr.side() == 1) {
        *out << "right." << expr.column_name();
      } else {
        *out << expr.column_name();
      }
      return;
    case ExprKind::kLiteral: {
      const Value& v = expr.literal();
      if (v.type() == TypeId::kString) {
        *out << "\"" << v.str() << "\"";
      } else {
        *out << v.ToString();
      }
      return;
    }
    case ExprKind::kPosition:
      *out << "pos()";
      return;
    case ExprKind::kUnary:
      switch (expr.unary_op()) {
        case UnaryOp::kNot:
          *out << "not ";
          UnparseExprImpl(*expr.operand(), out);
          return;
        case UnaryOp::kNeg:
          *out << "-";
          UnparseExprImpl(*expr.operand(), out);
          return;
        case UnaryOp::kAbs:
          *out << "abs(";
          UnparseExprImpl(*expr.operand(), out);
          *out << ")";
          return;
      }
      return;
    case ExprKind::kBinary:
      *out << "(";
      UnparseExprImpl(*expr.left(), out);
      *out << " " << BinaryOpName(expr.binary_op()) << " ";
      UnparseExprImpl(*expr.right(), out);
      *out << ")";
      return;
  }
}

Status UnparseOp(const LogicalOp& op, std::ostringstream* out) {
  switch (op.kind()) {
    case OpKind::kBaseRef:
      *out << op.seq_name();
      return Status::OK();
    case OpKind::kConstantRef:
      *out << "const(" << op.seq_name() << ")";
      return Status::OK();
    case OpKind::kSelect:
      *out << "select(";
      SEQ_RETURN_IF_ERROR(UnparseOp(*op.input(), out));
      *out << ", " << UnparseExpr(*op.predicate()) << ")";
      return Status::OK();
    case OpKind::kProject: {
      *out << "project(";
      SEQ_RETURN_IF_ERROR(UnparseOp(*op.input(), out));
      for (size_t i = 0; i < op.columns().size(); ++i) {
        *out << ", " << op.columns()[i];
        if (i < op.renames().size() && !op.renames()[i].empty() &&
            op.renames()[i] != op.columns()[i]) {
          *out << " as " << op.renames()[i];
        }
      }
      *out << ")";
      return Status::OK();
    }
    case OpKind::kPositionalOffset:
      *out << "offset(";
      SEQ_RETURN_IF_ERROR(UnparseOp(*op.input(), out));
      *out << ", " << op.offset() << ")";
      return Status::OK();
    case OpKind::kValueOffset:
      if (op.offset() == -1) {
        *out << "prev(";
        SEQ_RETURN_IF_ERROR(UnparseOp(*op.input(), out));
        *out << ")";
      } else if (op.offset() == 1) {
        *out << "next(";
        SEQ_RETURN_IF_ERROR(UnparseOp(*op.input(), out));
        *out << ")";
      } else {
        *out << "voffset(";
        SEQ_RETURN_IF_ERROR(UnparseOp(*op.input(), out));
        *out << ", " << op.offset() << ")";
      }
      return Status::OK();
    case OpKind::kWindowAgg: {
      *out << AggFuncName(op.agg_func()) << "(";
      SEQ_RETURN_IF_ERROR(UnparseOp(*op.input(), out));
      *out << ", " << op.agg_column() << ", ";
      switch (op.window_kind()) {
        case WindowKind::kTrailing:
          *out << "over " << op.window();
          break;
        case WindowKind::kRunning:
          *out << "running";
          break;
        case WindowKind::kAll:
          *out << "over all";
          break;
      }
      if (!op.output_name().empty()) {
        *out << ", as " << op.output_name();
      }
      *out << ")";
      return Status::OK();
    }
    case OpKind::kCompose:
      *out << "compose(";
      SEQ_RETURN_IF_ERROR(UnparseOp(*op.input(0), out));
      *out << ", ";
      SEQ_RETURN_IF_ERROR(UnparseOp(*op.input(1), out));
      if (op.predicate() != nullptr) {
        *out << ", " << UnparseExpr(*op.predicate());
      }
      *out << ")";
      return Status::OK();
    case OpKind::kCollapse:
      *out << "collapse(";
      SEQ_RETURN_IF_ERROR(UnparseOp(*op.input(), out));
      *out << ", " << op.collapse_factor() << ", "
           << AggFuncName(op.agg_func()) << ", " << op.agg_column();
      if (!op.output_name().empty()) {
        *out << ", as " << op.output_name();
      }
      *out << ")";
      return Status::OK();
    case OpKind::kExpand:
      *out << "expand(";
      SEQ_RETURN_IF_ERROR(UnparseOp(*op.input(), out));
      *out << ", " << op.expand_factor() << ")";
      return Status::OK();
  }
  return Status::Internal("unknown operator kind");
}

}  // namespace

std::string UnparseExpr(const Expr& expr) {
  std::ostringstream out;
  UnparseExprImpl(expr, &out);
  return out.str();
}

Result<std::string> UnparseQuery(const LogicalOp& graph,
                                 const std::string& name) {
  std::ostringstream out;
  out << name << " = ";
  SEQ_RETURN_IF_ERROR(UnparseOp(graph, &out));
  out << ";";
  return out.str();
}

}  // namespace seq
