#include "parser/lexer.h"

#include <cctype>

namespace seq {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& source) {
  std::vector<Token> tokens;
  size_t i = 0;
  size_t line = 1;
  size_t col = 1;
  auto advance = [&](size_t n) {
    for (size_t k = 0; k < n; ++k) {
      if (i < source.size() && source[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
      ++i;
    }
  };
  while (i < source.size()) {
    char c = source[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }
    if (c == '#') {
      while (i < source.size() && source[i] != '\n') advance(1);
      continue;
    }
    Token tok;
    tok.line = line;
    tok.column = col;
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < source.size() && IsIdentChar(source[i])) advance(1);
      tok.kind = TokKind::kIdent;
      tok.text = source.substr(start, i - start);
      tokens.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      bool is_double = false;
      while (i < source.size() &&
             (std::isdigit(static_cast<unsigned char>(source[i])) ||
              source[i] == '.')) {
        if (source[i] == '.') {
          // Distinguish "1.5" from "seq.field": a dot not followed by a
          // digit ends the number.
          if (i + 1 >= source.size() ||
              !std::isdigit(static_cast<unsigned char>(source[i + 1]))) {
            break;
          }
          is_double = true;
        }
        advance(1);
      }
      std::string text = source.substr(start, i - start);
      // stoll/stod throw on out-of-range input; a user typing a 40-digit
      // literal gets a parse error, not a crash.
      try {
        if (is_double) {
          tok.kind = TokKind::kDouble;
          tok.double_value = std::stod(text);
        } else {
          tok.kind = TokKind::kInt;
          tok.int_value = std::stoll(text);
        }
      } catch (const std::exception&) {
        return Status::ParseError("numeric literal '" + text +
                                  "' out of range at line " +
                                  std::to_string(tok.line) + ", column " +
                                  std::to_string(tok.column));
      }
      tok.text = std::move(text);
      tokens.push_back(std::move(tok));
      continue;
    }
    if (c == '"') {
      advance(1);
      std::string body;
      while (i < source.size() && source[i] != '"') {
        body.push_back(source[i]);
        advance(1);
      }
      if (i >= source.size()) {
        return Status::ParseError("unterminated string literal at line " +
                                  std::to_string(tok.line));
      }
      advance(1);  // closing quote
      tok.kind = TokKind::kString;
      tok.text = std::move(body);
      tokens.push_back(std::move(tok));
      continue;
    }
    // Two-character operators first.
    auto two = source.substr(i, 2);
    if (two == "<=" || two == ">=" || two == "==" || two == "!=") {
      tok.kind = TokKind::kSymbol;
      tok.text = two;
      advance(2);
      tokens.push_back(std::move(tok));
      continue;
    }
    static const std::string kSingles = "(),;=.<>+-*/";
    if (kSingles.find(c) != std::string::npos) {
      tok.kind = TokKind::kSymbol;
      tok.text = std::string(1, c);
      advance(1);
      tokens.push_back(std::move(tok));
      continue;
    }
    return Status::ParseError("unexpected character '" + std::string(1, c) +
                              "' at line " + std::to_string(line) +
                              ", column " + std::to_string(col));
  }
  Token end;
  end.kind = TokKind::kEnd;
  end.line = line;
  end.column = col;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace seq
