#include "parser/parser.h"

#include "common/logging.h"
#include "expr/expr.h"
#include "parser/lexer.h"

namespace seq {
namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ParsedProgram> Program() {
    ParsedProgram program;
    // `explain [analyze]` prefix — but `explain = ...` is a definition.
    if (Peek().IsIdent("explain") && !Peek(1).IsSymbol("=")) {
      Take();
      if (Peek().IsIdent("analyze") && !Peek(1).IsSymbol("=")) {
        Take();
        program.explain = ExplainMode::kExplainAnalyze;
      } else {
        program.explain = ExplainMode::kExplain;
      }
    }
    while (!Peek().Is(TokKind::kEnd)) {
      SEQ_RETURN_IF_ERROR(Statement(&program));
    }
    if (program.order.empty()) {
      return Status::ParseError("empty program");
    }
    program.main = program.definitions[program.order.back()];
    return program;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t idx = pos_ + ahead;
    if (idx >= tokens_.size()) idx = tokens_.size() - 1;
    return tokens_[idx];
  }
  const Token& Take() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }

  Status ErrorHere(const std::string& what) const {
    const Token& t = Peek();
    return Status::ParseError(what + " at line " + std::to_string(t.line) +
                              ", column " + std::to_string(t.column) +
                              (t.text.empty() ? "" : " (near '" + t.text + "')"));
  }

  Status ExpectSymbol(const char* s) {
    if (!Peek().IsSymbol(s)) {
      return ErrorHere(std::string("expected '") + s + "'");
    }
    Take();
    return Status::OK();
  }

  Result<std::string> ExpectIdent() {
    if (!Peek().Is(TokKind::kIdent)) return ErrorHere("expected identifier");
    return Take().text;
  }

  Status Statement(ParsedProgram* program) {
    SEQ_ASSIGN_OR_RETURN(std::string name, ExpectIdent());
    SEQ_RETURN_IF_ERROR(ExpectSymbol("="));
    SEQ_ASSIGN_OR_RETURN(LogicalOpPtr graph, SeqExpr(*program));
    SEQ_RETURN_IF_ERROR(ExpectSymbol(";"));
    if (program->definitions.count(name) > 0) {
      return Status::ParseError("redefinition of '" + name + "'");
    }
    program->definitions.emplace(name, std::move(graph));
    program->order.push_back(std::move(name));
    return Status::OK();
  }

  static bool IsAggName(const std::string& s) {
    return s == "sum" || s == "avg" || s == "min" || s == "max" ||
           s == "count";
  }

  static AggFunc AggFromName(const std::string& s) {
    if (s == "sum") return AggFunc::kSum;
    if (s == "avg") return AggFunc::kAvg;
    if (s == "min") return AggFunc::kMin;
    if (s == "max") return AggFunc::kMax;
    return AggFunc::kCount;
  }

  Result<LogicalOpPtr> SeqExpr(const ParsedProgram& program) {
    if (!Peek().Is(TokKind::kIdent)) {
      return ErrorHere("expected a sequence expression");
    }
    // A call if followed by '('; otherwise a name reference.
    if (!Peek(1).IsSymbol("(")) {
      std::string name = Take().text;
      auto it = program.definitions.find(name);
      if (it != program.definitions.end()) {
        // Re-using a definition keeps the graph a tree (the paper's §2.2
        // restriction): share by deep copy.
        return it->second->Clone();
      }
      return LogicalOp::BaseRef(name);
    }
    std::string func = Take().text;
    SEQ_RETURN_IF_ERROR(ExpectSymbol("("));

    if (func == "const") {
      SEQ_ASSIGN_OR_RETURN(std::string name, ExpectIdent());
      SEQ_RETURN_IF_ERROR(ExpectSymbol(")"));
      return LogicalOp::ConstantRef(name);
    }
    if (func == "select") {
      SEQ_ASSIGN_OR_RETURN(LogicalOpPtr input, SeqExpr(program));
      SEQ_RETURN_IF_ERROR(ExpectSymbol(","));
      SEQ_ASSIGN_OR_RETURN(ExprPtr pred, Predicate());
      SEQ_RETURN_IF_ERROR(ExpectSymbol(")"));
      return LogicalOp::Select(std::move(input), std::move(pred));
    }
    if (func == "project") {
      SEQ_ASSIGN_OR_RETURN(LogicalOpPtr input, SeqExpr(program));
      std::vector<std::string> columns;
      std::vector<std::string> renames;
      while (Peek().IsSymbol(",")) {
        Take();
        SEQ_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
        std::string rename;
        if (Peek().IsIdent("as")) {
          Take();
          SEQ_ASSIGN_OR_RETURN(rename, ExpectIdent());
        }
        columns.push_back(std::move(col));
        renames.push_back(std::move(rename));
      }
      SEQ_RETURN_IF_ERROR(ExpectSymbol(")"));
      if (columns.empty()) {
        return ErrorHere("project needs at least one column");
      }
      return LogicalOp::Project(std::move(input), std::move(columns),
                                std::move(renames));
    }
    if (func == "offset" || func == "voffset") {
      SEQ_ASSIGN_OR_RETURN(LogicalOpPtr input, SeqExpr(program));
      SEQ_RETURN_IF_ERROR(ExpectSymbol(","));
      SEQ_ASSIGN_OR_RETURN(int64_t l, SignedInt());
      SEQ_RETURN_IF_ERROR(ExpectSymbol(")"));
      if (func == "offset") {
        return LogicalOp::PositionalOffset(std::move(input), l);
      }
      if (l == 0) return ErrorHere("voffset must be non-zero");
      return LogicalOp::ValueOffset(std::move(input), l);
    }
    if (func == "prev" || func == "next") {
      SEQ_ASSIGN_OR_RETURN(LogicalOpPtr input, SeqExpr(program));
      SEQ_RETURN_IF_ERROR(ExpectSymbol(")"));
      return LogicalOp::ValueOffset(std::move(input),
                                    func == "prev" ? -1 : 1);
    }
    if (IsAggName(func)) {
      SEQ_ASSIGN_OR_RETURN(LogicalOpPtr input, SeqExpr(program));
      SEQ_RETURN_IF_ERROR(ExpectSymbol(","));
      SEQ_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
      SEQ_RETURN_IF_ERROR(ExpectSymbol(","));
      LogicalOpPtr out;
      AggFunc agg = AggFromName(func);
      if (Peek().IsIdent("over")) {
        Take();
        if (Peek().IsIdent("all")) {
          Take();
          out = LogicalOp::OverallAgg(std::move(input), agg, col);
        } else {
          SEQ_ASSIGN_OR_RETURN(int64_t w, SignedInt());
          if (w < 1) return ErrorHere("window must be >= 1");
          out = LogicalOp::WindowAgg(std::move(input), agg, col, w);
        }
      } else if (Peek().IsIdent("running")) {
        Take();
        out = LogicalOp::RunningAgg(std::move(input), agg, col);
      } else {
        return ErrorHere("expected 'over N', 'over all' or 'running'");
      }
      if (Peek().IsSymbol(",")) {
        Take();
        if (!Peek().IsIdent("as")) return ErrorHere("expected 'as'");
        Take();
        SEQ_ASSIGN_OR_RETURN(std::string name, ExpectIdent());
        // Rebuild with the output name.
        switch (out->window_kind()) {
          case WindowKind::kTrailing:
            out = LogicalOp::WindowAgg(out->mutable_input(), agg, col,
                                       out->window(), name);
            break;
          case WindowKind::kRunning:
            out = LogicalOp::RunningAgg(out->mutable_input(), agg, col, name);
            break;
          case WindowKind::kAll:
            out = LogicalOp::OverallAgg(out->mutable_input(), agg, col, name);
            break;
        }
      }
      SEQ_RETURN_IF_ERROR(ExpectSymbol(")"));
      return out;
    }
    if (func == "compose") {
      SEQ_ASSIGN_OR_RETURN(LogicalOpPtr left, SeqExpr(program));
      SEQ_RETURN_IF_ERROR(ExpectSymbol(","));
      SEQ_ASSIGN_OR_RETURN(LogicalOpPtr right, SeqExpr(program));
      ExprPtr pred;
      if (Peek().IsSymbol(",")) {
        Take();
        SEQ_ASSIGN_OR_RETURN(pred, Predicate());
      }
      SEQ_RETURN_IF_ERROR(ExpectSymbol(")"));
      return LogicalOp::Compose(std::move(left), std::move(right),
                                std::move(pred));
    }
    if (func == "expand") {
      SEQ_ASSIGN_OR_RETURN(LogicalOpPtr input, SeqExpr(program));
      SEQ_RETURN_IF_ERROR(ExpectSymbol(","));
      SEQ_ASSIGN_OR_RETURN(int64_t factor, SignedInt());
      SEQ_RETURN_IF_ERROR(ExpectSymbol(")"));
      if (factor < 1) return ErrorHere("expand factor must be >= 1");
      return LogicalOp::Expand(std::move(input), factor);
    }
    if (func == "collapse") {
      SEQ_ASSIGN_OR_RETURN(LogicalOpPtr input, SeqExpr(program));
      SEQ_RETURN_IF_ERROR(ExpectSymbol(","));
      SEQ_ASSIGN_OR_RETURN(int64_t factor, SignedInt());
      SEQ_RETURN_IF_ERROR(ExpectSymbol(","));
      SEQ_ASSIGN_OR_RETURN(std::string agg_name, ExpectIdent());
      if (!IsAggName(agg_name)) return ErrorHere("expected aggregate name");
      SEQ_RETURN_IF_ERROR(ExpectSymbol(","));
      SEQ_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
      std::string output_name;
      if (Peek().IsSymbol(",")) {
        Take();
        if (!Peek().IsIdent("as")) return ErrorHere("expected 'as'");
        Take();
        SEQ_ASSIGN_OR_RETURN(output_name, ExpectIdent());
      }
      SEQ_RETURN_IF_ERROR(ExpectSymbol(")"));
      if (factor < 1) return ErrorHere("collapse factor must be >= 1");
      return LogicalOp::Collapse(std::move(input), factor,
                                 AggFromName(agg_name), col,
                                 std::move(output_name));
    }
    return ErrorHere("unknown operator '" + func + "'");
  }

  Result<int64_t> SignedInt() {
    bool negative = false;
    if (Peek().IsSymbol("-")) {
      Take();
      negative = true;
    }
    if (!Peek().Is(TokKind::kInt)) return ErrorHere("expected integer");
    int64_t v = Take().int_value;
    return negative ? -v : v;
  }

  // --- predicate / scalar expression grammar -------------------------------

  Result<ExprPtr> Predicate() { return OrExpr(); }

  Result<ExprPtr> OrExpr() {
    SEQ_ASSIGN_OR_RETURN(ExprPtr left, AndExpr());
    while (Peek().IsIdent("or")) {
      Take();
      SEQ_ASSIGN_OR_RETURN(ExprPtr right, AndExpr());
      left = Or(std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> AndExpr() {
    SEQ_ASSIGN_OR_RETURN(ExprPtr left, NotExpr());
    while (Peek().IsIdent("and")) {
      Take();
      SEQ_ASSIGN_OR_RETURN(ExprPtr right, NotExpr());
      left = And(std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> NotExpr() {
    if (Peek().IsIdent("not")) {
      Take();
      SEQ_ASSIGN_OR_RETURN(ExprPtr operand, NotExpr());
      return Not(std::move(operand));
    }
    return Comparison();
  }

  Result<ExprPtr> Comparison() {
    SEQ_ASSIGN_OR_RETURN(ExprPtr left, AddSub());
    struct CmpMap {
      const char* sym;
      BinaryOp op;
    };
    static const CmpMap kMap[] = {
        {"<=", BinaryOp::kLe}, {">=", BinaryOp::kGe}, {"==", BinaryOp::kEq},
        {"!=", BinaryOp::kNe}, {"<", BinaryOp::kLt},  {">", BinaryOp::kGt},
    };
    for (const CmpMap& m : kMap) {
      if (Peek().IsSymbol(m.sym)) {
        Take();
        SEQ_ASSIGN_OR_RETURN(ExprPtr right, AddSub());
        return Expr::Binary(m.op, std::move(left), std::move(right));
      }
    }
    return left;
  }

  Result<ExprPtr> AddSub() {
    SEQ_ASSIGN_OR_RETURN(ExprPtr left, MulDiv());
    while (Peek().IsSymbol("+") || Peek().IsSymbol("-")) {
      BinaryOp op = Peek().IsSymbol("+") ? BinaryOp::kAdd : BinaryOp::kSub;
      Take();
      SEQ_ASSIGN_OR_RETURN(ExprPtr right, MulDiv());
      left = Expr::Binary(op, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> MulDiv() {
    SEQ_ASSIGN_OR_RETURN(ExprPtr left, Primary());
    while (Peek().IsSymbol("*") || Peek().IsSymbol("/")) {
      BinaryOp op = Peek().IsSymbol("*") ? BinaryOp::kMul : BinaryOp::kDiv;
      Take();
      SEQ_ASSIGN_OR_RETURN(ExprPtr right, Primary());
      left = Expr::Binary(op, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> Primary() {
    const Token& tok = Peek();
    if (tok.Is(TokKind::kInt)) {
      Take();
      return Lit(tok.int_value);
    }
    if (tok.Is(TokKind::kDouble)) {
      Take();
      return Lit(tok.double_value);
    }
    if (tok.Is(TokKind::kString)) {
      Take();
      return Expr::Literal(Value::String(tok.text));
    }
    if (tok.IsSymbol("(")) {
      Take();
      SEQ_ASSIGN_OR_RETURN(ExprPtr inner, Predicate());
      SEQ_RETURN_IF_ERROR(ExpectSymbol(")"));
      return inner;
    }
    if (tok.IsSymbol("-")) {
      Take();
      SEQ_ASSIGN_OR_RETURN(ExprPtr operand, Primary());
      return Expr::Unary(UnaryOp::kNeg, std::move(operand));
    }
    if (tok.Is(TokKind::kIdent)) {
      if (tok.text == "true" || tok.text == "false") {
        Take();
        return Lit(tok.text == "true");
      }
      if (tok.text == "pos" && Peek(1).IsSymbol("(")) {
        Take();
        Take();
        SEQ_RETURN_IF_ERROR(ExpectSymbol(")"));
        return Expr::Position();
      }
      if (tok.text == "abs" && Peek(1).IsSymbol("(")) {
        Take();
        Take();
        SEQ_ASSIGN_OR_RETURN(ExprPtr operand, Predicate());
        SEQ_RETURN_IF_ERROR(ExpectSymbol(")"));
        return Expr::Unary(UnaryOp::kAbs, std::move(operand));
      }
      if ((tok.text == "left" || tok.text == "right") &&
          Peek(1).IsSymbol(".")) {
        int side = (tok.text == "right") ? 1 : 0;
        Take();
        Take();
        SEQ_ASSIGN_OR_RETURN(std::string name, ExpectIdent());
        return Expr::Column(std::move(name), side);
      }
      Take();
      return Expr::Column(tok.text, 0);
    }
    return ErrorHere("expected an expression");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<ParsedProgram> ParseSequin(const std::string& source) {
  SEQ_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  Parser parser(std::move(tokens));
  return parser.Program();
}

Result<LogicalOpPtr> ParseSequinQuery(const std::string& source) {
  SEQ_ASSIGN_OR_RETURN(ParsedProgram program, ParseSequin(source));
  return program.main;
}

}  // namespace seq
