#ifndef SEQ_RELATIONAL_VOLCANO_SQL_H_
#define SEQ_RELATIONAL_VOLCANO_SQL_H_

#include <string>
#include <vector>

#include "relational/table.h"

namespace seq::relational {

/// The relational baseline for Example 1.1, executed exactly as the paper
/// describes a conventional optimizer's plan:
///
///   SELECT V.name FROM Volcanos V, Earthquakes E
///   WHERE E.strength > 7.0 AND
///         E.time = (SELECT max(E1.time) FROM Earthquakes E1
///                   WHERE E1.time < V.time)
///
/// "For every Volcano tuple in the outer query, the sub-query would be
/// invoked ... Each such access to the subquery involves an aggregate over
/// the entire Earthquake relation", then the resulting time probes the
/// Earthquake relation and the strength selection applies. Cost is
/// O(|V| · |E|) tuple reads; compare with the sequence engine's single
/// lock-step scan.
///
/// `volcanos` needs columns (time:int64, name:string);
/// `quakes` needs columns (time:int64, strength:double).
Result<std::vector<std::string>> VolcanoQuerySql(const Table& volcanos,
                                                 const Table& quakes,
                                                 double threshold,
                                                 RelStats* stats);

}  // namespace seq::relational

#endif  // SEQ_RELATIONAL_VOLCANO_SQL_H_
