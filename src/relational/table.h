#ifndef SEQ_RELATIONAL_TABLE_H_
#define SEQ_RELATIONAL_TABLE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "storage/base_sequence.h"
#include "types/record.h"
#include "types/schema.h"

namespace seq::relational {

/// Evaluation counters for the relational baseline; `tuples_scanned` is the
/// figure of merit compared against the sequence engine's record accesses.
struct RelStats {
  int64_t tuples_scanned = 0;
  int64_t predicate_evals = 0;
  int64_t rows_output = 0;
};

/// A minimal materialized relation: a bag of rows over a schema. This is
/// the substrate for the paper's baseline — the plan a conventional
/// relational optimizer would produce for Example 1.1 (a correlated
/// aggregate subquery evaluated per outer tuple).
class Table {
 public:
  explicit Table(SchemaPtr schema) : schema_(std::move(schema)) {}

  Status Append(Record row);

  const SchemaPtr& schema() const { return schema_; }
  const std::vector<Record>& rows() const { return rows_; }
  size_t size() const { return rows_.size(); }

 private:
  SchemaPtr schema_;
  std::vector<Record> rows_;
};

/// Flattens a base sequence into a relation, exposing the position as a
/// leading int64 column (the relational encoding of sequence data: "the
/// various meteorological events are sequenced by the time at which they
/// are recorded").
Result<Table> TableFromSequence(const BaseSequenceStore& store,
                                const std::string& time_column = "time");

}  // namespace seq::relational

#endif  // SEQ_RELATIONAL_TABLE_H_
