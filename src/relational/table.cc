#include "relational/table.h"

namespace seq::relational {

Status Table::Append(Record row) {
  if (!RecordMatchesSchema(row, *schema_)) {
    return Status::TypeError("row does not match table schema " +
                             schema_->ToString());
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

Result<Table> TableFromSequence(const BaseSequenceStore& store,
                                const std::string& time_column) {
  std::vector<Field> fields;
  fields.push_back(Field{time_column, TypeId::kInt64});
  for (const Field& f : store.schema()->fields()) fields.push_back(f);
  Table table(Schema::Make(std::move(fields)));
  for (const PosRecord& pr : store.records()) {
    Record row;
    row.reserve(pr.rec.size() + 1);
    row.push_back(Value::Int64(pr.pos));
    row.insert(row.end(), pr.rec.begin(), pr.rec.end());
    SEQ_RETURN_IF_ERROR(table.Append(std::move(row)));
  }
  return table;
}

}  // namespace seq::relational
