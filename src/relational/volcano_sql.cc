#include "relational/volcano_sql.h"

#include "relational/operators.h"

namespace seq::relational {

Result<std::vector<std::string>> VolcanoQuerySql(const Table& volcanos,
                                                 const Table& quakes,
                                                 double threshold,
                                                 RelStats* stats) {
  SEQ_ASSIGN_OR_RETURN(size_t v_time, volcanos.schema()->FieldIndex("time"));
  SEQ_ASSIGN_OR_RETURN(size_t v_name, volcanos.schema()->FieldIndex("name"));
  SEQ_ASSIGN_OR_RETURN(size_t q_time, quakes.schema()->FieldIndex("time"));
  SEQ_ASSIGN_OR_RETURN(size_t q_strength,
                       quakes.schema()->FieldIndex("strength"));

  std::vector<std::string> answers;
  for (const Record& v : volcanos.rows()) {
    ++stats->tuples_scanned;
    int64_t eruption_time = v[v_time].int64();

    // Correlated subquery: max(E1.time) where E1.time < V.time — a full
    // scan of the earthquake relation per volcano tuple.
    SEQ_ASSIGN_OR_RETURN(
        std::optional<Value> max_time,
        AggregateMax(quakes, "time",
                     Lt(Col("time"), Lit(eruption_time)), stats));
    if (!max_time.has_value()) continue;

    // Outer query: find E with E.time = max_time (another scan — the
    // baseline has no positional index) and check the strength predicate.
    for (const Record& e : quakes.rows()) {
      ++stats->tuples_scanned;
      ++stats->predicate_evals;
      if (e[q_time].Compare(*max_time) != 0) continue;
      if (e[q_strength].dbl() > threshold) {
        answers.push_back(v[v_name].str());
        ++stats->rows_output;
      }
      break;
    }
  }
  return answers;
}

}  // namespace seq::relational
