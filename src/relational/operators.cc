#include "relational/operators.h"

#include "expr/compiled_expr.h"

namespace seq::relational {

Result<Table> Filter(const Table& input, const ExprPtr& predicate,
                     RelStats* stats) {
  SEQ_ASSIGN_OR_RETURN(
      CompiledExpr compiled,
      CompiledExpr::CompilePredicate(predicate, *input.schema()));
  Table out(input.schema());
  for (const Record& row : input.rows()) {
    ++stats->tuples_scanned;
    ++stats->predicate_evals;
    if (compiled.EvalBool(row, /*pos=*/0)) {
      SEQ_RETURN_IF_ERROR(out.Append(row));
      ++stats->rows_output;
    }
  }
  return out;
}

Result<Table> Project(const Table& input,
                      const std::vector<std::string>& columns,
                      RelStats* stats) {
  std::vector<size_t> indices;
  std::vector<Field> fields;
  for (const std::string& col : columns) {
    SEQ_ASSIGN_OR_RETURN(size_t idx, input.schema()->FieldIndex(col));
    indices.push_back(idx);
    fields.push_back(input.schema()->field(idx));
  }
  Table out(Schema::Make(std::move(fields)));
  for (const Record& row : input.rows()) {
    ++stats->tuples_scanned;
    Record projected;
    projected.reserve(indices.size());
    for (size_t idx : indices) projected.push_back(row[idx]);
    SEQ_RETURN_IF_ERROR(out.Append(std::move(projected)));
    ++stats->rows_output;
  }
  return out;
}

Result<Table> NestedLoopJoin(const Table& left, const Table& right,
                             const ExprPtr& predicate, RelStats* stats) {
  SchemaPtr out_schema = Schema::Concat(*left.schema(), *right.schema());
  std::optional<CompiledExpr> compiled;
  if (predicate != nullptr) {
    SEQ_ASSIGN_OR_RETURN(CompiledExpr c,
                         CompiledExpr::CompilePredicate(
                             predicate, *left.schema(), right.schema().get()));
    compiled = std::move(c);
  }
  Table out(out_schema);
  for (const Record& l : left.rows()) {
    ++stats->tuples_scanned;
    for (const Record& r : right.rows()) {
      ++stats->tuples_scanned;
      if (compiled.has_value()) {
        ++stats->predicate_evals;
        if (!compiled->EvalBool(l, &r, /*pos=*/0)) continue;
      }
      Record combined;
      combined.reserve(l.size() + r.size());
      combined.insert(combined.end(), l.begin(), l.end());
      combined.insert(combined.end(), r.begin(), r.end());
      SEQ_RETURN_IF_ERROR(out.Append(std::move(combined)));
      ++stats->rows_output;
    }
  }
  return out;
}

Result<std::optional<Value>> AggregateMax(const Table& input,
                                          const std::string& column,
                                          const ExprPtr& predicate,
                                          RelStats* stats) {
  SEQ_ASSIGN_OR_RETURN(size_t idx, input.schema()->FieldIndex(column));
  std::optional<CompiledExpr> compiled;
  if (predicate != nullptr) {
    SEQ_ASSIGN_OR_RETURN(
        CompiledExpr c,
        CompiledExpr::CompilePredicate(predicate, *input.schema()));
    compiled = std::move(c);
  }
  std::optional<Value> best;
  for (const Record& row : input.rows()) {
    ++stats->tuples_scanned;
    if (compiled.has_value()) {
      ++stats->predicate_evals;
      if (!compiled->EvalBool(row, /*pos=*/0)) continue;
    }
    if (!best.has_value() || best->Compare(row[idx]) < 0) best = row[idx];
  }
  return best;
}

}  // namespace seq::relational
