#ifndef SEQ_RELATIONAL_OPERATORS_H_
#define SEQ_RELATIONAL_OPERATORS_H_

#include <optional>
#include <string>

#include "expr/expr.h"
#include "relational/table.h"

namespace seq::relational {

/// Set-oriented operators over materialized tables, each charging
/// `stats->tuples_scanned` for every row it reads. Deliberately simple —
/// this models the plan shape of a 1994 relational engine, not its
/// absolute performance.

/// σ: rows satisfying `predicate` (compiled against the table schema;
/// Position() is not available in relational context).
Result<Table> Filter(const Table& input, const ExprPtr& predicate,
                     RelStats* stats);

/// π: the named columns, in order.
Result<Table> Project(const Table& input,
                      const std::vector<std::string>& columns,
                      RelStats* stats);

/// Nested-loop θ-join. The predicate sees left columns as side 0 and right
/// columns as side 1; the output schema is the concat (right-side clashes
/// suffixed "_r").
Result<Table> NestedLoopJoin(const Table& left, const Table& right,
                             const ExprPtr& predicate, RelStats* stats);

/// Scalar aggregate MAX(column) over rows satisfying `predicate`
/// (nullopt on empty input) — the correlated subquery's body. Scans the
/// whole table, exactly like the paper says a relational plan would:
/// "each such access to the subquery involves an aggregate over the
/// entire Earthquake relation".
Result<std::optional<Value>> AggregateMax(const Table& input,
                                          const std::string& column,
                                          const ExprPtr& predicate,
                                          RelStats* stats);

}  // namespace seq::relational

#endif  // SEQ_RELATIONAL_OPERATORS_H_
