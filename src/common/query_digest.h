#ifndef SEQ_COMMON_QUERY_DIGEST_H_
#define SEQ_COMMON_QUERY_DIGEST_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace seq {

/// Normalizes query text to its shape digest: literals are parameterized
/// (numbers and quoted strings become `?`), ASCII case is folded, and
/// tokens are re-joined with single spaces so whitespace and layout do
/// not matter. Two queries that differ only in bound literals — the
/// repeat-shape hot path the parameterized plan cache keys on — get the
/// same digest:
///
///   NormalizeQueryText("select(IBM, close > 100.0)") ==
///   NormalizeQueryText("SELECT( ibm,close>7 )")        // "select ( ibm , close > ? )"
///
/// This is the ONE shape-digest implementation in the tree: the
/// slow-query log (obs/slow_query_log) and the plan cache's text fast
/// path (core/plan_cache) both call it, so a shape always has the same
/// digest in both places and the two can never drift apart.
std::string NormalizeQueryText(std::string_view text);

/// One literal token lifted out of the query text by NormalizeAndExtract,
/// in source order.
struct TextLiteral {
  /// The token as written: digits (and dot) for numbers, the inner body
  /// for quoted strings (quotes stripped, escapes NOT processed — the
  /// Sequin lexer copies string bodies verbatim).
  std::string text;
  /// True for quoted strings, false for numeric tokens.
  bool is_string = false;
  /// True when a numeric token contains a '.' inside the digit run (the
  /// lexer's int-vs-double rule).
  bool is_double = false;
};

/// NormalizeQueryText plus the literals it parameterized away, in order.
/// `shape` is byte-identical to NormalizeQueryText(text). `clean` is false
/// when a string literal contained a backslash or was unterminated — cases
/// where this scanner's token boundaries may disagree with the real
/// Sequin lexer, so the literals must not be used for plan binding.
struct NormalizedQuery {
  std::string shape;
  std::vector<TextLiteral> literals;
  bool clean = true;
};

NormalizedQuery NormalizeAndExtract(std::string_view text);

/// 64-bit FNV-1a over `data`, for compact cache-key fingerprints.
uint64_t Fnv1a64(std::string_view data, uint64_t seed = 1469598103934665603ULL);

}  // namespace seq

#endif  // SEQ_COMMON_QUERY_DIGEST_H_
