#ifndef SEQ_COMMON_STATUS_H_
#define SEQ_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace seq {

/// Error categories used across the library. Kept deliberately coarse:
/// callers branch on "ok vs. not ok" far more often than on the category.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // malformed input from the caller (bad query, bad span)
  kTypeError,         // expression / schema type mismatch
  kNotFound,          // unknown sequence, column, or named query
  kOutOfRange,        // position outside a valid span
  kUnimplemented,     // feature intentionally not supported
  kInternal,          // invariant violation inside the library
  kParseError,        // Sequin language syntax error
  kResourceExhausted, // a per-query budget (rows, pages, cache memory) hit
  kDeadlineExceeded,  // the query's wall-clock budget expired
  kCancelled,         // cooperative cancellation requested by the driver
  kUnavailable,       // a storage access failed (page fault, injected fault)
  kDataLoss,          // persisted data is corrupt or truncated
  kFailedPrecondition,  // system state does not admit the operation (stale
                        // checkpoint, catalog/plan mismatch)
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A lightweight success-or-error value. The library does not use exceptions;
/// every fallible public API returns `Status` or `Result<T>`.
///
/// The OK status carries no message and allocates nothing.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace seq

/// Propagates a non-OK Status from the evaluated expression.
#define SEQ_RETURN_IF_ERROR(expr)              \
  do {                                         \
    ::seq::Status seq_status__ = (expr);       \
    if (!seq_status__.ok()) return seq_status__; \
  } while (false)

#endif  // SEQ_COMMON_STATUS_H_
