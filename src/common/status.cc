#include "common/status.h"

namespace seq {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace seq
