#ifndef SEQ_COMMON_RNG_H_
#define SEQ_COMMON_RNG_H_

#include <cstdint>
#include <random>

namespace seq {

/// Deterministic random source used by the workload generators and
/// property tests. A thin wrapper over std::mt19937_64 so all call sites
/// share one seeding convention and distribution helpers.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// True with probability p.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Geometric inter-arrival gap (>= 1) with success probability p; used to
  /// generate event sequences of a target density.
  int64_t GeometricGap(double p) {
    if (p >= 1.0) return 1;
    return 1 + std::geometric_distribution<int64_t>(p)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace seq

#endif  // SEQ_COMMON_RNG_H_
