#include "common/logging.h"

namespace seq::internal_logging {

void FatalError(const char* file, int line, const std::string& msg) {
  std::cerr << file << ":" << line << ": " << msg << std::endl;
  std::abort();
}

}  // namespace seq::internal_logging
