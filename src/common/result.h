#ifndef SEQ_COMMON_RESULT_H_
#define SEQ_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace seq {

/// A value-or-error holder, the return type of fallible functions that
/// produce a value. Mirrors absl::StatusOr / arrow::Result.
///
/// Invariant: exactly one of {status is non-OK, value is present} holds.
template <typename T>
class Result {
 public:
  /// Implicit construction from an error status. Constructing a Result from
  /// an OK status without a value is a programming error.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }
  /// Implicit construction from a value.
  Result(T value) : value_(std::move(value)) {}  // NOLINT

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when holding an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

}  // namespace seq

/// Evaluates `rexpr` (a Result<T>), propagating its error; on success binds
/// the value to `lhs`. Usage: SEQ_ASSIGN_OR_RETURN(auto plan, Optimize(q));
#define SEQ_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  SEQ_ASSIGN_OR_RETURN_IMPL_(                                   \
      SEQ_RESULT_CONCAT_(seq_result__, __LINE__), lhs, rexpr)

#define SEQ_ASSIGN_OR_RETURN_IMPL_(result, lhs, rexpr) \
  auto result = (rexpr);                               \
  if (!result.ok()) return result.status();            \
  lhs = std::move(result).value()

#define SEQ_RESULT_CONCAT_INNER_(x, y) x##y
#define SEQ_RESULT_CONCAT_(x, y) SEQ_RESULT_CONCAT_INNER_(x, y)

#endif  // SEQ_COMMON_RESULT_H_
