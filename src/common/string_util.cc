#include "common/string_util.h"

#include <cctype>
#include <cstdio>

namespace seq {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view StripAsciiWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string AsciiToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace seq
