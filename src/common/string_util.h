#ifndef SEQ_COMMON_STRING_UTIL_H_
#define SEQ_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace seq {

/// Joins `parts` with `sep` between elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Returns `s` with leading and trailing ASCII whitespace removed.
std::string_view StripAsciiWhitespace(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Lower-cases ASCII letters in `s`.
std::string AsciiToLower(std::string_view s);

/// Formats a double compactly (trailing zeros trimmed, up to 6 significant
/// decimals) for plan and record printing.
std::string FormatDouble(double v);

}  // namespace seq

#endif  // SEQ_COMMON_STRING_UTIL_H_
