#include "common/query_digest.h"

#include <cctype>

#include "common/string_util.h"

namespace seq {

namespace {

/// The one tokenizing scan behind NormalizeQueryText and
/// NormalizeAndExtract. `out` always receives the shape; `literals` is
/// optional. Kept as a single implementation so the shape emitted with and
/// without extraction can never differ.
void ScanQueryText(std::string_view text, std::string* out,
                   std::vector<TextLiteral>* literals, bool* clean) {
  out->reserve(text.size());
  auto emit = [out](std::string_view token) {
    if (!out->empty()) out->push_back(' ');
    out->append(token);
  };
  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    const unsigned char c = static_cast<unsigned char>(text[i]);
    if (std::isspace(c)) {
      ++i;
      continue;
    }
    // Quoted string literal (either quote style; backslash escapes kept
    // opaque) -> one parameter marker.
    if (c == '"' || c == '\'') {
      const char quote = text[i];
      ++i;
      const size_t body_start = i;
      bool saw_backslash = false;
      while (i < n && text[i] != quote) {
        if (text[i] == '\\' && i + 1 < n) {
          saw_backslash = true;
          ++i;
        }
        ++i;
      }
      const size_t body_end = i;
      bool terminated = i < n;
      if (terminated) ++i;  // closing quote
      emit("?");
      if (literals != nullptr) {
        TextLiteral lit;
        lit.text = std::string(text.substr(body_start, body_end - body_start));
        lit.is_string = true;
        literals->push_back(std::move(lit));
      }
      if (clean != nullptr && (saw_backslash || !terminated)) *clean = false;
      continue;
    }
    // Numeric literal (digit-led, or dot-led like ".5"), including
    // decimals and exponents -> one parameter marker. A leading sign is
    // left to tokenize as an operator, which is consistent on both sides
    // of a comparison.
    if (std::isdigit(c) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      const size_t num_start = i;
      ++i;
      while (i < n && (std::isdigit(static_cast<unsigned char>(text[i])) ||
                       text[i] == '.')) {
        ++i;
      }
      if (i < n && (text[i] == 'e' || text[i] == 'E')) {
        size_t j = i + 1;
        if (j < n && (text[j] == '+' || text[j] == '-')) ++j;
        if (j < n && std::isdigit(static_cast<unsigned char>(text[j]))) {
          ++j;
          while (j < n && std::isdigit(static_cast<unsigned char>(text[j]))) {
            ++j;
          }
          i = j;
        }
      }
      emit("?");
      if (literals != nullptr) {
        std::string_view token = text.substr(num_start, i - num_start);
        TextLiteral lit;
        lit.text = std::string(token);
        lit.is_double = token.find_first_of(".eE") != std::string_view::npos;
        literals->push_back(std::move(lit));
      }
      continue;
    }
    // Identifier / keyword: case-folded.
    if (std::isalpha(c) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(text[j])) ||
                       text[j] == '_')) {
        ++j;
      }
      emit(AsciiToLower(text.substr(i, j - i)));
      i = j;
      continue;
    }
    // Any other character is its own token.
    emit(text.substr(i, 1));
    ++i;
  }
}

}  // namespace

std::string NormalizeQueryText(std::string_view text) {
  std::string out;
  ScanQueryText(text, &out, nullptr, nullptr);
  return out;
}

NormalizedQuery NormalizeAndExtract(std::string_view text) {
  NormalizedQuery out;
  ScanQueryText(text, &out.shape, &out.literals, &out.clean);
  return out;
}

uint64_t Fnv1a64(std::string_view data, uint64_t seed) {
  uint64_t h = seed;
  for (char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace seq
