#ifndef SEQ_COMMON_LOGGING_H_
#define SEQ_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace seq::internal_logging {

/// Terminates the process after printing `msg`. Out-of-line so the fatal
/// path stays cold in callers.
[[noreturn]] void FatalError(const char* file, int line, const std::string& msg);

}  // namespace seq::internal_logging

/// Invariant check that is active in all build types.
///
/// The abort-vs-Status rule: SEQ_CHECK (and SEQ_CHECK_MSG) may guard only
/// conditions that are unreachable unless the library itself is broken —
/// planner postconditions, switch exhaustiveness over internal enums,
/// builder preconditions on programmer-constructed graphs. Anything an
/// end user can trigger from the outside MUST surface as a Status:
///   - query text (parser/lexer: ParseError, including out-of-range
///     numeric literals),
///   - semantic errors in well-formed syntax (typecheck/annotate:
///     InvalidArgument / NotFound),
///   - on-disk input (file_format / database_io: DataLoss for corrupt or
///     truncated files — validate every length, count, and name before it
///     reaches a checked constructor such as Schema::Make),
///   - runtime conditions (budgets: ResourceExhausted / DeadlineExceeded /
///     Cancelled; injected or real I/O failure mid-stream: Unavailable via
///     ExecContext::Raise).
/// A crash on user input is always a bug, never a diagnostic.
#define SEQ_CHECK(cond)                                                   \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::seq::internal_logging::FatalError(__FILE__, __LINE__,             \
                                          "SEQ_CHECK failed: " #cond);    \
    }                                                                     \
  } while (false)

#define SEQ_CHECK_MSG(cond, msg)                                          \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::ostringstream seq_oss__;                                       \
      seq_oss__ << "SEQ_CHECK failed: " #cond << " — " << msg;            \
      ::seq::internal_logging::FatalError(__FILE__, __LINE__,             \
                                          seq_oss__.str());               \
    }                                                                     \
  } while (false)

/// Debug-only check, compiled out in release builds.
#ifdef NDEBUG
#define SEQ_DCHECK(cond) \
  do {                   \
  } while (false)
#else
#define SEQ_DCHECK(cond) SEQ_CHECK(cond)
#endif

#endif  // SEQ_COMMON_LOGGING_H_
