#ifndef SEQ_COMMON_LOGGING_H_
#define SEQ_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace seq::internal_logging {

/// Terminates the process after printing `msg`. Out-of-line so the fatal
/// path stays cold in callers.
[[noreturn]] void FatalError(const char* file, int line, const std::string& msg);

}  // namespace seq::internal_logging

/// Invariant check that is active in all build types. Use for conditions
/// whose violation means the library itself is broken; user-input errors
/// must surface as Status instead.
#define SEQ_CHECK(cond)                                                   \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::seq::internal_logging::FatalError(__FILE__, __LINE__,             \
                                          "SEQ_CHECK failed: " #cond);    \
    }                                                                     \
  } while (false)

#define SEQ_CHECK_MSG(cond, msg)                                          \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::ostringstream seq_oss__;                                       \
      seq_oss__ << "SEQ_CHECK failed: " #cond << " — " << msg;            \
      ::seq::internal_logging::FatalError(__FILE__, __LINE__,             \
                                          seq_oss__.str());               \
    }                                                                     \
  } while (false)

/// Debug-only check, compiled out in release builds.
#ifdef NDEBUG
#define SEQ_DCHECK(cond) \
  do {                   \
  } while (false)
#else
#define SEQ_DCHECK(cond) SEQ_CHECK(cond)
#endif

#endif  // SEQ_COMMON_LOGGING_H_
