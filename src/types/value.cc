#include "types/value.h"

#include <functional>

#include "common/string_util.h"

namespace seq {

const char* TypeName(TypeId type) {
  switch (type) {
    case TypeId::kInt64:
      return "int64";
    case TypeId::kDouble:
      return "double";
    case TypeId::kBool:
      return "bool";
    case TypeId::kString:
      return "string";
  }
  return "unknown";
}

bool IsNumeric(TypeId type) {
  return type == TypeId::kInt64 || type == TypeId::kDouble;
}

namespace {

int CompareDoubles(double a, double b) {
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

}  // namespace

int Value::Compare(const Value& other) const {
  if (IsNumeric(type()) && IsNumeric(other.type())) {
    if (type() == TypeId::kInt64 && other.type() == TypeId::kInt64) {
      int64_t a = int64();
      int64_t b = other.int64();
      return (a < b) ? -1 : (a > b) ? 1 : 0;
    }
    return CompareDoubles(AsDouble(), other.AsDouble());
  }
  SEQ_CHECK_MSG(type() == other.type(),
                "comparing incompatible value types " << TypeName(type())
                                                      << " and "
                                                      << TypeName(other.type()));
  switch (type()) {
    case TypeId::kBool: {
      int a = boolean() ? 1 : 0;
      int b = other.boolean() ? 1 : 0;
      return a - b;
    }
    case TypeId::kString:
      return str().compare(other.str()) < 0   ? -1
             : str().compare(other.str()) > 0 ? 1
                                              : 0;
    default:
      SEQ_CHECK(false);
  }
  return 0;
}

size_t Value::Hash() const {
  switch (type()) {
    case TypeId::kInt64:
      return std::hash<double>()(static_cast<double>(int64()));
    case TypeId::kDouble:
      return std::hash<double>()(dbl());
    case TypeId::kBool:
      return std::hash<bool>()(boolean());
    case TypeId::kString:
      return std::hash<std::string>()(str());
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case TypeId::kInt64:
      return std::to_string(int64());
    case TypeId::kDouble:
      return FormatDouble(dbl());
    case TypeId::kBool:
      return boolean() ? "true" : "false";
    case TypeId::kString:
      return "\"" + str() + "\"";
  }
  return "?";
}

}  // namespace seq
