#include "types/schema.h"

#include <unordered_set>

#include "common/logging.h"

namespace seq {

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

SchemaPtr Schema::Make(std::vector<Field> fields) {
  std::unordered_set<std::string> seen;
  for (const Field& f : fields) {
    SEQ_CHECK_MSG(seen.insert(f.name).second,
                  "duplicate field name '" << f.name << "' in schema");
  }
  return std::make_shared<Schema>(std::move(fields));
}

std::optional<size_t> Schema::FindField(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  return std::nullopt;
}

Result<size_t> Schema::FieldIndex(const std::string& name) const {
  std::optional<size_t> idx = FindField(name);
  if (!idx.has_value()) {
    return Status::NotFound("no field named '" + name + "' in schema " +
                            ToString());
  }
  return *idx;
}

SchemaPtr Schema::Project(const std::vector<size_t>& indices,
                          const std::vector<std::string>& new_names) const {
  std::vector<Field> out;
  out.reserve(indices.size());
  for (size_t k = 0; k < indices.size(); ++k) {
    SEQ_CHECK(indices[k] < fields_.size());
    Field f = fields_[indices[k]];
    if (k < new_names.size() && !new_names[k].empty()) f.name = new_names[k];
    out.push_back(std::move(f));
  }
  return Schema::Make(std::move(out));
}

std::vector<Schema::ConcatField> Schema::ConcatFields(
    const Schema& left, const Schema& right,
    const std::string& right_suffix) {
  std::vector<ConcatField> out;
  out.reserve(left.fields_.size() + right.fields_.size());
  std::unordered_set<std::string> names;
  for (size_t i = 0; i < left.fields_.size(); ++i) {
    names.insert(left.fields_[i].name);
    out.push_back(ConcatField{0, i, left.fields_[i].name});
  }
  for (size_t i = 0; i < right.fields_.size(); ++i) {
    std::string name = right.fields_[i].name;
    if (!names.insert(name).second) {
      std::string base = name + right_suffix;
      std::string candidate = base;
      int n = 2;
      while (!names.insert(candidate).second) {
        candidate = base + std::to_string(n++);
      }
      name = candidate;
    }
    out.push_back(ConcatField{1, i, std::move(name)});
  }
  return out;
}

SchemaPtr Schema::Concat(const Schema& left, const Schema& right,
                         const std::string& right_suffix) {
  std::vector<ConcatField> origins = ConcatFields(left, right, right_suffix);
  std::vector<Field> out;
  out.reserve(origins.size());
  for (const ConcatField& cf : origins) {
    const Field& src =
        (cf.side == 0) ? left.fields_[cf.index] : right.fields_[cf.index];
    out.push_back(Field{cf.out_name, src.type});
  }
  return Schema::Make(std::move(out));
}

std::string Schema::ToString() const {
  std::string out = "<";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += ":";
    out += TypeName(fields_[i].type);
  }
  out += ">";
  return out;
}

}  // namespace seq
