#include "types/record.h"

#include <sstream>

namespace seq {

bool RecordMatchesSchema(const Record& rec, const Schema& schema) {
  if (rec.size() != schema.num_fields()) return false;
  for (size_t i = 0; i < rec.size(); ++i) {
    if (rec[i].type() != schema.field(i).type) return false;
  }
  return true;
}

std::string RecordToString(const Record& rec, const Schema& schema) {
  std::ostringstream oss;
  oss << "(";
  for (size_t i = 0; i < rec.size(); ++i) {
    if (i > 0) oss << ", ";
    if (i < schema.num_fields()) oss << schema.field(i).name << "=";
    oss << rec[i].ToString();
  }
  oss << ")";
  return oss.str();
}

std::string PosRecordToString(const PosRecord& pr, const Schema& schema) {
  std::ostringstream oss;
  oss << pr.pos << ": " << RecordToString(pr.rec, schema);
  return oss.str();
}

}  // namespace seq
