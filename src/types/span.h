#ifndef SEQ_TYPES_SPAN_H_
#define SEQ_TYPES_SPAN_H_

#include <algorithm>
#include <cstdint>
#include <string>

namespace seq {

/// A position in a sequence. The paper models positions as integers drawn
/// from any totally ordered countable domain; we use int64_t.
using Position = int64_t;

/// Sentinels for unbounded spans (constant sequences). Chosen well inside
/// the int64 range so that shifting a span by an operator offset can never
/// overflow.
inline constexpr Position kMinPosition = INT64_MIN / 4;
inline constexpr Position kMaxPosition = INT64_MAX / 4;

/// The valid range of a sequence: a closed interval [start, end] of
/// positions. Positions outside a sequence's span map to the Null record.
///
/// A span with start > end is empty. A span reaching kMinPosition /
/// kMaxPosition is considered unbounded on that side (constant sequences
/// are unbounded on both).
struct Span {
  Position start = 0;
  Position end = -1;  // default-constructed span is empty

  static constexpr Span Of(Position start, Position end) {
    return Span{start, end};
  }
  static Span Empty() { return Span{0, -1}; }
  static Span Unbounded() { return Span{kMinPosition, kMaxPosition}; }
  /// Single position.
  static Span Point(Position p) { return Span{p, p}; }

  bool IsEmpty() const { return start > end; }
  bool IsUnbounded() const {
    return !IsEmpty() && (start <= kMinPosition || end >= kMaxPosition);
  }
  bool Contains(Position p) const { return p >= start && p <= end; }

  /// Number of positions in the span. Only meaningful for bounded,
  /// non-empty spans; empty spans report 0.
  int64_t Length() const { return IsEmpty() ? 0 : end - start + 1; }

  /// Intersection of two spans (possibly empty).
  Span Intersect(const Span& other) const {
    if (IsEmpty() || other.IsEmpty()) return Empty();
    Span out{std::max(start, other.start), std::min(end, other.end)};
    return out;
  }

  /// Smallest span containing both (convex hull). Empty inputs are ignored.
  Span Hull(const Span& other) const {
    if (IsEmpty()) return other;
    if (other.IsEmpty()) return *this;
    return Span{std::min(start, other.start), std::max(end, other.end)};
  }

  /// The span shifted by `delta` positions; sentinel bounds are sticky so
  /// shifting an unbounded span keeps it unbounded.
  Span Shift(Position delta) const {
    if (IsEmpty()) return Empty();
    Position s = (start <= kMinPosition) ? kMinPosition : start + delta;
    Position e = (end >= kMaxPosition) ? kMaxPosition : end + delta;
    return Span{s, e};
  }

  /// Extends the end of the span by `k >= 0` positions (used by window
  /// aggregates whose output outlives the last input record).
  Span ExtendEnd(int64_t k) const {
    if (IsEmpty()) return Empty();
    Position e = (end >= kMaxPosition) ? kMaxPosition : end + k;
    return Span{start, e};
  }

  bool operator==(const Span& other) const {
    if (IsEmpty() && other.IsEmpty()) return true;
    return start == other.start && end == other.end;
  }
  bool operator!=(const Span& other) const { return !(*this == other); }

  /// "[start,end]", "(empty)" or "(unbounded)" for printing.
  std::string ToString() const;
};

}  // namespace seq

#endif  // SEQ_TYPES_SPAN_H_
