#ifndef SEQ_TYPES_VALUE_H_
#define SEQ_TYPES_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/logging.h"

namespace seq {

/// The atomic attribute types of the record model (paper §2: "indivisible
/// atomic types of fixed size"). Strings are included for names/labels in
/// the motivating workloads and are treated as atomic.
enum class TypeId : uint8_t {
  kInt64 = 0,
  kDouble = 1,
  kBool = 2,
  kString = 3,
};

/// Stable name for a type ("int64", "double", "bool", "string").
const char* TypeName(TypeId type);

/// True for kInt64 and kDouble.
bool IsNumeric(TypeId type);

/// A single attribute value. Values are small, copyable, and totally
/// ordered within compatible types; int64 and double compare numerically
/// against each other.
class Value {
 public:
  /// Default: int64 zero. Needed for container resizing; never produced by
  /// the engine otherwise.
  Value() : data_(int64_t{0}) {}

  static Value Int64(int64_t v) { return Value(v); }
  static Value Double(double v) { return Value(v); }
  static Value Bool(bool v) { return Value(v); }
  static Value String(std::string v) { return Value(std::move(v)); }

  TypeId type() const { return static_cast<TypeId>(data_.index()); }

  int64_t int64() const {
    SEQ_DCHECK(type() == TypeId::kInt64);
    return std::get<int64_t>(data_);
  }
  double dbl() const {
    SEQ_DCHECK(type() == TypeId::kDouble);
    return std::get<double>(data_);
  }
  bool boolean() const {
    SEQ_DCHECK(type() == TypeId::kBool);
    return std::get<bool>(data_);
  }
  const std::string& str() const {
    SEQ_DCHECK(type() == TypeId::kString);
    return std::get<std::string>(data_);
  }

  /// Numeric value as double; requires a numeric type.
  double AsDouble() const {
    switch (type()) {
      case TypeId::kInt64:
        return static_cast<double>(std::get<int64_t>(data_));
      case TypeId::kDouble:
        return std::get<double>(data_);
      default:
        SEQ_CHECK_MSG(false, "AsDouble on non-numeric value");
    }
  }

  /// Three-way comparison: negative / zero / positive. Numeric types
  /// compare across int64/double; otherwise both values must share a type.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Hash suitable for unordered containers; numeric values that compare
  /// equal hash equal.
  size_t Hash() const;

  std::string ToString() const;

 private:
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(bool v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}

  // Variant index order must match TypeId enumerator values.
  std::variant<int64_t, double, bool, std::string> data_;
};

}  // namespace seq

#endif  // SEQ_TYPES_VALUE_H_
