#ifndef SEQ_TYPES_SCHEMA_H_
#define SEQ_TYPES_SCHEMA_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "types/value.h"

namespace seq {

/// A named, typed attribute of a record schema.
struct Field {
  std::string name;
  TypeId type;

  bool operator==(const Field& other) const {
    return name == other.name && type == other.type;
  }
};

class Schema;
using SchemaPtr = std::shared_ptr<const Schema>;

/// A record schema R = <A1:T1, ..., An:Tn> (paper §2). Immutable once
/// built; shared by pointer between the catalog, logical graph, and plans.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields);

  /// Builds a shared schema from fields; duplicate field names are a
  /// programming error (checked).
  static SchemaPtr Make(std::vector<Field> fields);

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the field named `name`, or nullopt.
  std::optional<size_t> FindField(const std::string& name) const;

  /// Index of the field named `name` or a NotFound status.
  Result<size_t> FieldIndex(const std::string& name) const;

  /// Schema with only the fields at `indices`, in that order, optionally
  /// renamed (empty string keeps the original name).
  SchemaPtr Project(const std::vector<size_t>& indices,
                    const std::vector<std::string>& new_names = {}) const;

  /// Concatenation for compose (positional join) outputs. Name clashes on
  /// the right side are resolved by appending `right_suffix` (and then
  /// digits until unique); pass distinct prefixes from the logical layer
  /// for readable plans.
  static SchemaPtr Concat(const Schema& left, const Schema& right,
                          const std::string& right_suffix = "_r");

  /// Origin of each concatenated field: which input (0=left, 1=right),
  /// which field index there, and the (possibly de-clashed) output name.
  /// Parallel to Concat's output field order.
  struct ConcatField {
    int side;
    size_t index;
    std::string out_name;
  };
  static std::vector<ConcatField> ConcatFields(
      const Schema& left, const Schema& right,
      const std::string& right_suffix = "_r");

  bool Equals(const Schema& other) const { return fields_ == other.fields_; }

  /// "<name:type, ...>"
  std::string ToString() const;

 private:
  std::vector<Field> fields_;
};

}  // namespace seq

#endif  // SEQ_TYPES_SCHEMA_H_
