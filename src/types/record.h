#ifndef SEQ_TYPES_RECORD_H_
#define SEQ_TYPES_RECORD_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "types/schema.h"
#include "types/span.h"
#include "types/value.h"

namespace seq {

/// A non-null record: one value per schema field, in schema order. The
/// Null record of the paper is modeled by absence (operators yield only
/// non-null records), so no null flag lives here.
using Record = std::vector<Value>;

/// A record paired with the position it occupies. The unit of data flow in
/// the execution engine; streams yield PosRecords in increasing position
/// order.
struct PosRecord {
  Position pos;
  Record rec;
};

/// A reusable column of rows for batch-at-a-time execution: parallel
/// arrays of positions and records with a fixed capacity. Clear() resets
/// the row count but keeps every record's buffer (and, transitively, the
/// capacity of any string values assigned in place), so a batch that is
/// refilled by the same operator reaches an allocation-free steady state.
///
/// Ownership/reuse rules (see docs/execution.md):
///  * the driver that allocates a batch owns it; each operator in a
///    NextBatch chain may rewrite the rows in place (filter compaction,
///    projection) as long as every slot keeps *a* buffer — swap or move
///    values between slots, never move a slot's vector away;
///  * consumers may move values *out* of a row's record but must not hold
///    references to slots past the next refill;
///  * Append() hands back the slot's previous buffer unchanged — fill it
///    with AssignRecord / resize + assign rather than assuming it is empty.
class RecordBatch {
 public:
  static constexpr size_t kDefaultCapacity = 1024;

  explicit RecordBatch(size_t capacity = kDefaultCapacity)
      : positions_(capacity), records_(capacity) {}

  size_t capacity() const { return records_.size(); }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == records_.size(); }

  /// Resets the row count; record buffers are retained for reuse.
  void Clear() { size_ = 0; }

  /// Drops the rows at index `n` and beyond (n <= size()); their record
  /// buffers are retained. Used by in-place filtering stages.
  void Truncate(size_t n) { size_ = n; }

  Position pos(size_t i) const { return positions_[i]; }
  Position& pos(size_t i) { return positions_[i]; }
  const Record& rec(size_t i) const { return records_[i]; }
  Record& rec(size_t i) { return records_[i]; }

  /// Appends a row: stamps its position and returns the reusable record
  /// buffer for the new slot. Requires !full().
  Record& Append(Position p) {
    positions_[size_] = p;
    return records_[size_++];
  }

 private:
  size_t size_ = 0;
  std::vector<Position> positions_;
  std::vector<Record> records_;
};

/// Copies `src` into `dst` field-by-field, reusing dst's vector buffer and
/// (for strings) each value's existing heap allocation where possible.
inline void AssignRecord(Record& dst, const Record& src) {
  dst.resize(src.size());
  for (size_t i = 0; i < src.size(); ++i) dst[i] = src[i];
}

/// Moves src's values into `dst` field-by-field. Unlike `dst =
/// std::move(src)`, both vectors keep their buffers, so batch slots on
/// either side stay reusable.
inline void MoveRecordValues(Record& dst, Record& src) {
  dst.resize(src.size());
  for (size_t i = 0; i < src.size(); ++i) dst[i] = std::move(src[i]);
}

/// Approximate heap footprint of one record in bytes: vector header plus
/// one Value per field plus string payloads. Used by the operator-cache
/// memory budget (QueryGuards::max_cache_bytes); an estimate is enough —
/// the budget models memory pressure, not an allocator.
inline int64_t ApproxRecordBytes(const Record& rec) {
  int64_t bytes =
      static_cast<int64_t>(sizeof(Record) + rec.size() * sizeof(Value));
  for (const Value& v : rec) {
    if (v.type() == TypeId::kString) {
      bytes += static_cast<int64_t>(v.str().capacity());
    }
  }
  return bytes;
}

/// True if `rec` matches `schema` arity and field types.
bool RecordMatchesSchema(const Record& rec, const Schema& schema);

/// "(pos: name=value, ...)" for debugging and example output.
std::string RecordToString(const Record& rec, const Schema& schema);
std::string PosRecordToString(const PosRecord& pr, const Schema& schema);

}  // namespace seq

#endif  // SEQ_TYPES_RECORD_H_
