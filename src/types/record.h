#ifndef SEQ_TYPES_RECORD_H_
#define SEQ_TYPES_RECORD_H_

#include <string>
#include <vector>

#include "types/schema.h"
#include "types/span.h"
#include "types/value.h"

namespace seq {

/// A non-null record: one value per schema field, in schema order. The
/// Null record of the paper is modeled by absence (operators yield only
/// non-null records), so no null flag lives here.
using Record = std::vector<Value>;

/// A record paired with the position it occupies. The unit of data flow in
/// the execution engine; streams yield PosRecords in increasing position
/// order.
struct PosRecord {
  Position pos;
  Record rec;
};

/// True if `rec` matches `schema` arity and field types.
bool RecordMatchesSchema(const Record& rec, const Schema& schema);

/// "(pos: name=value, ...)" for debugging and example output.
std::string RecordToString(const Record& rec, const Schema& schema);
std::string PosRecordToString(const PosRecord& pr, const Schema& schema);

}  // namespace seq

#endif  // SEQ_TYPES_RECORD_H_
