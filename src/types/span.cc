#include "types/span.h"

#include <sstream>

namespace seq {

std::string Span::ToString() const {
  if (IsEmpty()) return "(empty)";
  std::ostringstream oss;
  oss << "[";
  if (start <= kMinPosition) {
    oss << "-inf";
  } else {
    oss << start;
  }
  oss << ",";
  if (end >= kMaxPosition) {
    oss << "+inf";
  } else {
    oss << end;
  }
  oss << "]";
  return oss.str();
}

}  // namespace seq
