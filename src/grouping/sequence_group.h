#ifndef SEQ_GROUPING_SEQUENCE_GROUP_H_
#define SEQ_GROUPING_SEQUENCE_GROUP_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/engine.h"

namespace seq {

/// §5.1 "Sequence Groupings": "it might be desirable to collectively query
/// a group of sequences of similar record type ... the operators
/// manipulate sequence groupings instead of sequences."
///
/// A SequenceGroup names a set of same-schema catalog sequences (e.g. one
/// price sequence per ticker, one result sequence per experiment). Group
/// operators either run a per-member query template (Map / Filter) or
/// combine members position-wise into one sequence (PositionalAgg).
class SequenceGroup {
 public:
  /// All members must already be registered in `engine`'s catalog with
  /// equal schemas.
  static Result<SequenceGroup> Create(const Engine* engine,
                                      std::vector<std::string> members);

  const std::vector<std::string>& members() const { return members_; }
  const SchemaPtr& schema() const { return schema_; }

  /// Builds a per-member query graph; receives the member name so
  /// templates can reference the member (usually via SeqRef(member)).
  using GraphTemplate = std::function<LogicalOpPtr(const std::string&)>;

  /// Runs `graph_for` over every member (the grouped query of §5.1).
  Result<std::map<std::string, QueryResult>> Map(
      const GraphTemplate& graph_for,
      std::optional<Span> range = std::nullopt,
      AccessStats* stats = nullptr) const;

  /// Keeps the members for which `condition_for`'s query yields at least
  /// one record — the paper's example: "given a database of experimental
  /// result sequences, a query might ask for those sequences that satisfy
  /// some condition". Returns a new group.
  Result<SequenceGroup> Filter(const GraphTemplate& condition_for,
                               std::optional<Span> range = std::nullopt,
                               AccessStats* stats = nullptr) const;

  /// Aggregates `column` across members *per position*: out(i) =
  /// agg({member(i).column | member non-null at i}), null where every
  /// member is null — e.g. the average close across all tickers each day.
  /// Evaluated as one lock-step multi-way merge of member streams.
  Result<QueryResult> PositionalAgg(AggFunc func, const std::string& column,
                                    std::optional<Span> range = std::nullopt,
                                    AccessStats* stats = nullptr) const;

 private:
  SequenceGroup(const Engine* engine, std::vector<std::string> members,
                SchemaPtr schema)
      : engine_(engine),
        members_(std::move(members)),
        schema_(std::move(schema)) {}

  const Engine* engine_;
  std::vector<std::string> members_;
  SchemaPtr schema_;
};

}  // namespace seq

#endif  // SEQ_GROUPING_SEQUENCE_GROUP_H_
