#include "grouping/sequence_group.h"

#include <algorithm>

#include "exec/window_state.h"

namespace seq {

Result<SequenceGroup> SequenceGroup::Create(const Engine* engine,
                                            std::vector<std::string> members) {
  if (engine == nullptr) {
    return Status::InvalidArgument("null engine");
  }
  if (members.empty()) {
    return Status::InvalidArgument("a sequence group needs members");
  }
  SchemaPtr schema;
  for (const std::string& member : members) {
    SEQ_ASSIGN_OR_RETURN(const CatalogEntry* entry,
                         engine->catalog().Lookup(member));
    if (schema == nullptr) {
      schema = entry->schema;
    } else if (!schema->Equals(*entry->schema)) {
      return Status::TypeError(
          "group members must share a schema; '" + member + "' has " +
          entry->schema->ToString() + ", expected " + schema->ToString());
    }
  }
  return SequenceGroup(engine, std::move(members), std::move(schema));
}

Result<std::map<std::string, QueryResult>> SequenceGroup::Map(
    const GraphTemplate& graph_for, std::optional<Span> range,
    AccessStats* stats) const {
  return engine_->RunGrouped(members_, graph_for, range, stats);
}

Result<SequenceGroup> SequenceGroup::Filter(const GraphTemplate& condition_for,
                                            std::optional<Span> range,
                                            AccessStats* stats) const {
  SEQ_ASSIGN_OR_RETURN(auto results, Map(condition_for, range, stats));
  std::vector<std::string> kept;
  for (const std::string& member : members_) {
    if (!results.at(member).records.empty()) kept.push_back(member);
  }
  if (kept.empty()) {
    return Status::NotFound("no group member satisfies the condition");
  }
  return SequenceGroup(engine_, std::move(kept), schema_);
}

Result<QueryResult> SequenceGroup::PositionalAgg(AggFunc func,
                                                 const std::string& column,
                                                 std::optional<Span> range,
                                                 AccessStats* stats) const {
  SEQ_ASSIGN_OR_RETURN(size_t col_idx, schema_->FieldIndex(column));
  TypeId col_type = schema_->field(col_idx).type;
  TypeId out_type = col_type;
  switch (func) {
    case AggFunc::kCount:
      out_type = TypeId::kInt64;
      break;
    case AggFunc::kAvg:
      if (!IsNumeric(col_type)) {
        return Status::TypeError("avg requires a numeric column");
      }
      out_type = TypeId::kDouble;
      break;
    case AggFunc::kSum:
      if (!IsNumeric(col_type)) {
        return Status::TypeError("sum requires a numeric column");
      }
      out_type = col_type;
      break;
    case AggFunc::kMin:
    case AggFunc::kMax:
      out_type = col_type;
      break;
  }

  // One scan per member, then a position-wise k-way merge.
  std::vector<std::vector<PosRecord>> streams;
  streams.reserve(members_.size());
  for (const std::string& member : members_) {
    SEQ_ASSIGN_OR_RETURN(
        QueryResult member_result,
        engine_->Run(LogicalOp::BaseRef(member), range, stats));
    streams.push_back(std::move(member_result.records));
  }

  QueryResult out;
  out.schema = Schema::Make({Field{
      std::string(AggFuncName(func)) + "_" + column, out_type}});
  std::vector<size_t> cursors(streams.size(), 0);
  while (true) {
    Position next = kMaxPosition;
    for (size_t m = 0; m < streams.size(); ++m) {
      if (cursors[m] < streams[m].size()) {
        next = std::min(next, streams[m][cursors[m]].pos);
      }
    }
    if (next == kMaxPosition) break;
    WindowState state(func, col_type);
    for (size_t m = 0; m < streams.size(); ++m) {
      if (cursors[m] < streams[m].size() &&
          streams[m][cursors[m]].pos == next) {
        state.Add(next, streams[m][cursors[m]].rec[col_idx], nullptr);
        ++cursors[m];
      }
    }
    out.records.push_back(PosRecord{next, Record{state.Current()}});
  }
  return out;
}

}  // namespace seq
