// Stock-market analysis over the paper's Table 1 catalog (IBM, DEC, HP
// daily sequences with different spans and densities): moving averages, a
// golden-cross detector, weekly collapse, and the Fig. 3 span optimization
// in action.

#include <iostream>

#include "core/engine.h"
#include "workload/generators.h"

using namespace seq;

int main() {
  Engine engine;
  if (Status s = RegisterTable1Stocks(&engine.catalog()); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  for (const std::string& name : engine.catalog().ListSequences()) {
    auto entry = engine.catalog().Lookup(name);
    std::cout << name << ": " << (*entry)->store->DescribeMeta() << "\n";
  }
  std::cout << "\n";

  // 1. Moving averages: 5-day vs 20-day on IBM closes.
  auto fast = SeqRef("ibm").Agg(AggFunc::kAvg, "close", 5, "fast");
  auto slow = SeqRef("ibm").Agg(AggFunc::kAvg, "close", 20, "slow");
  auto crossover =
      fast.ComposeWith(slow, Gt(Col("fast", 0), Col("slow", 1))).Build();
  auto golden = engine.Run(crossover);
  if (!golden.ok()) {
    std::cerr << golden.status() << "\n";
    return 1;
  }
  std::cout << "days where the 5-day average is above the 20-day ("
            << golden->records.size() << "):\n"
            << golden->ToString(3) << "\n";

  // 2. Weekly view (§5.1 ordering domains): collapse daily HP closes into
  // weekly averages.
  auto weekly = SeqRef("hp").Collapse(7, AggFunc::kAvg, "close", "week_avg")
                    .Build();
  auto weeks = engine.Run(weekly);
  std::cout << "weekly HP averages (" << weeks->records.size()
            << " weeks):\n"
            << weeks->ToString(3) << "\n";

  // 3. The Fig. 3 query: DEC prices on days where IBM closed above HP —
  // with and without span propagation. The spans are IBM [200,500],
  // DEC [1,350], HP [1,750]; their intersection [200,350] is all the
  // optimizer ever needs to scan.
  auto fig3 = SeqRef("dec")
                  .Project({"close"}, {"dec_close"})
                  .ComposeWith(SeqRef("ibm").ComposeWith(
                                   SeqRef("hp"),
                                   Gt(Col("close", 0), Col("close", 1))))
                  .Project({"dec_close"})
                  .Build();

  AccessStats with_spans;
  auto r1 = engine.Run(fig3, std::nullopt, &with_spans);
  if (!r1.ok()) {
    std::cerr << r1.status() << "\n";
    return 1;
  }

  OptimizerOptions no_pushdown;
  no_pushdown.enable_span_pushdown = false;
  Engine engine2(no_pushdown);
  (void)RegisterTable1Stocks(&engine2.catalog());
  AccessStats without_spans;
  auto r2 = engine2.Run(fig3, Span::Of(1, 750), &without_spans);

  std::cout << "Fig. 3 span optimization (" << r1->records.size()
            << " answers either way):\n";
  std::cout << "  with span propagation:    " << with_spans.stream_records
            << " records, " << with_spans.stream_pages << " pages\n";
  std::cout << "  without span propagation: " << without_spans.stream_records
            << " records, " << without_spans.stream_pages << " pages\n";
  return 0;
}
