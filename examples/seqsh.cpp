// seqsh — an interactive shell (and script runner) for the SEQ engine.
//
//   $ build/examples/seqsh                      # REPL, private in-process engine
//   $ build/examples/seqsh script.seq           # run a script
//   $ build/examples/seqsh --connect host:port  # remote REPL against seqserved
//
// Every command goes through the Session facade (core/session.h), so local
// and remote mode share one dispatch path: LocalSession embeds an engine in
// this process, RemoteSession speaks the seqserved wire protocol — the
// command set, output and error shapes are identical either way.
//
// Dot-commands manage the session; everything else is Sequin. Each Sequin
// statement `name = expr;` defines a session view; `.run name` (or entering
// a bare name) evaluates it.
//
//   .load <name> <file.csv> [poscol]   register a CSV file as a sequence
//   .gen <name> <start> <end> <density> [seed]   synthetic stock series
//   .list                              show catalog + views
//   .schema <name>                     show a sequence's schema and meta
//   .range <start> <end>               set the evaluation range
//   .limit <n>                         rows printed AND the per-query row
//                                      budget (0 = unlimited)
//   .timeout <ms>                      per-query wall-clock budget (0 = off)
//   .explain <name | expr;>            show optimizer output
//   .analyze <name>                    EXPLAIN ANALYZE: estimated vs actual
//   .stats on|off                      print access counters after runs
//   .stats                             engine metrics (counters/dists/histograms)
//   .queries                           live queries + recently completed ring
//   .plancache [on|off|clear|stats]    parameterized plan cache control
//   .slowlog [clear|threshold <ms>]    slow-query digest log
//   .metrics prom|json [file]          export telemetry (Prometheus / JSON)
//   .batch on|off                      batch vs tuple-at-a-time driving
//   .parallel <n>                      per-query share cap on the scheduler
//                                      pool (1 = serial)
//   .sched [stats|workers <n>|limit <n>]   process-wide query scheduler
//   .priority low|normal|high          admission priority for this session
//   .checkpoint on|off [chunk <n>] [every <k>]  run queries in suspendable chunks
//   .suspend <query-id>                park a live query to a checkpoint
//   .resume <file>                     resume a suspended query from disk
//   .materialize <name> <view>         register a view's result as a base
//   .save <name> <file.csv>            write a base sequence as CSV
//   .savedb <dir> / .opendb <dir>      persist / reopen the whole catalog
//   .help / .quit

#include <algorithm>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <optional>
#include <sstream>

#include "common/string_util.h"
#include "core/session.h"
#include "exec/checkpoint.h"
#include "exec/scheduler.h"
#include "net/remote_session.h"
#include "types/record.h"

namespace {

using namespace seq;

constexpr const char* kHelp =
    "  .load <name> <file.csv> [poscol]   register a CSV file as a sequence\n"
    "  .gen <name> <start> <end> <density> [seed]   synthetic stock series\n"
    "  .list                              show catalog + views\n"
    "  .schema <name>                     show a sequence's schema and meta\n"
    "  .range <start> <end>               set the evaluation range\n"
    "  .limit <n>                         rows printed AND the per-query row\n"
    "                                     budget (0 = unlimited)\n"
    "  .timeout <ms>                      per-query wall-clock budget (0 = "
    "off)\n"
    "  .explain <name | expr;>            show optimizer output\n"
    "  .analyze <name>                    EXPLAIN ANALYZE: estimated vs "
    "actual\n"
    "  .stats on|off                      print access counters after runs\n"
    "  .stats                             engine metrics (counters, dists,\n"
    "                                     latency histograms)\n"
    "  .queries                           live queries with rows/pages/worker\n"
    "                                     progress + recently completed ring\n"
    "                                     (s<id> marks the owning session)\n"
    "  .plancache [stats]                 parameterized plan cache summary +\n"
    "                                     hottest shapes (SEQ_PLAN_CACHE,\n"
    "                                     SEQ_PLAN_CACHE_ENTRIES set defaults)\n"
    "  .plancache on|off|clear            enable / disable (drops entries) /\n"
    "                                     drop all cached plan templates\n"
    "  .slowlog                           slow-query digests (worst-case\n"
    "                                     exemplars); threshold default from\n"
    "                                     SEQ_SLOW_QUERY_MS (100ms)\n"
    "  .slowlog threshold <ms>            set threshold (0 logs all,\n"
    "                                     negative disables)\n"
    "  .slowlog clear                     drop all digests\n"
    "  .metrics prom|json [file]          export telemetry snapshot in\n"
    "                                     Prometheus text / JSON format\n"
    "  .batch on|off                      batch vs tuple-at-a-time driving\n"
    "  .parallel <n>                      per-query share cap on the shared\n"
    "                                     scheduler pool (1 = serial)\n"
    "  .sched [stats]                     process-wide scheduler: workers,\n"
    "                                     admission queue, totals\n"
    "  .sched workers <n>                 resize the shared worker pool\n"
    "                                     (SEQ_SCHED_WORKERS sets the default)\n"
    "  .sched limit <n>                   max queries running at once\n"
    "                                     (0 = unlimited)\n"
    "  .priority low|normal|high          admission priority for this\n"
    "                                     session's queries\n"
    "  .checkpoint on|off                 drive queries in suspendable\n"
    "                                     chunks so .suspend can park them\n"
    "                                     (SEQ_CHECKPOINT_DIR sets where)\n"
    "  .checkpoint chunk <n>              positions per chunk (0 = default;\n"
    "                                     SEQ_CHECKPOINT_CHUNK overrides)\n"
    "  .checkpoint every <k>              suspend after every k-th chunk\n"
    "                                     (0 = only on demand; for crash-\n"
    "                                     recovery drills)\n"
    "  .suspend <query-id>                ask a live query (see .queries) to\n"
    "                                     park its state in a checkpoint file\n"
    "                                     at the next chunk boundary\n"
    "  .resume <file>                     resume a suspended query from its\n"
    "                                     checkpoint (SEQ_CHECKPOINT_DIR is\n"
    "                                     the default directory)\n"
    "  .materialize <name> <view>         register a view's result as a base\n"
    "  .save <name> <file.csv>            write a base sequence as CSV\n"
    "  .savedb <dir> / .opendb <dir>      persist / reopen the whole catalog\n"
    "  .help                              this list\n"
    "  .quit\n";

/// Shell state around the Session facade: the session itself (local or
/// remote) plus the client-side print limit.
struct Shell {
  std::unique_ptr<seq::Session> session;
  size_t limit = 10;
};

std::vector<std::string> Tokens(const std::string& line) {
  std::istringstream in(line);
  std::vector<std::string> out;
  std::string tok;
  while (in >> tok) out.push_back(tok);
  return out;
}

// Guarded numeric parsing for dot-command arguments: std::stoll and friends
// throw on garbage or out-of-range input, which must never take down the
// shell. nullopt on any failure, including trailing junk.
std::optional<int64_t> ParseInt64(const std::string& s) {
  try {
    size_t used = 0;
    int64_t v = std::stoll(s, &used);
    if (used != s.size()) return std::nullopt;
    return v;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

void PrintReply(const Shell& shell, const ExecuteReply& reply) {
  if (!reply.text.empty()) {
    std::cout << reply.text;
    if (reply.text.back() != '\n') std::cout << "\n";
  }
  if (!reply.is_rows) return;
  const size_t shown = std::min(shell.limit, reply.rows.size());
  for (size_t i = 0; i < shown; ++i) {
    std::cout << PosRecordToString(reply.rows[i], *reply.schema) << "\n";
  }
  if (reply.rows.size() > shown) {
    std::cout << "... (" << reply.rows.size() << " records total)\n";
  }
  std::cout << "(" << reply.rows.size() << " records)\n";
  if (reply.has_stats) {
    std::cout << "stats: " << reply.stats.ToString() << "\n";
  }
}

void RunSequin(Shell* shell, const std::string& source) {
  auto reply = shell->session->Execute(source);
  if (!reply.ok()) {
    std::cout << "error: " << reply.status() << "\n";
    return;
  }
  PrintReply(*shell, *reply);
}

/// Joins `args[from..]` into one Sequin statement, appending ';' when the
/// caller typed a bare name (.run q / .explain q).
std::string JoinStatement(const std::vector<std::string>& args, size_t from) {
  std::string out;
  for (size_t i = from; i < args.size(); ++i) {
    if (!out.empty()) out += ' ';
    out += args[i];
  }
  if (!out.empty() && out.back() != ';') out += ';';
  return out;
}

/// Forwards a dot-command verbatim to Session::Command (dropping the dot)
/// and prints the result or error.
void ForwardCommand(Shell* shell, const std::vector<std::string>& args) {
  std::vector<std::string> forwarded = args;
  forwarded[0] = forwarded[0].substr(1);
  auto out = shell->session->Command(forwarded);
  if (!out.ok()) {
    std::cout << "error: " << out.status() << "\n";
    return;
  }
  std::cout << *out;
}

void PrintTelemetry(Shell* shell, const std::string& kind) {
  auto out = shell->session->Telemetry(kind);
  if (!out.ok()) {
    std::cout << "error: " << out.status() << "\n";
    return;
  }
  std::cout << *out;
}

void HandleDotCommand(Shell* shell, const std::vector<std::string>& args) {
  const std::string& cmd = args[0];
  seq::Session& session = *shell->session;
  ExecOptions& exec = session.options().exec;

  // -- Client-side session knobs: mutate the per-session defaults that
  //    travel with every query; no engine round trip.
  if (cmd == ".range" && args.size() >= 3) {
    auto start = ParseInt64(args[1]);
    auto end = ParseInt64(args[2]);
    if (!start || !end) {
      std::cout << "error: .range expects numeric <start> <end>\n";
      return;
    }
    session.range() = Span::Of(*start, *end);
    std::cout << "range " << session.range()->ToString() << "\n";
  } else if (cmd == ".limit" && args.size() >= 2) {
    auto n = ParseInt64(args[1]);
    if (!n || *n < 0) {
      std::cout << "error: .limit expects a non-negative row count\n";
      return;
    }
    // Doubles as the row budget: the executor stops a query cleanly with
    // RESOURCE_EXHAUSTED once it produces more than this many rows.
    shell->limit = *n == 0 ? std::numeric_limits<size_t>::max()
                           : static_cast<size_t>(*n);
    exec.guards.max_rows = *n;
    std::cout << "limit "
              << (*n == 0 ? std::string("off")
                          : std::to_string(*n) + " rows (also the row budget)")
              << "\n";
  } else if (cmd == ".timeout" && args.size() >= 2) {
    auto ms = ParseInt64(args[1]);
    if (!ms || *ms < 0) {
      std::cout << "error: .timeout expects a non-negative millisecond "
                   "count\n";
      return;
    }
    // Wall-clock budget: a query past the deadline stops cleanly with
    // DEADLINE_EXCEEDED at the next batch boundary. 0 disables.
    exec.guards.max_wall_ms = *ms;
    std::cout << "timeout "
              << (*ms == 0 ? std::string("off") : std::to_string(*ms) + "ms")
              << "\n";
  } else if (cmd == ".batch" && args.size() >= 2) {
    exec.use_batch = (args[1] == "on");
    std::cout << "batch driving " << (exec.use_batch ? "on" : "off") << "\n";
  } else if (cmd == ".parallel" && args.size() >= 2) {
    auto n = ParseInt64(args[1]);
    if (!n || *n < 1) {
      std::cout << "error: .parallel expects a worker count >= 1\n";
      return;
    }
    // Morsel-driven intra-query parallelism; plans that cannot partition
    // fall back to serial (see .analyze for the decision).
    exec.parallelism = static_cast<int>(*n);
    std::cout << "parallelism " << *n << (*n == 1 ? " (serial)" : " workers")
              << "\n";
  } else if (cmd == ".priority" && args.size() >= 2) {
    QueryPriority p;
    if (args[1] == "low") {
      p = QueryPriority::kLow;
    } else if (args[1] == "normal") {
      p = QueryPriority::kNormal;
    } else if (args[1] == "high") {
      p = QueryPriority::kHigh;
    } else {
      std::cout << "error: .priority expects low, normal or high\n";
      return;
    }
    exec.priority = p;
    std::cout << "priority " << QueryPriorityName(p) << "\n";
  } else if (cmd == ".checkpoint" && args.size() >= 3 && args[1] == "chunk") {
    auto n = ParseInt64(args[2]);
    if (!n || *n < 0) {
      std::cout << "error: .checkpoint chunk expects a position count >= 0 "
                   "(0 = default)\n";
      return;
    }
    exec.checkpoint.chunk = *n;
    std::cout << "checkpoint chunk "
              << (*n == 0 ? std::string("default (SEQ_CHECKPOINT_CHUNK)")
                          : std::to_string(*n) + " positions")
              << "\n";
  } else if (cmd == ".checkpoint" && args.size() >= 3 && args[1] == "every") {
    auto n = ParseInt64(args[2]);
    if (!n || *n < 0) {
      std::cout << "error: .checkpoint every expects a chunk count >= 0 "
                   "(0 = only on demand)\n";
      return;
    }
    exec.checkpoint.suspend_every_chunks = *n;
    std::cout << "checkpoint every "
              << (*n == 0 ? std::string("on demand only")
                          : std::to_string(*n) + " chunk(s)")
              << "\n";
  } else if (cmd == ".checkpoint" && args.size() >= 2) {
    exec.checkpoint.enabled = (args[1] == "on");
    std::cout << "checkpointed driving "
              << (exec.checkpoint.enabled ? "on" : "off") << "\n";
  } else if (cmd == ".stats" && args.size() >= 2) {
    session.set_collect_stats(args[1] == "on");
  } else if (cmd == ".help") {
    std::cout << kHelp;

    // -- Telemetry reads: one snapshot request through the session.
  } else if (cmd == ".stats") {
    PrintTelemetry(shell, "metrics");
  } else if (cmd == ".queries") {
    PrintTelemetry(shell, "queries");
  } else if (cmd == ".plancache" && (args.size() == 1 || args[1] == "stats")) {
    PrintTelemetry(shell, "plancache");
  } else if (cmd == ".slowlog" && args.size() == 1) {
    PrintTelemetry(shell, "slowlog");
  } else if (cmd == ".sched" && (args.size() == 1 || args[1] == "stats")) {
    PrintTelemetry(shell, "sched");
  } else if (cmd == ".metrics" && args.size() >= 2 &&
             (args[1] == "prom" || args[1] == "json")) {
    auto rendered = session.Telemetry(args[1]);
    if (!rendered.ok()) {
      std::cout << "error: " << rendered.status() << "\n";
      return;
    }
    if (args.size() >= 3) {
      std::ofstream out(args[2]);
      if (!out) {
        std::cout << "error: cannot open " << args[2] << "\n";
        return;
      }
      out << *rendered;
      std::cout << "wrote " << args[2] << "\n";
    } else {
      std::cout << *rendered;
    }

    // -- Query entry points: everything evaluates through
    //    Session::Execute so local and remote share one path.
  } else if (cmd == ".run" && args.size() >= 2) {
    RunSequin(shell, JoinStatement(args, 1));
  } else if (cmd == ".explain" && args.size() >= 2) {
    RunSequin(shell, "explain " + JoinStatement(args, 1));
  } else if (cmd == ".analyze" && args.size() >= 2) {
    RunSequin(shell, "explain analyze " + JoinStatement(args, 1));
  } else if (cmd == ".suspend" && args.size() >= 2) {
    auto id = ParseInt64(args[1]);
    if (!id || *id < 1) {
      std::cout << "error: .suspend expects a live query id (see "
                   ".queries)\n";
      return;
    }
    // Cooperative: sets the query's suspend flag; the engine parks it to a
    // checkpoint file at the next chunk boundary (checkpointed runs only).
    Status s = session.Suspend(static_cast<uint64_t>(*id));
    if (s.ok()) {
      std::cout << "suspend requested for query #" << *id << "\n";
    } else {
      std::cout << "error: " << s << "\n";
    }
  } else if (cmd == ".resume" && args.size() >= 2) {
    auto result = session.Resume(args[1]);
    if (!result.ok()) {
      if (IsQuerySuspended(result.status())) {
        // Suspended again before finishing (budget pressure or another
        // .suspend): the new checkpoint path is in the message.
        std::cout << result.status().message() << "\n";
      } else {
        std::cout << "error: " << result.status() << "\n";
      }
      return;
    }
    PrintReply(*shell, *result);

    // -- Admin commands: forwarded verbatim to Session::Command (local
    //    and remote give identical results).
  } else if ((cmd == ".load" || cmd == ".gen" || cmd == ".list" ||
              cmd == ".schema" || cmd == ".materialize" || cmd == ".save" ||
              cmd == ".savedb" || cmd == ".opendb" || cmd == ".plancache" ||
              cmd == ".slowlog" || cmd == ".sched")) {
    ForwardCommand(shell, args);
  } else {
    std::cout << "unknown or incomplete command: " << cmd << "\n";
  }
}

int RunStream(Shell* shell, std::istream& in, bool interactive) {
  std::string pending;
  std::string line;
  if (interactive) std::cout << "seq> " << std::flush;
  while (std::getline(in, line)) {
    std::string stripped(StripAsciiWhitespace(line));
    // Comment lines outside a pending statement never join the buffer, so
    // a leading comment cannot swallow the dot-commands after it.
    if (pending.empty() && !stripped.empty() && stripped[0] == '#') continue;
    if (pending.empty() && !stripped.empty() && stripped[0] == '.') {
      std::vector<std::string> args = Tokens(stripped);
      if (args[0] == ".quit" || args[0] == ".exit") return 0;
      HandleDotCommand(shell, args);
    } else if (!stripped.empty() || !pending.empty()) {
      pending += line;
      pending += "\n";
      // Execute once the fragment ends with ';'.
      std::string_view t = StripAsciiWhitespace(pending);
      if (!t.empty() && t.back() == ';') {
        RunSequin(shell, pending);
        pending.clear();
      }
    }
    if (interactive) std::cout << "seq> " << std::flush;
  }
  // EOF (Ctrl-D): exit cleanly even mid-statement — the half-typed
  // fragment is dropped, never fed to the parser or left to crash us.
  if (interactive) {
    std::cout << "\n";
    if (!StripAsciiWhitespace(pending).empty()) {
      std::cout << "(discarded incomplete statement)\n";
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string connect;
  std::string script;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--connect" && i + 1 < argc) {
      connect = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "usage: seqsh [--connect host:port] [script.seq]\n";
      return 1;
    } else {
      script = arg;
    }
  }

  Shell shell;
  if (connect.empty()) {
    shell.session = std::make_unique<LocalSession>();
  } else {
    const size_t colon = connect.rfind(':');
    std::optional<int64_t> port;
    if (colon != std::string::npos) {
      port = ParseInt64(connect.substr(colon + 1));
    }
    if (!port || *port < 1 || *port > 65535) {
      std::cerr << "seqsh: --connect expects host:port, got '" << connect
                << "'\n";
      return 1;
    }
    auto remote = RemoteSession::Connect(connect.substr(0, colon),
                                         static_cast<int>(*port));
    if (!remote.ok()) {
      std::cerr << "seqsh: " << remote.status().ToString() << "\n";
      return 1;
    }
    shell.session = std::move(*remote);
  }

  if (!script.empty()) {
    std::ifstream file(script);
    if (!file) {
      std::cerr << "cannot open " << script << "\n";
      return 1;
    }
    return RunStream(&shell, file, /*interactive=*/false);
  }
  std::cout << "SEQ shell — sequence query processing (SIGMOD '94)"
            << (connect.empty() ? ""
                                : " [connected to " + connect +
                                      ", session s" +
                                      std::to_string(shell.session->id()) +
                                      "]")
            << ". Dot-commands: .load .gen .list .schema .range .limit "
               ".timeout .explain .analyze .run .stats .queries .plancache "
               ".slowlog .metrics .batch .parallel .sched .priority "
               ".checkpoint .suspend .resume .materialize .save .savedb "
               ".opendb "
               ".help .quit\n";
  return RunStream(&shell, std::cin, /*interactive=*/true);
}
