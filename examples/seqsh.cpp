// seqsh — an interactive shell (and script runner) for the SEQ engine.
//
//   $ build/examples/seqsh            # REPL
//   $ build/examples/seqsh script.seq # run a script
//
// Dot-commands manage the session; everything else is Sequin. Each Sequin
// statement `name = expr;` defines a view; `.run name` (or entering a bare
// name) evaluates it.
//
//   .load <name> <file.csv> [poscol]   register a CSV file as a sequence
//   .gen <name> <start> <end> <density> [seed]   synthetic stock series
//   .list                              show catalog + views
//   .schema <name>                     show a sequence's schema and meta
//   .range <start> <end>               set the evaluation range
//   .limit <n>                         rows printed AND the per-query row
//                                      budget (0 = unlimited)
//   .timeout <ms>                      per-query wall-clock budget (0 = off)
//   .explain <name | expr;>            show optimizer output
//   .analyze <name>                    EXPLAIN ANALYZE: estimated vs actual
//   .stats on|off                      print access counters after runs
//   .stats                             engine metrics (counters/dists/histograms)
//   .queries                           live queries + recently completed ring
//   .plancache [on|off|clear|stats]    parameterized plan cache control
//   .slowlog [clear|threshold <ms>]    slow-query digest log
//   .metrics prom|json [file]          export telemetry (Prometheus / JSON)
//   .batch on|off                      batch vs tuple-at-a-time driving
//   .parallel <n>                      per-query share cap on the scheduler
//                                      pool (1 = serial)
//   .sched [stats|workers <n>|limit <n>]   process-wide query scheduler
//   .priority low|normal|high          admission priority for this session
//   .checkpoint on|off [chunk <n>] [every <k>]  run queries in suspendable chunks
//   .suspend <query-id>                park a live query to a checkpoint
//   .resume <file>                     resume a suspended query from disk
//   .materialize <name> <view>         register a view's result as a base
//   .save <name> <file.csv>            write a base sequence as CSV
//   .savedb <dir> / .opendb <dir>      persist / reopen the whole catalog
//   .help / .quit

#include <algorithm>
#include <fstream>
#include <iostream>
#include <limits>
#include <optional>
#include <sstream>

#include "common/string_util.h"
#include "core/database_io.h"
#include "core/engine.h"
#include "exec/checkpoint.h"
#include "exec/scheduler.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/query_registry.h"
#include "obs/slow_query_log.h"
#include "parser/parser.h"
#include "workload/csv.h"
#include "workload/generators.h"

namespace {

using namespace seq;

constexpr const char* kHelp =
    "  .load <name> <file.csv> [poscol]   register a CSV file as a sequence\n"
    "  .gen <name> <start> <end> <density> [seed]   synthetic stock series\n"
    "  .list                              show catalog + views\n"
    "  .schema <name>                     show a sequence's schema and meta\n"
    "  .range <start> <end>               set the evaluation range\n"
    "  .limit <n>                         rows printed AND the per-query row\n"
    "                                     budget (0 = unlimited)\n"
    "  .timeout <ms>                      per-query wall-clock budget (0 = "
    "off)\n"
    "  .explain <name | expr;>            show optimizer output\n"
    "  .analyze <name>                    EXPLAIN ANALYZE: estimated vs "
    "actual\n"
    "  .stats on|off                      print access counters after runs\n"
    "  .stats                             engine metrics (counters, dists,\n"
    "                                     latency histograms)\n"
    "  .queries                           live queries with rows/pages/worker\n"
    "                                     progress + recently completed ring\n"
    "  .plancache [stats]                 parameterized plan cache summary +\n"
    "                                     hottest shapes (SEQ_PLAN_CACHE,\n"
    "                                     SEQ_PLAN_CACHE_ENTRIES set defaults)\n"
    "  .plancache on|off|clear            enable / disable (drops entries) /\n"
    "                                     drop all cached plan templates\n"
    "  .slowlog                           slow-query digests (worst-case\n"
    "                                     exemplars); threshold default from\n"
    "                                     SEQ_SLOW_QUERY_MS (100ms)\n"
    "  .slowlog threshold <ms>            set threshold (0 logs all,\n"
    "                                     negative disables)\n"
    "  .slowlog clear                     drop all digests\n"
    "  .metrics prom|json [file]          export telemetry snapshot in\n"
    "                                     Prometheus text / JSON format\n"
    "  .batch on|off                      batch vs tuple-at-a-time driving\n"
    "  .parallel <n>                      per-query share cap on the shared\n"
    "                                     scheduler pool (1 = serial)\n"
    "  .sched [stats]                     process-wide scheduler: workers,\n"
    "                                     admission queue, totals\n"
    "  .sched workers <n>                 resize the shared worker pool\n"
    "                                     (SEQ_SCHED_WORKERS sets the default)\n"
    "  .sched limit <n>                   max queries running at once\n"
    "                                     (0 = unlimited)\n"
    "  .priority low|normal|high          admission priority for this\n"
    "                                     session's queries\n"
    "  .checkpoint on|off                 drive queries in suspendable\n"
    "                                     chunks so .suspend can park them\n"
    "                                     (SEQ_CHECKPOINT_DIR sets where)\n"
    "  .checkpoint chunk <n>              positions per chunk (0 = default;\n"
    "                                     SEQ_CHECKPOINT_CHUNK overrides)\n"
    "  .checkpoint every <k>              suspend after every k-th chunk\n"
    "                                     (0 = only on demand; for crash-\n"
    "                                     recovery drills)\n"
    "  .suspend <query-id>                ask a live query (see .queries) to\n"
    "                                     park its state in a checkpoint file\n"
    "                                     at the next chunk boundary\n"
    "  .resume <file>                     resume a suspended query from its\n"
    "                                     checkpoint (SEQ_CHECKPOINT_DIR is\n"
    "                                     the default directory)\n"
    "  .materialize <name> <view>         register a view's result as a base\n"
    "  .save <name> <file.csv>            write a base sequence as CSV\n"
    "  .savedb <dir> / .opendb <dir>      persist / reopen the whole catalog\n"
    "  .help                              this list\n"
    "  .quit\n";

struct Session {
  Engine engine;
  std::optional<Span> range;
  size_t limit = 10;
  bool show_stats = false;
  /// Session-level execution knobs (.limit/.timeout/.batch/.parallel); a
  /// copy travels with every query instead of mutating engine-wide state.
  RunOptions run_opts;
};

std::vector<std::string> Tokens(const std::string& line) {
  std::istringstream in(line);
  std::vector<std::string> out;
  std::string tok;
  while (in >> tok) out.push_back(tok);
  return out;
}

// Guarded numeric parsing for dot-command arguments: std::stoll and friends
// throw on garbage or out-of-range input, which must never take down the
// shell. nullopt on any failure, including trailing junk.
std::optional<int64_t> ParseInt64(const std::string& s) {
  try {
    size_t used = 0;
    int64_t v = std::stoll(s, &used);
    if (used != s.size()) return std::nullopt;
    return v;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::optional<double> ParseDouble(const std::string& s) {
  try {
    size_t used = 0;
    double v = std::stod(s, &used);
    if (used != s.size()) return std::nullopt;
    return v;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

void AnalyzeGraph(Session* session, const LogicalOpPtr& graph) {
  Query q;
  q.graph = graph;
  q.range = session->range;
  auto text = session->engine.ExplainAnalyze(q, session->run_opts);
  if (!text.ok()) {
    std::cout << "error: " << text.status() << "\n";
    return;
  }
  std::cout << *text;
}

void RunGraph(Session* session, const LogicalOpPtr& graph) {
  AccessStats stats;
  RunOptions opts = session->run_opts;
  opts.stats = session->show_stats ? &stats : nullptr;
  auto result = session->engine.Run(graph, session->range, opts);
  if (!result.ok()) {
    std::cout << "error: " << result.status() << "\n";
    return;
  }
  std::cout << result->ToString(session->limit);
  std::cout << "(" << result->records.size() << " records)\n";
  if (session->show_stats) {
    std::cout << "stats: " << stats.ToString() << "\n";
  }
}

Result<LogicalOpPtr> ResolveName(Session* session, const std::string& name) {
  auto it = session->engine.views().find(name);
  if (it != session->engine.views().end()) return it->second;
  if (session->engine.catalog().Contains(name)) {
    return LogicalOp::BaseRef(name);
  }
  return Status::NotFound("no sequence or view named '" + name + "'");
}

void HandleDotCommand(Session* session, const std::vector<std::string>& args) {
  const std::string& cmd = args[0];
  if (cmd == ".load" && args.size() >= 3) {
    CsvOptions options;
    if (args.size() >= 4) options.position_column = args[3];
    auto store = LoadCsvSequence(args[2], options);
    if (!store.ok()) {
      std::cout << "error: " << store.status() << "\n";
      return;
    }
    Status s = session->engine.RegisterBase(args[1], *store);
    std::cout << (s.ok() ? "loaded " + args[1] + ": " +
                               (*store)->DescribeMeta() + "\n"
                         : "error: " + s.ToString() + "\n");
  } else if (cmd == ".gen" && args.size() >= 5) {
    auto start = ParseInt64(args[2]);
    auto end = ParseInt64(args[3]);
    auto density = ParseDouble(args[4]);
    std::optional<int64_t> seed =
        args.size() >= 6 ? ParseInt64(args[5]) : std::optional<int64_t>(0);
    if (!start || !end || !density || !seed || *seed < 0) {
      std::cout << "error: .gen expects numeric <start> <end> <density> "
                   "[seed]\n";
      return;
    }
    StockSeriesOptions options;
    options.span = Span::Of(*start, *end);
    options.density = *density;
    if (args.size() >= 6) options.seed = static_cast<uint64_t>(*seed);
    auto store = MakeStockSeries(options);
    if (!store.ok()) {
      std::cout << "error: " << store.status() << "\n";
      return;
    }
    Status s = session->engine.RegisterBase(args[1], *store);
    std::cout << (s.ok() ? "generated " + args[1] + ": " +
                               (*store)->DescribeMeta() + "\n"
                         : "error: " + s.ToString() + "\n");
  } else if (cmd == ".list") {
    for (const std::string& name :
         session->engine.catalog().ListSequences()) {
      auto entry = session->engine.catalog().Lookup(name);
      std::cout << "  " << name << "  " << (*entry)->schema->ToString();
      if ((*entry)->kind == CatalogEntry::Kind::kBase) {
        std::cout << "  " << (*entry)->store->DescribeMeta();
      } else {
        std::cout << "  (constant)";
      }
      std::cout << "\n";
    }
    for (const auto& [name, graph] : session->engine.views()) {
      std::cout << "  " << name << "  (view) = " << graph->Describe()
                << "\n";
    }
  } else if (cmd == ".schema" && args.size() >= 2) {
    auto entry = session->engine.catalog().Lookup(args[1]);
    if (!entry.ok()) {
      std::cout << "error: " << entry.status() << "\n";
      return;
    }
    std::cout << (*entry)->schema->ToString() << "\n";
    if ((*entry)->kind == CatalogEntry::Kind::kBase) {
      std::cout << (*entry)->store->DescribeMeta() << "\n";
      const auto& stats = (*entry)->store->column_stats();
      for (size_t i = 0; i < stats.size(); ++i) {
        std::cout << "  " << (*entry)->schema->field(i).name << ": "
                  << stats[i].ToString() << "\n";
      }
    }
  } else if (cmd == ".range" && args.size() >= 3) {
    auto start = ParseInt64(args[1]);
    auto end = ParseInt64(args[2]);
    if (!start || !end) {
      std::cout << "error: .range expects numeric <start> <end>\n";
      return;
    }
    session->range = Span::Of(*start, *end);
    std::cout << "range " << session->range->ToString() << "\n";
  } else if (cmd == ".limit" && args.size() >= 2) {
    auto n = ParseInt64(args[1]);
    if (!n || *n < 0) {
      std::cout << "error: .limit expects a non-negative row count\n";
      return;
    }
    // Doubles as the row budget: the executor stops a query cleanly with
    // RESOURCE_EXHAUSTED once it produces more than this many rows.
    session->limit = *n == 0 ? std::numeric_limits<size_t>::max()
                             : static_cast<size_t>(*n);
    session->run_opts.exec.guards.max_rows = *n;
    std::cout << "limit "
              << (*n == 0 ? std::string("off")
                          : std::to_string(*n) + " rows (also the row budget)")
              << "\n";
  } else if (cmd == ".timeout" && args.size() >= 2) {
    auto ms = ParseInt64(args[1]);
    if (!ms || *ms < 0) {
      std::cout << "error: .timeout expects a non-negative millisecond "
                   "count\n";
      return;
    }
    // Wall-clock budget: a query past the deadline stops cleanly with
    // DEADLINE_EXCEEDED at the next batch boundary. 0 disables.
    session->run_opts.exec.guards.max_wall_ms = *ms;
    std::cout << "timeout "
              << (*ms == 0 ? std::string("off") : std::to_string(*ms) + "ms")
              << "\n";
  } else if (cmd == ".stats" && args.size() >= 2) {
    session->show_stats = (args[1] == "on");
  } else if (cmd == ".stats") {
    std::cout << MetricsRegistry::Global().ToString();
  } else if (cmd == ".queries") {
    QueryRegistry& registry = QueryRegistry::Global();
    const std::vector<LiveQueryInfo> live = registry.Live();
    std::cout << live.size() << " live, " << registry.completed()
              << " completed of " << registry.started() << " started\n";
    for (const LiveQueryInfo& q : live) {
      std::cout << "  #" << q.id << " [" << QueryStateName(q.state) << "] "
                << q.rows << " rows, " << q.pages << " pages, " << q.workers
                << " worker(s)";
      if (q.morsels_total > 0) {
        std::cout << ", morsels " << q.morsels_done << "/" << q.morsels_total;
      }
      if (q.queued_us > 0) {
        std::cout << ", queued "
                  << FormatDouble(static_cast<double>(q.queued_us) / 1000.0)
                  << "ms";
      }
      std::cout << ", " << FormatDouble(static_cast<double>(q.elapsed_us) /
                                        1000.0)
                << "ms: " << q.text << "\n";
    }
    const std::vector<CompletedQueryInfo> recent = registry.Recent();
    const size_t shown = std::min<size_t>(recent.size(), 10);
    for (size_t i = 0; i < shown; ++i) {
      const CompletedQueryInfo& q = recent[i];
      std::cout << "  #" << q.id << " done [" << q.status
                << (q.degraded ? ", degraded" : "") << "] " << q.rows
                << " rows, " << q.pages << " pages, "
                << FormatDouble(static_cast<double>(q.wall_us) / 1000.0)
                << "ms";
      if (q.queued_us > 0) {
        std::cout << " (queued "
                  << FormatDouble(static_cast<double>(q.queued_us) / 1000.0)
                  << "ms)";
      }
      std::cout << ": " << q.text << "\n";
    }
    if (recent.size() > shown) {
      std::cout << "  ... (" << recent.size() << " recent total)\n";
    }
  } else if (cmd == ".plancache" && args.size() >= 2 && args[1] == "on") {
    PlanCache::Global().set_enabled(true);
    std::cout << "plan cache on\n";
  } else if (cmd == ".plancache" && args.size() >= 2 && args[1] == "off") {
    // Disabling also drops every cached template; re-enabling starts cold.
    PlanCache::Global().set_enabled(false);
    std::cout << "plan cache off (entries dropped)\n";
  } else if (cmd == ".plancache" && args.size() >= 2 && args[1] == "clear") {
    PlanCache::Global().Clear();
    std::cout << "plan cache cleared\n";
  } else if (cmd == ".plancache" &&
             (args.size() == 1 || args[1] == "stats")) {
    std::cout << PlanCache::Global().ToString();
  } else if (cmd == ".slowlog" && args.size() >= 2 && args[1] == "clear") {
    SlowQueryLog::Global().Reset();
    std::cout << "slow-query log cleared\n";
  } else if (cmd == ".slowlog" && args.size() >= 3 &&
             args[1] == "threshold") {
    auto ms = ParseDouble(args[2]);
    if (!ms) {
      std::cout << "error: .slowlog threshold expects milliseconds (0 logs "
                   "all queries, negative disables)\n";
      return;
    }
    SlowQueryLog::Global().set_threshold_ms(*ms);
    std::cout << "slow-query threshold " << FormatDouble(*ms) << "ms\n";
  } else if (cmd == ".slowlog") {
    std::cout << SlowQueryLog::Global().ToString();
  } else if (cmd == ".metrics" && args.size() >= 2 &&
             (args[1] == "prom" || args[1] == "json")) {
    const TelemetrySnapshot snap = CaptureTelemetry();
    std::string rendered =
        args[1] == "prom" ? RenderPrometheus(snap) : RenderJson(snap);
    if (args[1] == "json") rendered += "\n";
    if (args.size() >= 3) {
      std::ofstream out(args[2]);
      if (!out) {
        std::cout << "error: cannot open " << args[2] << "\n";
        return;
      }
      out << rendered;
      std::cout << "wrote " << args[2] << "\n";
    } else {
      std::cout << rendered;
    }
  } else if (cmd == ".help") {
    std::cout << kHelp;
  } else if (cmd == ".batch" && args.size() >= 2) {
    session->run_opts.exec.use_batch = (args[1] == "on");
    std::cout << "batch driving "
              << (session->run_opts.exec.use_batch ? "on" : "off") << "\n";
  } else if (cmd == ".parallel" && args.size() >= 2) {
    auto n = ParseInt64(args[1]);
    if (!n || *n < 1) {
      std::cout << "error: .parallel expects a worker count >= 1\n";
      return;
    }
    // Morsel-driven intra-query parallelism; plans that cannot partition
    // fall back to serial (see .analyze for the decision).
    session->run_opts.exec.parallelism = static_cast<int>(*n);
    std::cout << "parallelism " << *n
              << (*n == 1 ? " (serial)" : " workers") << "\n";
  } else if (cmd == ".sched" && args.size() >= 3 && args[1] == "workers") {
    auto n = ParseInt64(args[2]);
    if (!n || *n < 1) {
      std::cout << "error: .sched workers expects a thread count >= 1\n";
      return;
    }
    QueryScheduler::Global().SetWorkers(static_cast<int>(*n));
    std::cout << "scheduler workers " << QueryScheduler::Global().workers()
              << "\n";
  } else if (cmd == ".sched" && args.size() >= 3 && args[1] == "limit") {
    auto n = ParseInt64(args[2]);
    if (!n || *n < 0) {
      std::cout << "error: .sched limit expects a query count >= 0 "
                   "(0 = unlimited)\n";
      return;
    }
    QueryScheduler::Global().SetMaxRunning(static_cast<int>(*n));
    std::cout << "scheduler limit "
              << (*n == 0 ? std::string("off") : std::to_string(*n)) << "\n";
  } else if (cmd == ".sched" && (args.size() == 1 || args[1] == "stats")) {
    std::cout << QueryScheduler::Global().ToString();
  } else if (cmd == ".priority" && args.size() >= 2) {
    QueryPriority p;
    if (args[1] == "low") {
      p = QueryPriority::kLow;
    } else if (args[1] == "normal") {
      p = QueryPriority::kNormal;
    } else if (args[1] == "high") {
      p = QueryPriority::kHigh;
    } else {
      std::cout << "error: .priority expects low, normal or high\n";
      return;
    }
    session->run_opts.exec.priority = p;
    std::cout << "priority " << QueryPriorityName(p) << "\n";
  } else if (cmd == ".checkpoint" && args.size() >= 3 &&
             args[1] == "chunk") {
    auto n = ParseInt64(args[2]);
    if (!n || *n < 0) {
      std::cout << "error: .checkpoint chunk expects a position count >= 0 "
                   "(0 = default)\n";
      return;
    }
    session->run_opts.exec.checkpoint.chunk = *n;
    std::cout << "checkpoint chunk "
              << (*n == 0 ? std::string("default (SEQ_CHECKPOINT_CHUNK)")
                          : std::to_string(*n) + " positions")
              << "\n";
  } else if (cmd == ".checkpoint" && args.size() >= 3 &&
             args[1] == "every") {
    auto n = ParseInt64(args[2]);
    if (!n || *n < 0) {
      std::cout << "error: .checkpoint every expects a chunk count >= 0 "
                   "(0 = only on demand)\n";
      return;
    }
    session->run_opts.exec.checkpoint.suspend_every_chunks = *n;
    std::cout << "checkpoint every "
              << (*n == 0 ? std::string("on demand only")
                          : std::to_string(*n) + " chunk(s)")
              << "\n";
  } else if (cmd == ".checkpoint" && args.size() >= 2) {
    session->run_opts.exec.checkpoint.enabled = (args[1] == "on");
    std::cout << "checkpointed driving "
              << (session->run_opts.exec.checkpoint.enabled ? "on" : "off")
              << "\n";
  } else if (cmd == ".suspend" && args.size() >= 2) {
    auto id = ParseInt64(args[1]);
    if (!id || *id < 1) {
      std::cout << "error: .suspend expects a live query id (see "
                   ".queries)\n";
      return;
    }
    // Cooperative: sets the query's suspend flag; the engine parks it to a
    // checkpoint file at the next chunk boundary (checkpointed runs only).
    if (Engine::RequestSuspend(static_cast<uint64_t>(*id))) {
      std::cout << "suspend requested for query #" << *id << "\n";
    } else {
      std::cout << "error: no live query #" << *id << "\n";
    }
  } else if (cmd == ".resume" && args.size() >= 2) {
    AccessStats stats;
    RunOptions opts = session->run_opts;
    opts.stats = session->show_stats ? &stats : nullptr;
    auto result = session->engine.Resume(args[1], opts);
    if (!result.ok()) {
      if (IsQuerySuspended(result.status())) {
        // Suspended again before finishing (budget pressure or another
        // .suspend): the new checkpoint path is in the message.
        std::cout << result.status().message() << "\n";
      } else {
        std::cout << "error: " << result.status() << "\n";
      }
      return;
    }
    std::cout << result->ToString(session->limit);
    std::cout << "(" << result->records.size() << " records)\n";
    if (session->show_stats) {
      std::cout << "stats: " << stats.ToString() << "\n";
    }
  } else if (cmd == ".explain" && args.size() >= 2) {
    auto graph = ResolveName(session, args[1]);
    if (!graph.ok()) {
      std::cout << "error: " << graph.status() << "\n";
      return;
    }
    Query q;
    q.graph = *graph;
    q.range = session->range;
    auto text = session->engine.Explain(q);
    std::cout << (text.ok() ? *text : "error: " + text.status().ToString())
              << "\n";
  } else if (cmd == ".analyze" && args.size() >= 2) {
    auto graph = ResolveName(session, args[1]);
    if (!graph.ok()) {
      std::cout << "error: " << graph.status() << "\n";
      return;
    }
    AnalyzeGraph(session, *graph);
  } else if (cmd == ".run" && args.size() >= 2) {
    auto graph = ResolveName(session, args[1]);
    if (!graph.ok()) {
      std::cout << "error: " << graph.status() << "\n";
      return;
    }
    RunGraph(session, *graph);
  } else if (cmd == ".materialize" && args.size() >= 3) {
    auto graph = ResolveName(session, args[2]);
    if (!graph.ok()) {
      std::cout << "error: " << graph.status() << "\n";
      return;
    }
    Status s = session->engine.Materialize(args[1], *graph, session->range);
    if (!s.ok()) {
      std::cout << "error: " << s << "\n";
      return;
    }
    auto entry = session->engine.catalog().Lookup(args[1]);
    std::cout << "materialized " << args[1] << ": "
              << (*entry)->store->DescribeMeta() << "\n";
  } else if (cmd == ".savedb" && args.size() >= 2) {
    Status s = SaveDatabase(session->engine, args[1]);
    std::cout << (s.ok() ? "saved database to " + args[1] + "\n"
                         : "error: " + s.ToString() + "\n");
  } else if (cmd == ".opendb" && args.size() >= 2) {
    // Load into a fresh engine so a failed load leaves the session intact.
    Engine fresh;
    Status s = LoadDatabase(args[1], &fresh);
    if (!s.ok()) {
      std::cout << "error: " << s << "\n";
      return;
    }
    session->engine = std::move(fresh);
    std::cout << "opened " << args[1] << " ("
              << session->engine.catalog().ListSequences().size()
              << " sequences, " << session->engine.views().size()
              << " views)\n";
  } else if (cmd == ".save" && args.size() >= 3) {
    auto entry = session->engine.catalog().Lookup(args[1]);
    if (!entry.ok() || (*entry)->kind != CatalogEntry::Kind::kBase) {
      std::cout << "error: no base sequence '" << args[1] << "'\n";
      return;
    }
    std::ofstream out(args[2]);
    out << SequenceToCsv(*(*entry)->store);
    std::cout << "wrote " << args[2] << "\n";
  } else {
    std::cout << "unknown or incomplete command: " << cmd << "\n";
  }
}

/// A Sequin fragment: define every statement as a view, then run the last.
void HandleSequin(Session* session, const std::string& source) {
  auto program = ParseSequin(source);
  if (!program.ok()) {
    std::cout << "parse error: " << program.status() << "\n";
    return;
  }
  for (const std::string& name : program->order) {
    // Re-defining interactively is convenient; views are immutable in the
    // engine, so versioned definitions just pick fresh names.
    Status s = session->engine.DefineView(name, program->definitions[name]);
    if (!s.ok()) {
      std::cout << "error: " << s << "\n";
      return;
    }
    std::cout << "defined " << name << "\n";
  }
  switch (program->explain) {
    case ExplainMode::kNone:
      RunGraph(session, program->main);
      break;
    case ExplainMode::kExplain: {
      Query q;
      q.graph = program->main;
      q.range = session->range;
      auto text = session->engine.Explain(q);
      std::cout << (text.ok() ? *text
                              : "error: " + text.status().ToString())
                << "\n";
      break;
    }
    case ExplainMode::kExplainAnalyze:
      AnalyzeGraph(session, program->main);
      break;
  }
}

int RunStream(Session* session, std::istream& in, bool interactive) {
  std::string pending;
  std::string line;
  if (interactive) std::cout << "seq> " << std::flush;
  while (std::getline(in, line)) {
    std::string stripped(StripAsciiWhitespace(line));
    if (pending.empty() && !stripped.empty() && stripped[0] == '.') {
      std::vector<std::string> args = Tokens(stripped);
      if (args[0] == ".quit" || args[0] == ".exit") return 0;
      HandleDotCommand(session, args);
    } else if (!stripped.empty() || !pending.empty()) {
      pending += line;
      pending += "\n";
      // Execute once the fragment ends with ';'.
      std::string_view t = StripAsciiWhitespace(pending);
      if (!t.empty() && t.back() == ';') {
        HandleSequin(session, pending);
        pending.clear();
      }
    }
    if (interactive) std::cout << "seq> " << std::flush;
  }
  // EOF (Ctrl-D): exit cleanly even mid-statement — the half-typed
  // fragment is dropped, never fed to the parser or left to crash us.
  if (interactive) {
    std::cout << "\n";
    if (!StripAsciiWhitespace(pending).empty()) {
      std::cout << "(discarded incomplete statement)\n";
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Session session;
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::cerr << "cannot open " << argv[1] << "\n";
      return 1;
    }
    return RunStream(&session, file, /*interactive=*/false);
  }
  std::cout << "SEQ shell — sequence query processing (SIGMOD '94). "
               "Dot-commands: .load .gen .list .schema .range .limit "
               ".timeout .explain .analyze .run .stats .queries .plancache "
               ".slowlog .metrics .batch .parallel .sched .priority "
               ".checkpoint .suspend .resume .materialize .save .savedb "
               ".opendb "
               ".help .quit\n";
  return RunStream(&session, std::cin, /*interactive=*/true);
}
