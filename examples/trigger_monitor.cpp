// Incremental trigger evaluation (§5.3): a standing query over live
// sensor data, evaluated incrementally as records arrive through a
// StreamSession — alerts fire when a reading exceeds the 10-reading moving
// average by 20%.

#include <iostream>

#include "common/rng.h"
#include "core/engine.h"
#include "exec/stream_session.h"

using namespace seq;

int main() {
  Engine engine;
  SchemaPtr schema = Schema::Make({Field{"reading", TypeId::kDouble}});
  auto store = std::make_shared<BaseSequenceStore>(schema, 16);
  if (Status s = engine.RegisterBase("sensor", store); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }

  // Standing query: compose each reading with the trailing 10-reading
  // average and keep spikes.
  auto standing =
      SeqRef("sensor")
          .ComposeWith(
              SeqRef("sensor").Agg(AggFunc::kAvg, "reading", 10, "avg10")
                  .Offset(1),  // average of the PRECEDING window
              Gt(Col("reading", 0), Mul(Col("avg10", 1), Lit(1.2))))
          .Build();

  StreamSession session(&engine.catalog(), standing);
  std::cout << "standing query lookback window: " << session.lookback()
            << " positions\n\n";

  // Simulate ticks arriving in batches.
  Rng rng(7);
  double level = 100.0;
  Position t = 0;
  int64_t alerts = 0;
  for (int batch = 0; batch < 20; ++batch) {
    for (int i = 0; i < 50; ++i) {
      ++t;
      level = std::max(10.0, level + rng.Normal(0.0, 2.0));
      double reading = level;
      if (rng.Bernoulli(0.02)) reading *= 1.5;  // occasional spike
      if (Status s = session.Append("sensor", t,
                                    Record{Value::Double(reading)});
          !s.ok()) {
        std::cerr << s << "\n";
        return 1;
      }
    }
    auto fresh = session.Poll();
    if (!fresh.ok()) {
      std::cerr << fresh.status() << "\n";
      return 1;
    }
    for (const PosRecord& alert : *fresh) {
      ++alerts;
      if (alerts <= 5) {
        std::cout << "ALERT t=" << alert.pos
                  << " reading=" << alert.rec[0].ToString()
                  << " avg10=" << alert.rec[1].ToString() << "\n";
      }
    }
  }
  std::cout << "...\n"
            << alerts << " alerts over " << t << " ticks ("
            << session.high_water_mark() << " positions confirmed)\n";
  return alerts > 0 ? 0 : 1;
}
