// Composite-event pattern detection ([GJS92], the paper's "trigger
// mechanisms" domain) compiled into the sequence algebra, run two ways:
// retrospectively over a history, and live over arriving events through a
// StreamSession.
//
// The pattern: two failed logins within 10 ticks of each other, followed
// by a large transfer within 100 ticks — a classic fraud signature.

#include <iostream>

#include "common/rng.h"
#include "core/engine.h"
#include "exec/stream_session.h"
#include "parser/unparse.h"
#include "pattern/pattern.h"

using namespace seq;

namespace {

SchemaPtr EventSchema() {
  return Schema::Make(
      {Field{"kind", TypeId::kString}, Field{"amount", TypeId::kDouble}});
}

ExprPtr Kind(const char* k) { return Eq(Col("kind"), Lit(k)); }

Status AppendEvent(BaseSequenceStore* store, Position t, const char* kind,
                   double amount) {
  return store->Append(
      t, Record{Value::String(kind), Value::Double(amount)});
}

}  // namespace

int main() {
  Engine engine;
  auto store = std::make_shared<BaseSequenceStore>(EventSchema(), 32);

  // Synthetic activity: mostly benign, with two injected fraud episodes.
  Rng rng(99);
  Position t = 0;
  auto emit = [&](const char* kind, double amount) {
    t += rng.UniformInt(1, 4);
    (void)AppendEvent(store.get(), t, kind, amount);
  };
  for (int i = 0; i < 400; ++i) {
    switch (rng.UniformInt(0, 5)) {
      case 0:
        emit("login_fail", 0);
        break;
      case 1:
        emit("transfer", rng.UniformDouble(10, 900));
        break;
      default:
        emit("login_ok", 0);
        break;
    }
    if (i == 150 || i == 300) {  // injected fraud episode
      emit("login_fail", 0);
      emit("login_fail", 0);
      emit("transfer", 5000 + rng.UniformDouble(0, 100));
    }
  }
  Position history_end = t;
  if (Status s = engine.RegisterBase("events", store); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }

  // The pattern, compiled into the paper's operators.
  Pattern pattern = Pattern::Start(Kind("login_fail"))
                        .Then(Kind("login_fail"), 10)
                        .Then(And(Kind("transfer"),
                                  Gt(Col("amount"), Lit(1000.0))),
                              100);
  auto graph = pattern.Compile(engine.catalog(), "events");
  if (!graph.ok()) {
    std::cerr << graph.status() << "\n";
    return 1;
  }
  std::cout << "compiled pattern (Sequin form):\n  "
            << *UnparseQuery(**graph, "fraud") << "\n\n";

  // 1. Retrospective run over the whole history.
  AccessStats stats;
  auto matches = engine.Run(*graph, Span::Of(1, history_end), &stats);
  if (!matches.ok()) {
    std::cerr << matches.status() << "\n";
    return 1;
  }
  std::cout << "historical matches (" << matches->records.size() << "):\n"
            << matches->ToString(5);
  std::cout << "single scan: " << stats.stream_records
            << " records read, 0 probes ("
            << (stats.probes == 0 ? "yes" : "NO") << ")\n\n";

  // 2. Live detection: the same compiled graph as a standing query.
  Engine live_engine;
  auto live_store = std::make_shared<BaseSequenceStore>(EventSchema(), 32);
  (void)live_engine.RegisterBase("events", live_store);
  auto live_graph = pattern.Compile(live_engine.catalog(), "events");
  StreamSession session(&live_engine.catalog(), *live_graph);

  Position lt = 0;
  int alerts = 0;
  for (int batch = 0; batch < 10; ++batch) {
    for (int i = 0; i < 30; ++i) {
      lt += rng.UniformInt(1, 4);
      const char* kind =
          rng.Bernoulli(0.15) ? "login_fail" : "login_ok";
      (void)session.Append("events", lt, Record{Value::String(kind),
                                                Value::Double(0)});
    }
    if (batch == 4) {  // inject a live fraud episode
      (void)session.Append("events", ++lt,
                           Record{Value::String("login_fail"),
                                  Value::Double(0)});
      (void)session.Append("events", ++lt,
                           Record{Value::String("login_fail"),
                                  Value::Double(0)});
      (void)session.Append("events", ++lt,
                           Record{Value::String("transfer"),
                                  Value::Double(9999)});
    }
    auto fresh = session.Poll();
    if (!fresh.ok()) {
      std::cerr << fresh.status() << "\n";
      return 1;
    }
    for (const PosRecord& alert : *fresh) {
      ++alerts;
      std::cout << "LIVE ALERT t=" << alert.pos << " amount "
                << alert.rec[1].ToString() << "\n";
    }
  }
  std::cout << alerts << " live alerts over " << lt << " ticks\n";
  return (matches->records.size() >= 2 && alerts >= 1) ? 0 : 1;
}
