// The paper's motivating example (Example 1.1): "For which volcano
// eruptions was the strength of the most recent earthquake greater than
// 7.0 on the Richter scale?" — run through the SEQ engine's single-scan
// stream plan and through the relational nested-subquery baseline, with
// access counts side by side.

#include <iostream>

#include "core/engine.h"
#include "relational/table.h"
#include "relational/volcano_sql.h"
#include "workload/generators.h"

using namespace seq;

int main() {
  // Synthetic weather-monitoring history: earthquakes and volcano
  // eruptions sequenced by the time they are recorded.
  EventSeriesOptions eq;
  eq.span = Span::Of(1, 50000);
  eq.density = 0.02;  // ~1000 earthquakes
  eq.seed = 42;
  auto quakes = MakeEarthquakes(eq);
  EventSeriesOptions vo;
  vo.span = Span::Of(1, 50000);
  vo.density = 0.004;  // ~200 eruptions
  vo.seed = 43;
  auto volcanos = MakeVolcanos(vo);
  if (!quakes.ok() || !volcanos.ok()) return 1;

  Engine engine;
  (void)engine.RegisterBase("quakes", *quakes);
  (void)engine.RegisterBase("volcanos", *volcanos);

  // The sequence query: compose each eruption with the most recent
  // earthquake (Previous), keep the strong ones (Fig. 1).
  auto query = SeqRef("volcanos")
                   .ComposeWith(SeqRef("quakes").Prev())
                   .Select(Gt(Col("strength"), Lit(7.0)))
                   .Project({"name", "strength"})
                   .Build();

  AccessStats stats;
  auto result = engine.Run(query, Span::Of(1, 50000), &stats);
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    return 1;
  }
  std::cout << "SEQ stream plan — eruptions preceded by a >7.0 quake ("
            << result->records.size() << " answers):\n"
            << result->ToString(5) << "\n";
  std::cout << "sequence engine accesses: " << stats.ToString() << "\n\n";

  // The relational baseline: the nested-subquery plan the paper says a
  // conventional optimizer would produce.
  auto vtable = relational::TableFromSequence(**volcanos);
  auto qtable = relational::TableFromSequence(**quakes);
  relational::RelStats rel_stats;
  auto sql = relational::VolcanoQuerySql(*vtable, *qtable, 7.0, &rel_stats);
  if (!sql.ok()) {
    std::cerr << sql.status() << "\n";
    return 1;
  }
  std::cout << "relational baseline — " << sql->size() << " answers, "
            << rel_stats.tuples_scanned << " tuples scanned (vs "
            << stats.stream_records << " records streamed)\n";
  std::cout << "speedup in data accesses: "
            << static_cast<double>(rel_stats.tuples_scanned) /
                   static_cast<double>(stats.stream_records)
            << "x\n";

  // Sanity: both plans agree.
  bool same = sql->size() == result->records.size();
  for (size_t i = 0; same && i < sql->size(); ++i) {
    same = (*sql)[i] == result->records[i].rec[0].str();
  }
  std::cout << (same ? "answers identical\n" : "ANSWER MISMATCH!\n");
  return same ? 0 : 1;
}
