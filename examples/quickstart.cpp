// Quickstart: build a sequence, query it with the fluent builder and with
// the Sequin text language, and look at the optimizer's plan.

#include <iostream>

#include "core/engine.h"
#include "parser/parser.h"

using namespace seq;

int main() {
  // 1. A base sequence: daily temperature readings, some days missing.
  SchemaPtr schema = Schema::Make({Field{"temp", TypeId::kDouble}});
  auto store = std::make_shared<BaseSequenceStore>(schema, /*per_page=*/16);
  const std::pair<Position, double> readings[] = {
      {1, 11.5}, {2, 13.0}, {3, 12.2}, {5, 17.8}, {6, 19.5},
      {7, 16.1}, {9, 21.0}, {10, 20.4}, {12, 14.9}, {13, 13.3},
  };
  for (auto [day, temp] : readings) {
    Status s = store->Append(day, Record{Value::Double(temp)});
    if (!s.ok()) {
      std::cerr << s << "\n";
      return 1;
    }
  }

  Engine engine;
  if (Status s = engine.RegisterBase("temps", store); !s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }

  // 2. A declarative query via the fluent builder: 3-day moving average of
  // the warm days.
  auto query = SeqRef("temps")
                   .Select(Gt(Col("temp"), Lit(12.0)))
                   .Agg(AggFunc::kAvg, "temp", 3, "avg3")
                   .Build();

  auto result = engine.Run(query);
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    return 1;
  }
  std::cout << "3-day moving average of warm days:\n"
            << result->ToString() << "\n";

  // 3. The same query in the Sequin mini-language.
  auto parsed = ParseSequinQuery(
      "warm = select(temps, temp > 12.0);\n"
      "avg3 = avg(warm, temp, over 3, as avg3);\n");
  if (!parsed.ok()) {
    std::cerr << parsed.status() << "\n";
    return 1;
  }
  auto result2 = engine.Run(*parsed);
  std::cout << "Same, parsed from text (" << result2->records.size()
            << " records — identical)\n\n";

  // 4. What did the optimizer decide?
  Query q;
  q.graph = query;
  auto explained = engine.Explain(q);
  std::cout << *explained << "\n";

  // 5. Point queries (the Fig. 6 template): records at a few positions.
  auto points = engine.RunAt(query, {3, 6, 9});
  std::cout << "Point queries at days 3, 6, 9:\n" << points->ToString();
  return 0;
}
